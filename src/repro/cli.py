"""Command-line entry point: regenerate any table or figure.

Usage::

    repro-experiments table1|table2|table3|fig3|fig4|fig5|fig6|fig7|fig8|sensitivity|all
        [--full] [--seed N] [--jobs N] [--workers N] [--batch-size Q]
        [--save DIR] [--load DIR] [--resume DIR|DB] [--trace RUN.jsonl]
        [--verbose|--quiet]

    repro-experiments obs summary RUN.jsonl
    repro-experiments obs tail RUN.jsonl [-n N] [--follow]
    repro-experiments obs report RUN.jsonl [-o report.html] [--title T]
    repro-experiments obs export RUN.jsonl [--format openmetrics] [-o F]
    repro-experiments obs perf-compare BASELINE.json CURRENT.json
        [--threshold 0.1] [--warn-only]

    repro-experiments drift [--profile diurnal|flash|skew|all] [--seed N]
        [--smoke] [--json PATH] [--resume DIR] [--trace RUN.jsonl]

    repro-experiments store ls DIR|DB
    repro-experiments store migrate SRC DST
    repro-experiments store vacuum DIR|DB

``store`` inspects and migrates study stores (docs/STORE.md): ``ls``
lists studies, cells, and observation counts; ``migrate`` copies every
document between backends (a checkpoint directory ↔ a SQLite ``*.db``
file, either direction, lossless); ``vacuum`` compacts.  Exit code 2
signals a schema-version mismatch, matching ``obs perf-compare``.

``drift`` runs the continuous-tuning-under-drift comparison
(docs/DRIFT.md): for each profile the same seed tunes through a
drifting workload twice — conservative re-tune from the incumbent
vs. cold restart — and reports post-detection recovery time.

``--full`` runs the paper-scale budgets (60/180 steps, 2 passes, 30
re-runs); the default is a scaled-down budget suitable for a laptop.
``--save DIR`` exports the underlying study runs as JSON;
``--load DIR`` re-renders figures from a previous export instead of
re-running.  ``--resume`` checkpoints every study cell into a study
store — a JSONL directory or a SQLite ``*.db`` file — after each
observation and, when re-invoked with the same target after a crash,
resumes from exactly where the campaign died (docs/ROBUSTNESS.md,
docs/STORE.md).  ``--trace`` records the run as a JSONL
observability trace (docs/OBSERVABILITY.md) that the ``obs``
subcommands aggregate.

Exit status: 0 on success; 1 when any study cell raised or any tuning
run finished without a single successful evaluation (both cases print
a failure table first).

All reporting routes through :class:`repro.obs.ProgressSink`: exhibit
output always prints, informational lines respect ``--quiet``, and live
study progress (per-cell ETA) renders on stderr.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable

from repro import obs
from repro.experiments import figures
from repro.experiments.presets import default_budget, full_budget
from repro.experiments.report import render_figure, render_table
from repro.experiments.runner import (
    StudyError,
    SundogStudy,
    SyntheticStudy,
    evaluation_failure_rows,
)
from repro.obs.sinks import NORMAL, QUIET, VERBOSE


def _synthetic_study(args: argparse.Namespace) -> SyntheticStudy:
    if args.load:
        from repro.experiments.export import load_study

        study = load_study(f"{args.load}/synthetic.json")
        assert isinstance(study, SyntheticStudy)
        return study
    budget = full_budget() if args.full else default_budget()
    study = SyntheticStudy(
        budget,
        seed=args.seed,
        n_jobs=args.jobs,
        workers=args.workers,
        batch_size=args.batch_size,
        checkpoint_dir=args.resume,
    ).run()
    if args.save:
        from pathlib import Path

        from repro.experiments.export import save_study

        Path(args.save).mkdir(parents=True, exist_ok=True)
        save_study(study, f"{args.save}/synthetic.json")
    return study


def _sundog_study(args: argparse.Namespace) -> SundogStudy:
    if args.load:
        from repro.experiments.export import load_study

        study = load_study(f"{args.load}/sundog.json")
        assert isinstance(study, SundogStudy)
        return study
    budget = full_budget() if args.full else default_budget()
    study = SundogStudy(
        budget,
        seed=args.seed,
        n_jobs=args.jobs,
        workers=args.workers,
        batch_size=args.batch_size,
        checkpoint_dir=args.resume,
    ).run()
    if args.save:
        from pathlib import Path

        from repro.experiments.export import save_study

        Path(args.save).mkdir(parents=True, exist_ok=True)
        save_study(study, f"{args.save}/sundog.json")
    return study


def _sensitivity_report() -> str:
    """Parameter sweeps around Sundog's manual configuration."""
    from repro.experiments.report import render_table
    from repro.storm.sensitivity import SensitivityAnalyzer, default_sweep_values
    from repro.sundog import sundog_default_config, sundog_topology
    from repro.experiments.presets import default_cluster

    cluster = default_cluster()
    topology = sundog_topology()
    base = sundog_default_config().replace(
        parallelism_hints={n: 11 for n in topology}
    )
    analyzer = SensitivityAnalyzer(topology, cluster, base)
    ranked = analyzer.tornado(default_sweep_values(cluster))
    rows = [
        {"Parameter": name, "throughput dynamic range": round(spread, 2)}
        for name, spread in ranked
    ]
    interaction = analyzer.interaction(
        "batch_size", 265_312, "batch_parallelism", 16
    )
    lines = [
        "== Sensitivity: one-at-a-time sweeps around Sundog's manual config ==",
        render_table(rows),
        f"batch_size x batch_parallelism interaction factor: "
        f"{interaction:.2f} (1.0 would mean the two parameters compose "
        f"independently — they do not, which is the paper's argument "
        f"for black-box joint optimization, §III-B)",
    ]
    return "\n".join(lines)


# ----------------------------------------------------------------------
# obs subcommands
# ----------------------------------------------------------------------
def obs_main(argv: list[str]) -> int:
    """``repro-experiments obs ...`` — read back / compare run traces."""
    parser = argparse.ArgumentParser(
        prog="repro-experiments obs",
        description="Aggregate, tail, report, export, or perf-compare "
        "JSONL observability traces.",
    )
    sub = parser.add_subparsers(dest="command", required=True)
    summary = sub.add_parser(
        "summary", help="where-time-goes aggregate of a run trace"
    )
    summary.add_argument("trace", help="JSONL trace file written by --trace")
    tail = sub.add_parser("tail", help="render the last trace events")
    tail.add_argument("trace", help="JSONL trace file written by --trace")
    tail.add_argument("-n", type=int, default=20, help="events to show")
    tail.add_argument(
        "--follow", action="store_true", help="poll for appended events"
    )
    tail.add_argument(
        "--interval", type=float, default=0.5, help="--follow poll seconds"
    )
    report = sub.add_parser(
        "report",
        help="render a self-contained HTML run report "
        "(convergence, calibration, phase times, timelines)",
    )
    report.add_argument("trace", help="JSONL trace file written by --trace")
    report.add_argument(
        "-o", "--output", default="report.html", help="HTML file to write"
    )
    report.add_argument(
        "--title", default=None, help="report title (default: trace name)"
    )
    export = sub.add_parser(
        "export",
        help="export the trace's latest metrics snapshot for scraping",
    )
    export.add_argument("trace", help="JSONL trace file written by --trace")
    export.add_argument(
        "--format",
        choices=["openmetrics"],
        default="openmetrics",
        help="exposition format (Prometheus textfile collector)",
    )
    export.add_argument(
        "-o",
        "--output",
        default=None,
        help="file to write (default: stdout); write *.prom into a "
        "node-exporter textfile directory to scrape a live run",
    )
    perf = sub.add_parser(
        "perf-compare",
        help="compare two bench-result JSONs; exit 1 on regression",
    )
    perf.add_argument("baseline", help="committed baseline JSON")
    perf.add_argument("current", help="freshly produced bench JSON")
    perf.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="relative regression tolerance per metric (default 0.10)",
    )
    perf.add_argument(
        "--warn-only",
        action="store_true",
        help="report perf regressions but exit 0 (smoke-run variance); "
        "schema drift still fails",
    )
    args = parser.parse_args(argv)
    sink = obs.ProgressSink()

    if args.command == "summary":
        events = obs.read_jsonl(args.trace)
        sink.result(render_figure(figures.trace_summary(events)))
        return 0

    if args.command == "report":
        from repro.experiments.htmlreport import write_report

        events = obs.read_jsonl(args.trace)
        title = args.title or f"Tuning run report: {args.trace}"
        path = write_report(events, args.output, title=title)
        sink.info(f"(wrote {path})")
        return 0

    if args.command == "export":
        from repro.obs.openmetrics import latest_snapshot, render_openmetrics

        # Live traces may carry a torn tail mid-append: tolerate it.
        events = obs.read_jsonl(args.trace, strict=False)
        snap = latest_snapshot(events)
        if snap is None:
            sink.result("error: trace has no metrics snapshot yet")
            return 1
        text = render_openmetrics(snap)
        if args.output:
            from repro.core.checkpoint import atomic_write_text

            # Atomic *and durable* for textfile scrapers: fsync the
            # file and its directory so a crash right after the rename
            # cannot leave a truncated or missing export behind.
            atomic_write_text(args.output, text)
            sink.info(f"(wrote {args.output})")
        else:
            sink.result(text.rstrip("\n"))
        return 0

    if args.command == "perf-compare":
        from repro.obs.perf import SchemaDriftError, compare, load_result

        try:
            report_obj = compare(
                load_result(args.baseline),
                load_result(args.current),
                threshold=args.threshold,
            )
        except SchemaDriftError as exc:
            sink.result(f"SCHEMA DRIFT: {exc}")
            return 2
        sink.result(report_obj.render())
        if not report_obj.ok and args.warn_only:
            sink.result("(--warn-only: regressions reported, not failing)")
            return 0
        return 0 if report_obj.ok else 1

    # tail — strict=False throughout: a live producer can leave a torn
    # line at (or after a crash, in the middle of) the file; a follower
    # must skip and retry on the next poll rather than die mid-run.
    events = obs.read_jsonl(args.trace, strict=False)
    for record in events[-max(0, args.n) :]:
        sink.result(obs.format_event_line(record))
    if args.follow:
        seen = len(events)
        try:
            while True:
                time.sleep(args.interval)
                events = obs.read_jsonl(args.trace, strict=False)
                for record in events[seen:]:
                    sink.result(obs.format_event_line(record))
                seen = len(events)
        except KeyboardInterrupt:
            pass
    return 0


# ----------------------------------------------------------------------
# Main entry point
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    if argv is None:
        argv = sys.argv[1:]
    if argv and argv[0] == "obs":
        return obs_main(list(argv[1:]))
    if argv and argv[0] == "drift":
        from repro.experiments.drift import drift_main

        return drift_main(list(argv[1:]))
    if argv and argv[0] == "store":
        from repro.store.cli import store_main

        return store_main(list(argv[1:]))
    if argv and argv[0] == "campaign":
        from repro.service.cli import campaign_main

        return campaign_main(list(argv[1:]))
    parser = argparse.ArgumentParser(
        prog="repro-experiments",
        description="Regenerate the paper's tables and figures.",
    )
    parser.add_argument(
        "exhibit",
        choices=[
            "table1",
            "table2",
            "table3",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "sensitivity",
            "claims",
            "all",
        ],
    )
    parser.add_argument(
        "--full",
        action="store_true",
        help="paper-scale budgets (60/180 steps, 2 passes, 30 re-runs)",
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs", type=int, default=1, help="process-parallel study cells"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="total worker budget, split between cell processes and "
        "in-loop concurrent evaluations (overrides --jobs; see "
        "EXPERIMENTS.md)",
    )
    parser.add_argument(
        "--batch-size",
        type=int,
        default=None,
        help="in-flight proposals per tuning loop (default: the loop's "
        "worker share of --workers)",
    )
    parser.add_argument(
        "--save", default=None, help="directory to export study runs to"
    )
    parser.add_argument(
        "--load", default=None, help="directory to re-render study runs from"
    )
    parser.add_argument(
        "--resume",
        default=None,
        metavar="DIR|DB",
        help="checkpoint study cells after every observation into DIR "
        "(a JSONL store directory) or a *.db SQLite store, and resume "
        "any partial runs already there (crash-safe campaigns; see "
        "docs/ROBUSTNESS.md and docs/STORE.md)",
    )
    parser.add_argument(
        "--csv", default=None, help="directory to write exhibit CSVs to"
    )
    parser.add_argument(
        "--svg", default=None, help="directory to write exhibit SVG charts to"
    )
    parser.add_argument(
        "--trace",
        default=None,
        metavar="RUN.jsonl",
        help="record an observability trace of the run (JSONL)",
    )
    verbosity_group = parser.add_mutually_exclusive_group()
    verbosity_group.add_argument(
        "-v",
        "--verbose",
        action="store_true",
        help="extra progress detail (per-cell start events)",
    )
    verbosity_group.add_argument(
        "-q",
        "--quiet",
        action="store_true",
        help="exhibit output only, no progress or info lines",
    )
    args = parser.parse_args(argv)

    verbosity = QUIET if args.quiet else (VERBOSE if args.verbose else NORMAL)
    progress = obs.ProgressSink(verbosity)

    def emit(data: "figures.FigureData") -> None:
        progress.result(render_figure(data))
        if args.csv:
            from repro.experiments.report import write_csv

            for path in write_csv(data, args.csv):
                progress.info(f"(wrote {path})")
        if args.svg:
            from repro.experiments.svg import save_figure_svg

            for path in save_figure_svg(data, args.svg):
                progress.info(f"(wrote {path})")

    static: dict[str, Callable[[], figures.FigureData]] = {
        "table1": figures.table1_parameters,
        "table2": figures.table2_topologies,
        "table3": figures.table3_literature,
        "fig3": figures.figure3_network_load,
    }

    exhibits = (
        [
            "table1",
            "table2",
            "table3",
            "fig3",
            "fig4",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "sensitivity",
            "claims",
        ]
        if args.exhibit == "all"
        else [args.exhibit]
    )

    manifest = {
        "argv": list(argv),
        "exhibit": args.exhibit,
        "seed": args.seed,
        "jobs": args.jobs,
        "workers": args.workers,
        "batch_size": args.batch_size,
        "budget": "full" if args.full else "default",
        "resume": args.resume,
    }
    exit_code = 0
    with obs.session(
        jsonl_path=args.trace, progress=progress, manifest=manifest
    ):
        synthetic: SyntheticStudy | None = None
        sundog: SundogStudy | None = None
        try:
            for exhibit in exhibits:
                if exhibit == "sensitivity":
                    progress.result(_sensitivity_report())
                elif exhibit == "claims":
                    from repro.experiments.claims import (
                        evaluate_claims,
                        render_claims,
                    )

                    if synthetic is None:
                        synthetic = _synthetic_study(args)
                    if sundog is None:
                        sundog = _sundog_study(args)
                    progress.result(
                        render_claims(evaluate_claims(synthetic, sundog))
                    )
                elif exhibit in static:
                    emit(static[exhibit]())
                elif exhibit in ("fig4", "fig5", "fig6", "fig7"):
                    if synthetic is None:
                        synthetic = _synthetic_study(args)
                    builder = {
                        "fig4": figures.figure4_throughput,
                        "fig5": figures.figure5_convergence,
                        "fig6": figures.figure6_loess_traces,
                        "fig7": figures.figure7_step_time,
                    }[exhibit]
                    emit(builder(synthetic))
                elif exhibit == "fig8":
                    if sundog is None:
                        sundog = _sundog_study(args)
                    emit(figures.figure8a_sundog_throughput(sundog))
                    emit(figures.figure8b_sundog_convergence(sundog))
                    progress.result(
                        f"speedup of tuned configuration over pla hints-only: "
                        f"{figures.speedup_over_pla(sundog):.2f}x (paper: 2.8x)"
                    )
                progress.result()
        except StudyError as err:
            rows = [
                {"cell": label, "error": detail}
                for label, detail in err.failures
            ]
            progress.result(f"== {err.study} study: failed cells ==")
            progress.result(render_table(rows))
            if args.resume:
                progress.result(
                    f"(re-run with --resume {args.resume} to pick up "
                    f"from the last checkpoint)"
                )
            exit_code = 1
        else:
            failed_runs = []
            for study in (synthetic, sundog):
                if study is not None:
                    failed_runs.extend(evaluation_failure_rows(study))
            if failed_runs:
                progress.result(
                    "== runs with no successful evaluation =="
                )
                progress.result(render_table(failed_runs))
                exit_code = 1
    if args.trace:
        progress.info(f"(wrote trace {args.trace})")
    return exit_code


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
