"""LOESS (locally weighted regression) smoothing.

Figure 6 of the paper plots "LOESS regression smoothing with span 0.75"
of the Bayesian optimizer's throughput traces.  This is Cleveland's
classic locally weighted linear regression: for each evaluation point,
the nearest ``span * n`` observations are fit with a weighted linear
model under tricube weights.
"""

from __future__ import annotations

import numpy as np


def _tricube(u: np.ndarray) -> np.ndarray:
    """Tricube kernel on |u| <= 1."""
    out = np.clip(1.0 - np.abs(u) ** 3, 0.0, None) ** 3
    return out


def loess_at(
    x: np.ndarray,
    y: np.ndarray,
    x0: float,
    *,
    span: float = 0.75,
) -> float:
    """LOESS estimate at a single point ``x0``."""
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x.shape != y.shape or x.ndim != 1:
        raise ValueError("x and y must be 1-D arrays of equal length")
    n = len(x)
    if n == 0:
        raise ValueError("need at least one observation")
    if not 0.0 < span <= 1.0:
        raise ValueError("span must be in (0, 1]")
    k = max(2, int(np.ceil(span * n)))
    k = min(k, n)
    dists = np.abs(x - x0)
    idx = np.argpartition(dists, k - 1)[:k]
    d_max = dists[idx].max()
    if d_max == 0:
        return float(np.mean(y[idx]))
    w = _tricube(dists[idx] / d_max)
    xw = x[idx]
    yw = y[idx]
    # Weighted linear least squares: minimize sum w (y - a - b(x - x0))^2.
    sw = w.sum()
    if sw <= 0:
        return float(np.mean(yw))
    dx = xw - x0
    swx = float(np.sum(w * dx))
    swxx = float(np.sum(w * dx * dx))
    swy = float(np.sum(w * yw))
    swxy = float(np.sum(w * dx * yw))
    denom = sw * swxx - swx * swx
    if abs(denom) < 1e-12:
        return swy / sw
    a = (swxx * swy - swx * swxy) / denom
    return float(a)


def loess(
    x: np.ndarray,
    y: np.ndarray,
    *,
    span: float = 0.75,
    x_eval: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """LOESS curve over the data (or over ``x_eval`` when given).

    Returns ``(x_eval, smoothed)`` sorted by x.
    """
    x = np.asarray(x, dtype=float)
    y = np.asarray(y, dtype=float)
    if x_eval is None:
        x_eval = np.unique(x)
    else:
        x_eval = np.asarray(x_eval, dtype=float)
    smoothed = np.array([loess_at(x, y, float(x0), span=span) for x0 in x_eval])
    order = np.argsort(x_eval)
    return x_eval[order], smoothed[order]
