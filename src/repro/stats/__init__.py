"""Statistical analyses the paper applies to its measurements.

* :mod:`repro.stats.loess` — LOESS regression smoothing with span 0.75
  (Figure 6's trend lines),
* :mod:`repro.stats.ttest` — two-sided t-tests at p = 0.05 (Figure 8's
  significance statements),
* :mod:`repro.stats.summarize` — mean/min/max summaries behind the
  error bars of Figures 4, 5 and 8.
"""

from repro.stats.loess import loess, loess_at
from repro.stats.summarize import Summary, summarize
from repro.stats.ttest import TTestResult, two_sided_t_test, welch_t_test

__all__ = [
    "Summary",
    "TTestResult",
    "loess",
    "loess_at",
    "summarize",
    "two_sided_t_test",
    "welch_t_test",
]
