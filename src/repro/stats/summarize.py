"""Summaries behind the paper's error bars."""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

import numpy as np


@dataclass(frozen=True)
class Summary:
    """Mean with min/max error-bar bounds plus dispersion."""

    mean: float
    minimum: float
    maximum: float
    std: float
    n: int

    def as_dict(self) -> dict[str, float]:
        return {
            "mean": self.mean,
            "min": self.minimum,
            "max": self.maximum,
            "std": self.std,
            "n": self.n,
        }


def summarize(values: Sequence[float]) -> Summary:
    """Mean/min/max/std of repeated measurements (Figures 4, 5, 8)."""
    values = [float(v) for v in values]
    if not values:
        raise ValueError("values must be non-empty")
    arr = np.asarray(values)
    return Summary(
        mean=float(arr.mean()),
        minimum=float(arr.min()),
        maximum=float(arr.max()),
        std=float(arr.std(ddof=1)) if len(values) > 1 else 0.0,
        n=len(values),
    )


def bootstrap_mean_ci(
    values: Sequence[float],
    *,
    n_resamples: int = 2000,
    confidence: float = 0.95,
    seed: int = 0,
) -> tuple[float, float]:
    """Percentile-bootstrap confidence interval for the mean."""
    values = np.asarray([float(v) for v in values])
    if values.size == 0:
        raise ValueError("values must be non-empty")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    rng = np.random.default_rng(seed)
    idx = rng.integers(0, values.size, size=(n_resamples, values.size))
    means = values[idx].mean(axis=1)
    lo = (1.0 - confidence) / 2.0
    return (
        float(np.quantile(means, lo)),
        float(np.quantile(means, 1.0 - lo)),
    )


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean (for speedup aggregation across topologies)."""
    values = [float(v) for v in values]
    if not values:
        raise ValueError("values must be non-empty")
    if any(v <= 0 for v in values):
        raise ValueError("geometric mean requires positive values")
    return float(math.exp(sum(math.log(v) for v in values) / len(values)))
