"""Two-sided t-tests for throughput comparisons.

The paper tests whether strategy throughputs differ significantly
("A two-sided t-test deemed these differences statistically
insignificant (p=0.05)", §V-D).  Implemented from scratch (Welch's
unequal-variance form plus the pooled-variance Student form); tests
cross-check against :func:`scipy.stats.ttest_ind`.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Sequence

from scipy import stats as _sstats


@dataclass(frozen=True)
class TTestResult:
    """Outcome of a two-sample t-test."""

    statistic: float
    df: float
    p_value: float
    alpha: float = 0.05

    @property
    def significant(self) -> bool:
        return self.p_value < self.alpha

    def verdict(self) -> str:
        word = "significant" if self.significant else "insignificant"
        return (
            f"t={self.statistic:.3f}, df={self.df:.1f}, p={self.p_value:.4f} "
            f"-> statistically {word} (alpha={self.alpha})"
        )


def _moments(sample: Sequence[float]) -> tuple[int, float, float]:
    n = len(sample)
    if n < 2:
        raise ValueError("each sample needs at least two observations")
    mean = sum(sample) / n
    var = sum((v - mean) ** 2 for v in sample) / (n - 1)
    return n, mean, var


def welch_t_test(
    a: Sequence[float], b: Sequence[float], *, alpha: float = 0.05
) -> TTestResult:
    """Welch's two-sided t-test (unequal variances)."""
    na, ma, va = _moments(a)
    nb, mb, vb = _moments(b)
    se2 = va / na + vb / nb
    if se2 <= 0:
        # Degenerate: identical constant samples are trivially equal.
        equal = math.isclose(ma, mb)
        return TTestResult(
            statistic=0.0 if equal else math.inf,
            df=float(na + nb - 2),
            p_value=1.0 if equal else 0.0,
            alpha=alpha,
        )
    t = (ma - mb) / math.sqrt(se2)
    df = se2**2 / (
        (va / na) ** 2 / (na - 1) + (vb / nb) ** 2 / (nb - 1)
    )
    p = 2.0 * float(_sstats.t.sf(abs(t), df))
    return TTestResult(statistic=t, df=df, p_value=p, alpha=alpha)


def two_sided_t_test(
    a: Sequence[float],
    b: Sequence[float],
    *,
    alpha: float = 0.05,
    equal_var: bool = False,
) -> TTestResult:
    """Two-sided two-sample t-test; Welch by default, pooled on request."""
    if not equal_var:
        return welch_t_test(a, b, alpha=alpha)
    na, ma, va = _moments(a)
    nb, mb, vb = _moments(b)
    df = na + nb - 2
    sp2 = ((na - 1) * va + (nb - 1) * vb) / df
    se = math.sqrt(sp2 * (1.0 / na + 1.0 / nb))
    if se == 0:
        equal = math.isclose(ma, mb)
        return TTestResult(
            statistic=0.0 if equal else math.inf,
            df=float(df),
            p_value=1.0 if equal else 0.0,
            alpha=alpha,
        )
    t = (ma - mb) / se
    p = 2.0 * float(_sstats.t.sf(abs(t), df))
    return TTestResult(statistic=t, df=float(df), p_value=p, alpha=alpha)
