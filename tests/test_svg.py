"""SVG figure rendering."""

from __future__ import annotations

import xml.etree.ElementTree as ET

import pytest

from repro.experiments.figures import FigureData, figure3_network_load
from repro.experiments.svg import save_figure_svg, svg_bar_chart, svg_line_chart


def parse(svg_text: str) -> ET.Element:
    return ET.fromstring(svg_text)


class TestBarChart:
    def rows(self):
        return [
            {"Topology": "small", "MB/s": 1.5, "min": 1.0, "max": 2.0},
            {"Topology": "large", "MB/s": 0.5, "min": 0.4, "max": 0.6},
        ]

    def test_valid_xml_with_bars(self):
        svg = svg_bar_chart(
            self.rows(), value_key="MB/s", label_keys=["Topology"], title="t"
        )
        root = parse(svg)
        rects = root.findall(".//{http://www.w3.org/2000/svg}rect")
        assert len(rects) >= 3  # background + 2 bars

    def test_bar_heights_proportional(self):
        svg = svg_bar_chart(self.rows(), value_key="MB/s", label_keys=["Topology"])
        root = parse(svg)
        rects = root.findall(".//{http://www.w3.org/2000/svg}rect")[1:]
        heights = sorted(float(r.get("height")) for r in rects)
        assert heights[1] == pytest.approx(3 * heights[0], rel=0.01)

    def test_error_bars_add_lines(self):
        base = svg_bar_chart(self.rows(), value_key="MB/s", label_keys=["Topology"])
        with_err = svg_bar_chart(
            self.rows(),
            value_key="MB/s",
            label_keys=["Topology"],
            error_keys=("min", "max"),
        )
        assert with_err.count("<line") > base.count("<line")

    def test_color_key_adds_legend(self):
        svg = svg_bar_chart(
            self.rows(),
            value_key="MB/s",
            label_keys=["Topology"],
            color_key="Topology",
        )
        assert "small" in svg and "large" in svg

    def test_escapes_labels(self):
        rows = [{"n": "<script>", "v": 1.0}]
        svg = svg_bar_chart(rows, value_key="v", label_keys=["n"])
        assert "<script>" not in svg
        parse(svg)  # still valid XML

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            svg_bar_chart([], value_key="v", label_keys=["n"])


class TestLineChart:
    def test_valid_xml_with_polylines(self):
        svg = svg_line_chart(
            {
                "a": ([1.0, 2.0, 3.0], [1.0, 2.0, 3.0]),
                "b": ([1.0, 2.0, 3.0], [3.0, 2.0, 1.0]),
            },
            title="traces",
        )
        root = parse(svg)
        polylines = root.findall(".//{http://www.w3.org/2000/svg}polyline")
        assert len(polylines) == 2

    def test_single_x_value_handled(self):
        svg = svg_line_chart({"a": ([5.0], [2.0])})
        parse(svg)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            svg_line_chart({})


class TestSaveFigureSvg:
    def test_figure3_saved_as_bar_chart(self, tmp_path):
        data = figure3_network_load()
        paths = save_figure_svg(data, tmp_path)
        assert len(paths) == 1
        assert paths[0].name == "figure_3.svg"
        parse(paths[0].read_text())

    def test_series_figure_saved_as_line_chart(self, tmp_path):
        data = FigureData(
            "Figure 6", "traces", series={"t": ([1.0, 2.0], [1.0, 4.0])}
        )
        paths = save_figure_svg(data, tmp_path)
        assert paths[0].name == "figure_6_series.svg"

    def test_unhinted_rows_are_skipped(self, tmp_path):
        data = FigureData("Table I", "params", rows=[{"Parameter": "x"}])
        assert save_figure_svg(data, tmp_path) == []


def test_cli_svg_flag(tmp_path, capsys):
    from repro.cli import main

    assert main(["fig3", "--svg", str(tmp_path)]) == 0
    assert (tmp_path / "figure_3.svg").exists()
