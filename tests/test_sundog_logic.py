"""Sundog's real operator logic in local-mode execution."""

from __future__ import annotations

import pytest

from repro.storm.local import LocalTopologyRunner
from repro.storm.tuples import Tuple
from repro.sundog import CommonCrawlWorkload, sundog_topology
from repro.sundog.logic import (
    EntityExtractBolt,
    FeatureComputeBolt,
    FilterBolt,
    MergeFeaturesBolt,
    NormalizePairBolt,
    PairCountBolt,
    RankingBolt,
    hdfs_line_source,
    sundog_logic,
)


@pytest.fixture
def workload():
    return CommonCrawlWorkload(match_fraction=0.4)


def tup(**values):
    return Tuple(values=values, source="test", batch_id=0)


class TestIndividualBolts:
    def test_filter_passes_matching_lines(self, workload):
        bolt = FilterBolt(workload)
        assert list(bolt(tup(line="the storm cluster runs"))) == [
            {"line": "the storm cluster runs"}
        ]
        assert list(bolt(tup(line="nothing relevant here"))) == []

    def test_entity_extract_pairs_terms(self, workload):
        bolt = EntityExtractBolt(workload)
        rows = list(bolt(tup(line="storm and hadoop cluster data")))
        pairs = {(r["entity_a"], r["entity_b"]) for r in rows}
        # Three matched terms -> three unordered pairs.
        assert len(pairs) == 3

    def test_entity_extract_single_term_uses_context(self, workload):
        bolt = EntityExtractBolt(workload)
        rows = list(bolt(tup(line="data storm data")))
        assert len(rows) == 1
        assert rows[0]["entity_a"] == "storm"

    def test_normalize_orders_pair(self):
        bolt = NormalizePairBolt()
        rows = list(bolt(tup(entity_a="zeta", entity_b="alpha")))
        assert rows[0]["pair"] == "alpha|zeta"

    def test_pair_count_aggregates_per_batch(self):
        bolt = PairCountBolt("events")
        bolt.begin_batch(0)
        for _ in range(3):
            assert list(bolt(tup(pair="a|b"))) == []
        assert list(bolt(tup(pair="c|d"))) == []
        rows = list(bolt.end_batch())
        counts = {r["pair"]: r["count"] for r in rows}
        assert counts == {"a|b": 3, "c|d": 1}

    def test_feature_compute_uses_dummy_dkvs(self):
        bolt = FeatureComputeBolt("pmi")
        rows = list(bolt(tup(pair="a|b", count=7)))
        assert rows[0]["feature"] == "pmi"
        assert rows[0]["value"] > 0

    def test_merge_features_combines(self):
        bolt = MergeFeaturesBolt()
        bolt.begin_batch(0)
        bolt(tup(pair="a|b", feature="f1", value=1.0))
        bolt(tup(pair="a|b", feature="f2", value=2.0))
        rows = list(bolt.end_batch())
        assert rows[0]["features"] == {"f1": 1.0, "f2": 2.0}

    def test_ranking_scores_in_unit_interval(self):
        bolt = RankingBolt()
        rows = list(
            bolt(tup(pair="a|b", features={"f1": 1.0, "semantic_type": 1.0}))
        )
        assert 0.0 <= rows[0]["score"] <= 1.0


class TestEndToEnd:
    @pytest.fixture
    def result(self, workload):
        topology = sundog_topology(workload, seed=1)
        runner = LocalTopologyRunner(
            topology,
            sources={"HDFS1": hdfs_line_source(workload, seed=2)},
            logic=sundog_logic(workload),
        )
        return runner.run(n_batches=4, batch_size=300)

    def test_filter_selectivity_matches_workload(self, result, workload):
        measured = result.stats["Filter"].selectivity
        assert measured == pytest.approx(workload.match_fraction, abs=0.07)

    def test_counters_aggregate(self, result):
        # Aggregation emits at most one row per distinct pair per batch,
        # strictly fewer than the tuples received.
        cnt = result.stats["CNT2"]
        assert 0 < cnt.emitted < cnt.received

    def test_every_phase_saw_work(self, result):
        for name in ("Filter", "PPS3", "FC1", "M1", "R1"):
            assert result.stats[name].received > 0

    def test_ranked_output_reaches_hdfs(self, result):
        scored = result.sink_tuples["HDFS2"]
        assert scored
        assert all(0.0 <= float(t["score"]) <= 1.0 for t in scored)

    def test_term_counts_reach_dkvs1(self, result):
        assert result.sink_tuples["DKVS1"]
        sample = result.sink_tuples["DKVS1"][0]
        assert "term" in sample.fields and "count" in sample.fields

    def test_hdfs2_and_hdfs3_receive_same_rankings(self, result):
        assert len(result.sink_tuples["HDFS2"]) == len(result.sink_tuples["HDFS3"])
