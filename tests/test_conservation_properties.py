"""Property-based conservation laws across subsystems.

Random topologies, random configurations, random data — the structural
invariants that must hold regardless: tuple conservation through the
local executor, hint-normalization bounds, volume consistency, and
informed-weight recursions.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.informed import base_parallelism_weights
from repro.storm.config import TopologyConfig
from repro.storm.local import LocalTopologyRunner, repeating_source
from repro.topology_gen.ggen import layer_by_layer


def build_topology(seed: int, n: int, layers: int):
    return layer_by_layer(
        f"cons{seed}", n, min(layers, n), 0.35, seed=seed, cost=1.0
    )


def sources_for(topology):
    return {
        name: repeating_source(
            lambda chunk, name=name: [
                {"id": f"{name}-{chunk}-{i}"} for i in range(64)
            ]
        )
        for name in topology.sources()
    }


@given(
    seed=st.integers(min_value=0, max_value=3000),
    n=st.integers(min_value=3, max_value=14),
    layers=st.integers(min_value=2, max_value=4),
    batch_size=st.integers(min_value=1, max_value=40),
)
@settings(max_examples=40, deadline=None)
def test_local_executor_conserves_tuples(seed, n, layers, batch_size):
    """With unit selectivity, received(o) = sum over parents of emitted.

    Every subscriber receives all of a parent's output, so a bolt's
    received count equals the sum of its parents' emitted counts, and
    pass-through logic emits exactly what it receives.
    """
    topology = build_topology(seed, n, layers)
    runner = LocalTopologyRunner(topology, sources=sources_for(topology))
    result = runner.run(n_batches=2, batch_size=batch_size)
    assert result.source_tuples == 2 * batch_size
    for name in topology.topological_order():
        stat = result.stats[name]
        parents = topology.parents(name)
        if parents:
            expected = sum(result.stats[p].emitted for p in parents)
            assert stat.received == expected
        # Unit selectivity pass-through: emitted == received.
        assert stat.emitted == stat.received
        # Task accounting covers every received tuple exactly once
        # (shuffle groupings split; single-task operators trivially).
        assert sum(stat.per_task_received) == stat.received


@given(
    seed=st.integers(min_value=0, max_value=3000),
    n=st.integers(min_value=3, max_value=20),
)
@settings(max_examples=40, deadline=None)
def test_volumes_match_local_execution(seed, n):
    """The analytic volume recursion predicts local-mode tuple counts."""
    topology = build_topology(seed, n, 3)
    batch_size = 60
    runner = LocalTopologyRunner(topology, sources=sources_for(topology))
    result = runner.run(n_batches=1, batch_size=batch_size)
    volumes = topology.volumes()
    for name in topology.topological_order():
        predicted = volumes[name] * batch_size
        # Spout shares involve integer division of the batch; allow the
        # rounding slack that introduces downstream.
        assert result.stats[name].received == pytest.approx(
            predicted, abs=len(topology.sources())
        )


@given(
    seed=st.integers(min_value=0, max_value=3000),
    hint=st.integers(min_value=1, max_value=200),
    max_tasks=st.integers(min_value=5, max_value=500),
)
@settings(max_examples=60, deadline=None)
def test_hint_normalization_properties(seed, hint, max_tasks):
    topology = build_topology(seed, 8, 3)
    config = TopologyConfig(
        parallelism_hints={n: hint for n in topology}, max_tasks=max_tasks
    )
    hints = config.normalized_hints(topology)
    # Floors at one task per operator.
    assert all(h >= 1 for h in hints.values())
    # Never exceeds the cap by more than the rounding slack.
    assert sum(hints.values()) <= max(max_tasks, len(topology)) + len(topology) // 2
    # No-op when already under the cap.
    if hint * len(topology) <= max_tasks:
        assert hints == {n: hint for n in topology}
    # Scaling is monotone: no operator gains tasks from normalization.
    assert all(hints[n] <= max(1, hint) for n in topology)


@given(seed=st.integers(min_value=0, max_value=3000))
@settings(max_examples=40, deadline=None)
def test_informed_weights_recursion(seed):
    """Weights: spouts 1.0; every bolt the exact sum of its parents."""
    topology = build_topology(seed, 12, 4)
    weights = base_parallelism_weights(topology)
    for name in topology.topological_order():
        parents = topology.parents(name)
        if not parents:
            assert weights[name] == 1.0
        else:
            assert weights[name] == pytest.approx(
                sum(weights[p] for p in parents)
            )
    # Total sink weight cannot exceed total path count; all positive.
    assert all(w >= 1.0 for w in weights.values())


@given(
    seed=st.integers(min_value=0, max_value=3000),
    n=st.integers(min_value=4, max_value=16),
)
@settings(max_examples=40, deadline=None)
def test_volume_mass_conservation(seed, n):
    """With unit selectivities, each operator's input volume equals the
    sum of its parents' output volumes (no tuples appear or vanish)."""
    topology = build_topology(seed, n, 3)
    volumes = topology.volumes()
    for name in topology.topological_order():
        parents = topology.parents(name)
        if parents:
            assert volumes[name] == pytest.approx(
                sum(volumes[p] for p in parents)
            )
    total_source = sum(volumes[s] for s in topology.sources())
    assert total_source == pytest.approx(1.0)
