"""Additional Sundog and fusion interplay coverage."""

from __future__ import annotations

import pytest

from repro.storm.analytic import AnalyticPerformanceModel
from repro.storm.cluster import paper_cluster
from repro.storm.trident import fuse_linear_chains, fusion_ratio
from repro.sundog import sundog_default_config, sundog_topology


class TestSundogFusion:
    def test_sundog_has_fusable_chains(self):
        """The PPS1->PPS2->PPS3 preprocessing chain fuses (§III-A)."""
        topo = sundog_topology()
        result = fuse_linear_chains(topo)
        assert len(result.topology) < len(topo)
        assert result.fused_name_of("PPS2") == result.fused_name_of("PPS1")
        assert result.fused_name_of("PPS3") == result.fused_name_of("PPS1")

    def test_fusion_preserves_total_work(self):
        topo = sundog_topology()
        fused = fuse_linear_chains(topo).topology
        assert fused.total_compute_units_per_tuple() == pytest.approx(
            topo.total_compute_units_per_tuple(), rel=1e-9
        )

    def test_fusion_ratio_moderate(self):
        ratio = fusion_ratio(sundog_topology())
        assert 0.05 < ratio < 0.5

    def test_fused_sundog_still_evaluates(self):
        topo = fuse_linear_chains(sundog_topology()).topology
        model = AnalyticPerformanceModel(topo, paper_cluster())
        config = sundog_default_config().replace(
            parallelism_hints={n: 11 for n in topo}
        )
        run = model.evaluate_noise_free(config)
        assert not run.failed
        assert run.throughput_tps > 1e5


class TestSundogModelDetails:
    @pytest.fixture
    def model(self):
        return AnalyticPerformanceModel(sundog_topology(), paper_cluster())

    def test_acker_starvation_binds(self, model):
        config = sundog_default_config().replace(
            parallelism_hints={n: 11 for n in sundog_topology()},
            batch_size=265_312,
            batch_parallelism=16,
            ackers=2,
        )
        run = model.evaluate_noise_free(config)
        assert run.details["limiting_cap"] == "acker"

    def test_disabled_acking_removes_the_cap(self, model):
        base = sundog_default_config().replace(
            parallelism_hints={n: 11 for n in sundog_topology()},
            batch_size=265_312,
            batch_parallelism=16,
        )
        starved = model.evaluate_noise_free(base.replace(ackers=2))
        unacked = model.evaluate_noise_free(base.replace(ackers=0))
        assert unacked.throughput_tps > 2 * starved.throughput_tps

    def test_extreme_batches_hit_memory_wall(self, model):
        config = sundog_default_config().replace(
            parallelism_hints={n: 11 for n in sundog_topology()},
            batch_size=500_000,
            batch_parallelism=4096,
        )
        run = model.evaluate_noise_free(config)
        # The cliff the Sundog developers feared: huge batch x huge
        # parallelism exhausts worker memory.
        assert run.failed and "memory" in run.failure_reason

    def test_batch_size_alone_is_not_enough(self, model):
        """bs without bp (or vice versa) underperforms the joint tuning
        — the interaction §III-B warns about."""
        topo = sundog_topology()
        base = sundog_default_config().replace(
            parallelism_hints={n: 11 for n in topo}
        )
        only_bs = model.evaluate_noise_free(
            base.replace(batch_size=265_312)
        ).throughput_tps
        only_bp = model.evaluate_noise_free(
            base.replace(batch_parallelism=16)
        ).throughput_tps
        joint = model.evaluate_noise_free(
            base.replace(batch_size=265_312, batch_parallelism=16)
        ).throughput_tps
        assert joint > 1.2 * max(only_bs, only_bp)
