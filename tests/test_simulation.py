"""Discrete-event simulator behaviour."""

from __future__ import annotations

import pytest

from repro.storm.analytic import CalibrationParams
from repro.storm.cluster import ClusterSpec, MachineSpec
from repro.storm.config import TopologyConfig
from repro.storm.simulation import DiscreteEventSimulator, _Machine
from repro.storm.topology import TopologyBuilder, linear_topology


def quiet_calibration(**overrides) -> CalibrationParams:
    defaults = dict(
        batch_overhead_ms=0.0,
        context_switch_kappa=0.0,
        per_task_cpu_overhead=0.0,
        pool_oversubscription_weight=0.0,
        ack_cost_units=1e-9,
        batch_timeout_ms=1e12,
        stage_overhead_ms=0.0,
        wire_overhead=0.0,
    )
    defaults.update(overrides)
    return CalibrationParams(**defaults)


@pytest.fixture
def cluster4():
    return ClusterSpec(
        n_machines=4,
        machine=MachineSpec(cores=4, memory_mb=8192),
        max_executors_per_worker=50,
    )


class TestMachinePrimitive:
    def test_single_job_runs_at_core_speed(self):
        m = _Machine(0, usable_cores=4, core_speed=1.0, efficiency=1.0)

        class Job:
            job_id = 1
            work = 100.0
            target_virtual = 0.0

        job = Job()
        m.add_job(job, now=0.0)
        assert m.next_completion_time(0.0) == pytest.approx(100.0)

    def test_processor_sharing_slows_jobs(self):
        m = _Machine(0, usable_cores=1, core_speed=1.0, efficiency=1.0)

        class Job:
            def __init__(self, jid, work):
                self.job_id = jid
                self.work = work
                self.target_virtual = 0.0

        m.add_job(Job(1, 100.0), now=0.0)
        m.add_job(Job(2, 100.0), now=0.0)
        # Two jobs sharing one core: each at rate 0.5.
        assert m.next_completion_time(0.0) == pytest.approx(200.0)

    def test_jobs_below_core_count_run_full_speed(self):
        m = _Machine(0, usable_cores=4, core_speed=1.0, efficiency=1.0)

        class Job:
            def __init__(self, jid):
                self.job_id = jid
                self.work = 50.0
                self.target_virtual = 0.0

        for i in range(3):
            m.add_job(Job(i), now=0.0)
        assert m.next_completion_time(0.0) == pytest.approx(50.0)

    def test_efficiency_scales_rate(self):
        m = _Machine(0, usable_cores=4, core_speed=1.0, efficiency=0.5)

        class Job:
            job_id = 1
            work = 100.0
            target_virtual = 0.0

        m.add_job(Job(), now=0.0)
        assert m.next_completion_time(0.0) == pytest.approx(200.0)

    def test_next_completion_time_is_a_pure_peek(self):
        """Peeking must not advance the processor-sharing clock.

        The old implementation committed ``advance_to(now)`` inside the
        peek; the event loop relies on the peek being side-effect-free
        so it can probe candidate event times without perturbing the
        machine state (PR 5 satellite).
        """
        m = _Machine(0, usable_cores=1, core_speed=1.0, efficiency=1.0)
        m.add_work(1, 100.0, now=0.0)
        m.add_work(2, 100.0, now=0.0)
        before = (m.virtual, m.last_update, list(m.active), m.n_active)
        # Peek at several different times, repeatedly.
        times = [m.next_completion_time(t) for t in (0.0, 10.0, 50.0, 10.0)]
        times += [m.next_completion_time(t) for t in (0.0, 10.0, 50.0, 10.0)]
        assert (m.virtual, m.last_update, list(m.active), m.n_active) == before
        # Stable answers: repeated peeks at the same time agree exactly.
        assert times[:4] == times[4:]
        # And the projection is consistent: peeking later moves the
        # completion no earlier.
        assert times[0] == pytest.approx(200.0)
        assert times[2] >= times[1] >= times[0]


class TestEndToEnd:
    def test_measures_positive_throughput(self, cluster4):
        topo = linear_topology("chain", 2, cost=5.0, spout_cost=5.0)
        sim = DiscreteEventSimulator(
            topo, cluster4, quiet_calibration(), max_batches=30
        )
        config = TopologyConfig(
            parallelism_hints={n: 4 for n in topo},
            batch_size=50,
            batch_parallelism=4,
            ackers=0,
            num_workers=4,
        )
        run = sim.evaluate_noise_free(config)
        assert not run.failed
        assert run.throughput_tps > 0
        assert run.batch_latency_ms > 0
        assert run.details["completed_batches"] >= 10

    def test_single_operator_rate_matches_hand_math(self, cluster4):
        """One spout, one sink: steady state = stage rate of the spout."""
        builder = TopologyBuilder("solo")
        builder.spout("s", cost=10.0)
        builder.bolt("sink", inputs=["s"], cost=1e-9)
        topo = builder.build()
        sim = DiscreteEventSimulator(
            topo, cluster4, quiet_calibration(), max_batches=60
        )
        config = TopologyConfig(
            parallelism_hints={"s": 4, "sink": 4},
            batch_size=40,
            batch_parallelism=8,
            ackers=0,
            num_workers=4,
        )
        run = sim.evaluate_noise_free(config)
        # 4 tasks at 1/10 tuple per ms each = 400 tuples/s.
        assert run.throughput_tps == pytest.approx(400.0, rel=0.15)

    def test_more_parallelism_helps_until_cores_saturate(self, cluster4):
        topo = linear_topology("chain", 1, cost=10.0, spout_cost=10.0)
        sim = DiscreteEventSimulator(
            topo, cluster4, quiet_calibration(), max_batches=40
        )

        def tput(h):
            config = TopologyConfig(
                parallelism_hints={n: h for n in topo},
                batch_size=40,
                batch_parallelism=8,
                ackers=0,
                num_workers=4,
            )
            return sim.evaluate_noise_free(config).throughput_tps

        assert tput(4) > 2.5 * tput(1)

    def test_batch_parallelism_fills_pipeline(self, cluster4):
        topo = linear_topology("chain", 3, cost=5.0, spout_cost=5.0)
        sim = DiscreteEventSimulator(
            topo, cluster4, quiet_calibration(), max_batches=40
        )

        def tput(p):
            config = TopologyConfig(
                parallelism_hints={n: 2 for n in topo},
                batch_size=50,
                batch_parallelism=p,
                ackers=0,
                num_workers=4,
            )
            return sim.evaluate_noise_free(config).throughput_tps

        assert tput(4) > 1.8 * tput(1)

    def test_contention_negates_parallelism(self, cluster4):
        builder = TopologyBuilder("cont")
        builder.spout("s", cost=1.0)
        builder.bolt("db", inputs=["s"], cost=10.0, contentious=True)
        topo = builder.build()
        sim = DiscreteEventSimulator(
            topo, cluster4, quiet_calibration(), max_batches=30
        )

        def tput(db_tasks):
            config = TopologyConfig(
                parallelism_hints={"s": 4, "db": db_tasks},
                batch_size=40,
                batch_parallelism=8,
                ackers=0,
                num_workers=4,
            )
            return sim.evaluate_noise_free(config).throughput_tps

        assert tput(4) == pytest.approx(tput(1), rel=0.2)

    def test_executor_capacity_failure(self, cluster4):
        topo = linear_topology("chain", 1)
        sim = DiscreteEventSimulator(topo, cluster4, quiet_calibration())
        config = TopologyConfig(
            parallelism_hints={n: 150 for n in topo}, ackers=0, num_workers=4
        )
        run = sim.evaluate_noise_free(config)
        assert run.failed

    def test_batch_timeout_failure(self, cluster4):
        topo = linear_topology("chain", 1, cost=100.0, spout_cost=100.0)
        cal = quiet_calibration(batch_timeout_ms=500.0)
        sim = DiscreteEventSimulator(topo, cluster4, cal, max_batches=10)
        config = TopologyConfig(
            parallelism_hints={n: 1 for n in topo},
            batch_size=100,
            ackers=0,
            num_workers=4,
        )
        run = sim.evaluate_noise_free(config)
        assert run.failed
        assert "timeout" in run.failure_reason or "window" in run.failure_reason

    def test_determinism(self, cluster4):
        topo = linear_topology("chain", 2, cost=5.0, spout_cost=5.0)
        config = TopologyConfig(
            parallelism_hints={n: 2 for n in topo},
            batch_size=30,
            batch_parallelism=3,
            ackers=1,
            num_workers=4,
        )
        runs = [
            DiscreteEventSimulator(topo, cluster4, quiet_calibration(), max_batches=20)
            .evaluate_noise_free(config)
            .throughput_tps
            for _ in range(2)
        ]
        assert runs[0] == runs[1]

    def test_acker_work_is_simulated(self, cluster4):
        """Expensive acking with one acker slows the whole pipeline."""
        topo = linear_topology("chain", 1, cost=0.5, spout_cost=0.5)
        fast = DiscreteEventSimulator(
            topo, cluster4, quiet_calibration(), max_batches=20
        )
        slow = DiscreteEventSimulator(
            topo, cluster4, quiet_calibration(ack_cost_units=5.0), max_batches=20
        )
        config = TopologyConfig(
            parallelism_hints={n: 4 for n in topo},
            batch_size=50,
            batch_parallelism=4,
            ackers=1,
            num_workers=4,
        )
        t_fast = fast.evaluate_noise_free(config).throughput_tps
        t_slow = slow.evaluate_noise_free(config).throughput_tps
        assert t_slow < 0.7 * t_fast

    def test_max_batches_validation(self, cluster4):
        topo = linear_topology("chain", 1)
        with pytest.raises(ValueError):
            DiscreteEventSimulator(topo, cluster4, max_batches=1)
        with pytest.raises(ValueError):
            DiscreteEventSimulator(topo, cluster4, warmup_batches=-1)
