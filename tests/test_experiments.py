"""Integration tests: studies, figure builders, report rendering, CLI.

These run the full pipeline at a smoke-test budget and assert on the
structure of every exhibit plus the cheap qualitative claims.
"""

from __future__ import annotations

import pytest

from repro.experiments import figures
from repro.experiments.presets import Budget, quick_budget
from repro.experiments.report import (
    render_bars,
    render_figure,
    render_series,
    render_table,
)
from repro.experiments.runner import (
    SundogArmSpec,
    SundogStudy,
    SyntheticCellSpec,
    SyntheticStudy,
    run_sundog_arm,
    run_synthetic_cell,
)
from repro.topology_gen.suite import CONDITIONS, TopologyCondition


@pytest.fixture(scope="module")
def mini_synthetic_study():
    """One condition, two sizes, three strategies at smoke budget.

    The baselines keep their full 60-step ascent (they are cheap); the
    Bayesian runs are shortened.
    """
    budget = Budget(
        steps=8, steps_extended=12, baseline_steps=60, passes=1, repeat_best=3
    )
    study = SyntheticStudy(
        budget,
        conditions=[CONDITIONS[0], CONDITIONS[2]],
        sizes=["small", "medium"],
        strategies=["pla", "bo", "ipla"],
        seed=0,
    )
    return study.run()


@pytest.fixture(scope="module")
def mini_sundog_study():
    budget = Budget(
        steps=30, steps_extended=40, baseline_steps=60, passes=1, repeat_best=3
    )
    study = SundogStudy(
        budget,
        arms=[("pla", "h"), ("bo", "h"), ("bo", "h bs bp")],
        seed=0,
    )
    return study.run()


class TestStaticExhibits:
    def test_table1(self):
        data = figures.table1_parameters()
        assert len(data.rows) == 6
        assert {"Parameter", "Description"} <= set(data.rows[0])

    def test_table2(self):
        data = figures.table2_topologies()
        assert [r["Name"] for r in data.rows] == ["small", "medium", "large"]
        small = data.rows[0]
        assert small["V"] == 10 and small["E"] == 17 and small["L"] == 4

    def test_table3(self):
        data = figures.table3_literature()
        assert len(data.rows) == 8  # 4 literature + 3 synthetic + sundog
        assert any("Sundog" in str(r["Description"]) for r in data.rows)

    def test_figure3(self):
        data = figures.figure3_network_load()
        topologies = [r["Topology"] for r in data.rows]
        assert topologies == ["large", "medium", "small", "sundog"]
        loads = [float(r["MB/s per worker"]) for r in data.rows]
        assert all(0 < v < 125.0 for v in loads)  # never saturated
        # Sundog is the network-heaviest topology (paper Figure 3).
        assert loads[-1] == max(loads)


class TestSyntheticStudy:
    def test_all_cells_present(self, mini_synthetic_study):
        study = mini_synthetic_study
        assert len(study.results) == 2 * 2 * 3
        for results in study.results.values():
            assert len(results) == study.budget.passes
            for result in results:
                assert result.n_steps >= 1
                assert len(result.best_rerun_values) == study.budget.repeat_best

    def test_best_pass_selection(self, mini_synthetic_study):
        study = mini_synthetic_study
        cond = CONDITIONS[0]
        best = study.best_pass(cond, "small", "pla")
        values = [r.best_value for r in study.passes(cond, "small", "pla")]
        assert best.best_value == max(values)

    def test_small_homogeneous_strategies_comparable(self, mini_synthetic_study):
        """Paper F4.1: on the small balanced topology no strategy wins big."""
        cond = CONDITIONS[0]
        means = {
            s: mini_synthetic_study.best_pass(cond, "small", s).rerun_summary()[0]
            for s in ("pla", "ipla")
        }
        assert means["ipla"] < 1.6 * means["pla"]

    def test_medium_homogeneous_informed_dominates(self, mini_synthetic_study):
        """Paper F4.1: ipla dominates for medium."""
        cond = CONDITIONS[0]
        ipla = mini_synthetic_study.best_pass(cond, "medium", "ipla")
        pla = mini_synthetic_study.best_pass(cond, "medium", "pla")
        assert ipla.rerun_summary()[0] > 1.15 * pla.rerun_summary()[0]

    def test_figure4_builder(self, mini_synthetic_study):
        data = figures.figure4_throughput(mini_synthetic_study)
        assert len(data.rows) == 12
        for row in data.rows:
            assert row["min"] <= row["tuples/s"] <= row["max"]

    def test_figure5_builder(self, mini_synthetic_study):
        data = figures.figure5_convergence(mini_synthetic_study)
        for row in data.rows:
            assert 1 <= row["min"] <= row["steps(avg)"] <= row["max"]

    def test_figure6_builder(self, mini_synthetic_study):
        data = figures.figure6_loess_traces(mini_synthetic_study)
        assert len(data.series) == 4  # 2 conditions x 2 sizes
        for xs, ys in data.series.values():
            assert len(xs) == len(ys) > 0

    def test_figure7_builder(self, mini_synthetic_study):
        data = figures.figure7_step_time(mini_synthetic_study)
        by_strategy: dict[str, list[float]] = {}
        for row in data.rows:
            by_strategy.setdefault(str(row["Strategy"]), []).append(
                float(row["seconds(avg)"])
            )
        # pla steps are essentially instantaneous; bo pays for the GP.
        assert max(by_strategy["pla"]) < 0.02
        assert max(by_strategy["bo"]) > max(by_strategy["pla"])

    def test_cell_metadata(self):
        spec = SyntheticCellSpec(
            size="small",
            condition=TopologyCondition(0.0, 0.0),
            strategy="pla",
            budget=quick_budget(),
        )
        results = run_synthetic_cell(spec)
        assert results[0].metadata["size"] == "small"
        assert "Contentious" in results[0].metadata["condition"]

    def test_unknown_strategy_rejected(self):
        spec = SyntheticCellSpec(
            size="small",
            condition=TopologyCondition(0.0, 0.0),
            strategy="magic",
            budget=quick_budget(),
        )
        with pytest.raises(ValueError):
            run_synthetic_cell(spec)


class TestSundogStudy:
    def test_arms_present(self, mini_sundog_study):
        assert set(mini_sundog_study.results) == {
            ("pla", "h"),
            ("bo", "h"),
            ("bo", "h bs bp"),
        }

    def test_batch_tuning_beats_hints_only(self, mini_sundog_study):
        """Paper F8: adding bs+bp beats hint-only tuning clearly."""
        hints_only = mini_sundog_study.best_pass("pla", "h").rerun_summary()[0]
        batch_tuned = mini_sundog_study.best_pass("bo", "h bs bp").rerun_summary()[0]
        assert batch_tuned > 1.3 * hints_only

    def test_figure8a_builder(self, mini_sundog_study):
        data = figures.figure8a_sundog_throughput(mini_sundog_study)
        assert len(data.rows) == 3
        for row in data.rows:
            assert row["min"] <= row["mil tuples/s"] <= row["max"]

    def test_figure8b_builder(self, mini_sundog_study):
        data = figures.figure8b_sundog_convergence(mini_sundog_study)
        assert "pla.h" in data.series
        for xs, ys in data.series.values():
            assert ys == sorted(ys)  # best-so-far is monotone

    def test_speedup_metric(self, mini_sundog_study):
        speedup = figures.speedup_over_pla(mini_sundog_study)
        assert speedup > 1.3

    def test_t_tests_reported(self, mini_sundog_study):
        notes = figures.sundog_t_tests(mini_sundog_study)
        assert any("pla.h vs bo.h" in n for n in notes)

    def test_pla_only_searches_hints(self):
        spec = SundogArmSpec(
            strategy="pla", param_set="h bs bp", budget=quick_budget()
        )
        with pytest.raises(ValueError):
            run_sundog_arm(spec)


class TestReportRendering:
    def test_render_table(self):
        rows = [{"a": 1, "b": "xy"}, {"a": 22, "b": "z"}]
        text = render_table(rows)
        assert "a" in text and "22" in text
        assert render_table([]) == "(no rows)"

    def test_render_bars(self):
        rows = [
            {"name": "x", "v": 10.0},
            {"name": "y", "v": 5.0},
        ]
        text = render_bars(rows, value_key="v", label_keys=["name"])
        lines = text.splitlines()
        assert lines[0].count("#") > lines[1].count("#")

    def test_render_series(self):
        text = render_series({"t": ([1.0, 2.0, 3.0], [1.0, 4.0, 9.0])})
        assert "o = t" in text

    def test_render_figure(self, mini_synthetic_study):
        data = figures.figure4_throughput(mini_synthetic_study)
        text = render_figure(data)
        assert data.exhibit in text


class TestCli:
    def test_static_exhibits(self, capsys):
        from repro.cli import main

        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table II" in out and "small" in out

    def test_fig3(self, capsys):
        from repro.cli import main

        assert main(["fig3"]) == 0
        assert "Figure 3" in capsys.readouterr().out


class TestBudget:
    def test_validation(self):
        with pytest.raises(ValueError):
            Budget(steps=0)
        with pytest.raises(ValueError):
            Budget(steps=10, steps_extended=5)
        with pytest.raises(ValueError):
            Budget(passes=0)
        with pytest.raises(ValueError):
            Budget(repeat_best=1)

    def test_default_budget_env_switch(self, monkeypatch):
        from repro.experiments.presets import default_budget, full_budget

        monkeypatch.setenv("REPRO_FULL", "1")
        assert default_budget() == full_budget()
        monkeypatch.setenv("REPRO_FULL", "0")
        assert default_budget() != full_budget()
