"""Claims-checklist machinery on miniature studies."""

from __future__ import annotations

import pytest

from repro.experiments.claims import (
    ClaimResult,
    SUNDOG_CLAIMS,
    SYNTHETIC_CLAIMS,
    evaluate_claims,
    render_claims,
)
from repro.experiments.presets import Budget
from repro.experiments.runner import SundogStudy, SyntheticStudy
from repro.topology_gen.suite import CONDITIONS


@pytest.fixture(scope="module")
def tiny_synthetic():
    budget = Budget(
        steps=6, steps_extended=8, baseline_steps=60, passes=1, repeat_best=3
    )
    return SyntheticStudy(
        budget,
        conditions=list(CONDITIONS),
        sizes=["small", "medium"],
        strategies=["pla", "bo", "ipla", "ibo"],
        seed=0,
    ).run()


@pytest.fixture(scope="module")
def tiny_sundog():
    budget = Budget(
        steps=25, steps_extended=30, baseline_steps=60, passes=1, repeat_best=3
    )
    return SundogStudy(
        budget,
        arms=[("pla", "h"), ("bo", "h"), ("bo", "h bs bp"), ("bo", "bs bp cc")],
        seed=0,
    ).run()


def test_every_claim_has_unique_id():
    ids = [c[0] for c in SYNTHETIC_CLAIMS] + [c[0] for c in SUNDOG_CLAIMS]
    assert len(ids) == len(set(ids))


def test_evaluate_claims_covers_both_studies(tiny_synthetic, tiny_sundog):
    results = evaluate_claims(tiny_synthetic, tiny_sundog)
    ids = {r.claim_id for r in results}
    assert {"F4.1a", "F4.3", "F8.1", "F8.2"} <= ids
    assert all(isinstance(r, ClaimResult) for r in results)
    assert all(r.evidence for r in results)


def test_evaluate_claims_synthetic_only(tiny_synthetic):
    results = evaluate_claims(tiny_synthetic, None)
    assert all(r.claim_id.startswith(("F4", "F5", "F7")) for r in results)


def test_core_claims_hold_on_mini_study(tiny_synthetic, tiny_sundog):
    results = {r.claim_id: r for r in evaluate_claims(tiny_synthetic, tiny_sundog)}
    assert results["F4.1a"].holds, results["F4.1a"].evidence
    assert results["F4.3"].holds, results["F4.3"].evidence
    assert results["F8.2"].holds, results["F8.2"].evidence


def test_missing_condition_reported_not_raised(tiny_sundog):
    partial = SyntheticStudy(
        Budget(steps=4, steps_extended=5, baseline_steps=6, passes=1, repeat_best=2),
        conditions=[CONDITIONS[0]],
        sizes=["small"],
        strategies=["pla"],
    ).run()
    results = evaluate_claims(partial, None)
    assert any("not evaluable" in r.evidence for r in results)


def test_render_claims(tiny_synthetic):
    text = render_claims(evaluate_claims(tiny_synthetic, None))
    assert "claims reproduced" in text
    assert "F4.1a" in text
