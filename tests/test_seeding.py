"""The shared blake2b seed-derivation scheme (repro.core.seeding)."""

from __future__ import annotations

import numpy as np

from repro.core.seeding import derive_seed
from repro.experiments.runner import cell_seed


class TestDeriveSeed:
    def test_deterministic(self):
        assert derive_seed(7, "eval", 17) == derive_seed(7, "eval", 17)

    def test_identity_parts_separate_streams(self):
        seeds = {
            derive_seed(7, "eval", 17),
            derive_seed(7, "eval", 18),
            derive_seed(7, "rerun", 17),
            derive_seed(8, "eval", 17),
        }
        assert len(seeds) == 4

    def test_order_matters(self):
        assert derive_seed(0, "a", "b") != derive_seed(0, "b", "a")

    def test_concatenation_is_not_ambiguous(self):
        # ("ab", "c") and ("a", "bc") must not collapse to one stream.
        assert derive_seed(0, "ab", "c") != derive_seed(0, "a", "bc")

    def test_non_negative_for_non_negative_base(self):
        for base in (0, 1, 99, 2**31):
            seed = derive_seed(base, "imbalance", "small", "bo")
            assert seed >= 0
            # Usable directly as a numpy Generator seed.
            np.random.default_rng(seed)

    def test_base_seed_shifts_every_stream(self):
        a = derive_seed(1, "eval", 0)
        b = derive_seed(2, "eval", 0)
        assert a != b


class TestCellSeedAlias:
    def test_cell_seed_is_derive_seed(self):
        """The runner's cell seeds come from the same shared scheme."""
        assert cell_seed(5, "imbalance", "small", "bo", 1) == derive_seed(
            5, "imbalance", "small", "bo", 1
        )
