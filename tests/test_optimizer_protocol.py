"""Protocol-conformance suite: every optimizer through one harness.

The ask/tell contract (:class:`repro.core.baselines.Optimizer`) is what
the tuning loop, the evaluation executors, and the studies all build
on, so every strategy — bo, pla, ipla, ibo, random — must honor it the
same way: proposals stay inside the parameter space, ``done`` is
sticky, ``best()`` tracks the running max of told values, and the
batch extensions degrade gracefully for single-point strategies.
"""

from __future__ import annotations

from typing import Mapping

import numpy as np
import pytest

from repro.core.baselines import Optimizer
from repro.core.optimizer import BayesianOptimizer
from repro.experiments.presets import SYNTHETIC_BASE_CONFIG, default_cluster
from repro.experiments.runner import make_synthetic_optimizer
from repro.topology_gen.suite import make_topology

N_STEPS = 8

STRATEGIES = ("bo", "pla", "ipla", "ibo", "rs")


def _make(strategy: str):
    """One (optimizer, space) pair per paper strategy."""
    topology = make_topology("small")
    cluster = default_cluster()
    optimizer, codec = make_synthetic_optimizer(
        strategy, topology, cluster, SYNTHETIC_BASE_CONFIG, N_STEPS, seed=7
    )
    return optimizer, codec.space


def _value(space, config: Mapping[str, object]) -> float:
    """Deterministic smooth stand-in objective on the unit cube."""
    x = space.encode(config)
    return 100.0 * float(np.exp(-np.mean((x - 0.4) ** 2)))


def _drive(optimizer: Optimizer, space, steps: int = N_STEPS):
    """Classic serial ask/tell for ``steps`` steps; returns told values."""
    told: list[float] = []
    for _ in range(steps):
        if optimizer.done:
            break
        config = optimizer.ask()
        space.validate(config)
        value = _value(space, config)
        optimizer.tell(config, value)
        told.append(value)
    return told


@pytest.mark.parametrize("strategy", STRATEGIES)
class TestConformance:
    def test_proposals_stay_in_space(self, strategy):
        optimizer, space = _make(strategy)
        told = _drive(optimizer, space)
        assert told, f"{strategy} produced no proposals"

    def test_best_matches_running_max(self, strategy):
        optimizer, space = _make(strategy)
        told = _drive(optimizer, space)
        best_config, best_value = optimizer.best()
        assert best_value == max(told)
        space.validate(best_config)

    def test_best_raises_before_any_tell(self, strategy):
        optimizer, _ = _make(strategy)
        with pytest.raises(RuntimeError):
            optimizer.best()

    def test_done_is_sticky(self, strategy):
        optimizer, space = _make(strategy)
        # Exhaust the strategy (grid schedules finish; bo/random never
        # do within a bounded budget — drive a few steps either way).
        for _ in range(N_STEPS + 2):
            if optimizer.done:
                break
            config = optimizer.ask()
            optimizer.tell(config, _value(space, config))
        snapshots = [optimizer.done for _ in range(3)]
        assert len(set(snapshots)) == 1, "done flapped between reads"
        if optimizer.done:
            # More tells must not resurrect an exhausted strategy.
            optimizer.tell(config, 0.0)
            assert optimizer.done

    def test_ask_batch_members_stay_in_space(self, strategy):
        optimizer, space = _make(strategy)
        batch = optimizer.ask_batch(3)
        assert 0 < len(batch) <= 3
        for config in batch:
            space.validate(config)
        for config in batch:
            optimizer.tell(config, _value(space, config))
        _, best_value = optimizer.best()
        assert best_value == max(
            _value(space, config) for config in batch
        )

    def test_ask_batch_rejects_nonpositive(self, strategy):
        optimizer, _ = _make(strategy)
        with pytest.raises(ValueError):
            optimizer.ask_batch(0)


class _SinglePointOptimizer(Optimizer):
    """Minimal strategy using only the base-class batch shims."""

    def __init__(self) -> None:
        self.counter = 0
        self.history: list[tuple[dict[str, object], float]] = []

    def ask(self) -> dict[str, object]:
        # Idempotent until the matching tell, per the core contract.
        return {"knob": self.counter}

    def tell(self, config: Mapping[str, object], value: float) -> None:
        self.history.append((dict(config), float(value)))
        self.counter += 1

    @property
    def done(self) -> bool:
        return False

    def best(self) -> tuple[dict[str, object], float]:
        if not self.history:
            raise RuntimeError("no observations yet")
        return max(self.history, key=lambda item: item[1])


class TestDefaultShims:
    def test_ask_batch_shim_equals_n_asks(self):
        """The default shim returns n copies of the idempotent ask()."""
        optimizer = _SinglePointOptimizer()
        batch = optimizer.ask_batch(4)
        assert batch == [optimizer.ask()] * 4

    def test_tell_pending_default_is_noop(self):
        optimizer = _SinglePointOptimizer()
        config = optimizer.ask()
        optimizer.tell_pending(config)
        assert optimizer.ask() == config


class TestGridBatching:
    def test_grid_batch_walks_the_schedule(self):
        optimizer, space = _make("pla")
        batch = optimizer.ask_batch(3)
        values = [config["uniform_hint"] for config in batch]
        assert values == sorted(set(values)), "batch must ascend the grid"
        # Tells resolve the in-flight probes; the next batch continues
        # where the schedule left off.
        for config in batch:
            optimizer.tell(config, _value(space, config))
        nxt = optimizer.ask_batch(1)
        assert nxt[0]["uniform_hint"] not in values

    def test_random_batch_is_fresh_draws(self):
        optimizer, space = _make("rs")
        batch = optimizer.ask_batch(4)
        assert len(batch) == 4
        encoded = {space.encode(config).tobytes() for config in batch}
        assert len(encoded) > 1, "random batch collapsed to one draw"


class TestBayesianFantasies:
    def _warmed(self, liar: str) -> tuple[BayesianOptimizer, object]:
        optimizer, space = _make("bo")
        optimizer.liar = liar
        for _ in range(6):
            config = optimizer.ask()
            optimizer.tell(config, _value(space, config))
        return optimizer, space

    @pytest.mark.parametrize("liar", ["constant", "mean"])
    def test_batch_proposals_are_distinct(self, liar):
        """q=4 fantasized suggestions per batch are all different."""
        optimizer, space = self._warmed(liar)
        batch = optimizer.ask_batch(4)
        assert len(batch) == 4
        encoded = {space.encode(config).tobytes() for config in batch}
        assert len(encoded) == 4, "fantasies failed to diversify the batch"
        for config in batch:
            space.validate(config)

    def test_pending_resolved_by_tell(self):
        optimizer, space = self._warmed("constant")
        batch = optimizer.ask_batch(3)
        assert optimizer.telemetry["fantasies_active"] == 3
        for config in batch:
            optimizer.tell(config, _value(space, config))
        assert optimizer.telemetry["fantasies_active"] == 0

    def test_unknown_liar_rejected(self):
        _, space = _make("bo")
        with pytest.raises(ValueError):
            BayesianOptimizer(space, liar="optimist")
