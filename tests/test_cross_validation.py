"""Cross-validation: the analytic model against the discrete-event simulator.

The two execution engines implement the same mechanics at different
abstraction levels; on configurations away from cliff edges their
throughputs must agree within a modest tolerance.  This is the guard
that keeps the fast analytic objective honest.
"""

from __future__ import annotations

import pytest

from repro.storm.analytic import AnalyticPerformanceModel, CalibrationParams
from repro.storm.cluster import ClusterSpec, MachineSpec
from repro.storm.config import TopologyConfig
from repro.storm.simulation import DiscreteEventSimulator
from repro.storm.topology import TopologyBuilder, linear_topology
from repro.topology_gen.suite import TopologyCondition, make_topology


@pytest.fixture
def cluster():
    return ClusterSpec(
        n_machines=8,
        machine=MachineSpec(cores=4, memory_mb=8192),
        max_executors_per_worker=50,
    )


CAL = CalibrationParams(
    batch_overhead_ms=50.0,
    ack_cost_units=0.002,
    batch_timeout_ms=1e9,
)


def compare(topo, config, cluster, rel=0.35):
    analytic = AnalyticPerformanceModel(topo, cluster, CAL)
    des = DiscreteEventSimulator(topo, cluster, CAL, max_batches=60)
    a = analytic.evaluate_noise_free(config)
    d = des.evaluate_noise_free(config)
    assert not a.failed and not d.failed, (a.failure_reason, d.failure_reason)
    assert d.throughput_tps == pytest.approx(a.throughput_tps, rel=rel), (
        f"analytic={a.throughput_tps:.1f} ({a.details['limiting_cap']}), "
        f"des={d.throughput_tps:.1f}"
    )
    return a, d


class TestAgreement:
    def test_chain_low_parallelism(self, cluster):
        topo = linear_topology("chain", 2, cost=5.0, spout_cost=5.0)
        config = TopologyConfig(
            parallelism_hints={n: 2 for n in topo},
            batch_size=50,
            batch_parallelism=4,
            ackers=2,
            num_workers=8,
        )
        compare(topo, config, cluster)

    def test_chain_high_parallelism(self, cluster):
        topo = linear_topology("chain", 2, cost=5.0, spout_cost=5.0)
        config = TopologyConfig(
            parallelism_hints={n: 8 for n in topo},
            batch_size=100,
            batch_parallelism=8,
            ackers=4,
            num_workers=8,
        )
        compare(topo, config, cluster)

    def test_fan_out_topology(self, cluster, fan_topology):
        config = TopologyConfig(
            parallelism_hints={n: 4 for n in fan_topology},
            batch_size=60,
            batch_parallelism=6,
            ackers=2,
            num_workers=8,
        )
        compare(fan_topology, config, cluster)

    def test_diamond_with_contention(self, cluster):
        builder = TopologyBuilder("dc")
        builder.spout("s", cost=2.0)
        builder.bolt("a", inputs=["s"], cost=6.0)
        builder.bolt("db", inputs=["s"], cost=6.0, contentious=True)
        builder.bolt("join", inputs=["a", "db"], cost=2.0)
        topo = builder.build()
        config = TopologyConfig(
            parallelism_hints={"s": 3, "a": 4, "db": 2, "join": 2},
            batch_size=40,
            batch_parallelism=6,
            ackers=2,
            num_workers=8,
        )
        compare(topo, config, cluster)

    def test_generated_small_topology(self, cluster):
        topo = make_topology(
            "small", TopologyCondition(time_imbalance=1.0, contentious_share=0.0)
        )
        config = TopologyConfig(
            parallelism_hints={n: 3 for n in topo},
            batch_size=20,
            batch_parallelism=6,
            ackers=4,
            num_workers=8,
        )
        compare(topo, config, cluster, rel=0.4)

    def test_network_metric_same_order(self, cluster):
        topo = linear_topology("chain", 2, cost=5.0, spout_cost=5.0)
        config = TopologyConfig(
            parallelism_hints={n: 4 for n in topo},
            batch_size=50,
            batch_parallelism=4,
            ackers=2,
            num_workers=8,
        )
        a, d = compare(topo, config, cluster)
        assert d.network_mb_per_worker_s == pytest.approx(
            a.network_mb_per_worker_s, rel=0.5
        )

    def test_failure_modes_agree(self, cluster):
        topo = linear_topology("chain", 1)
        config = TopologyConfig(
            parallelism_hints={n: 300 for n in topo}, ackers=0, num_workers=8
        )
        analytic = AnalyticPerformanceModel(topo, cluster, CAL)
        des = DiscreteEventSimulator(topo, cluster, CAL)
        assert analytic.evaluate_noise_free(config).failed
        assert des.evaluate_noise_free(config).failed

    def test_relative_ordering_of_configs(self, cluster):
        """Both engines rank a starved config below a balanced one."""
        topo = linear_topology("chain", 2, cost=5.0, spout_cost=5.0)
        starved = TopologyConfig(
            parallelism_hints={"spout": 8, "bolt1": 1, "bolt2": 8},
            batch_size=50,
            batch_parallelism=6,
            ackers=2,
            num_workers=8,
        )
        balanced = TopologyConfig(
            parallelism_hints={n: 6 for n in topo},
            batch_size=50,
            batch_parallelism=6,
            ackers=2,
            num_workers=8,
        )
        analytic = AnalyticPerformanceModel(topo, cluster, CAL)
        des = DiscreteEventSimulator(topo, cluster, CAL, max_batches=60)
        a_order = analytic.evaluate_noise_free(
            balanced
        ).throughput_tps > analytic.evaluate_noise_free(starved).throughput_tps
        d_order = des.evaluate_noise_free(
            balanced
        ).throughput_tps > des.evaluate_noise_free(starved).throughput_tps
        assert a_order and d_order
