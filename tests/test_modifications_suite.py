"""Workload perturbations and the Table II presets."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.topology_gen.modifications import (
    apply_resource_contention,
    apply_selectivity,
    apply_time_imbalance,
    contentious_unit_share,
    fold_selectivity_into_costs,
)
from repro.topology_gen.properties import table2_stats
from repro.topology_gen.suite import (
    CONDITIONS,
    PRESETS,
    TopologyCondition,
    base_topology,
    make_topology,
)


class TestTimeImbalance:
    def test_zero_imbalance_is_uniform(self, rng, fan_topology):
        topo = apply_time_imbalance(fan_topology, rng, mean_cost=20.0, imbalance=0.0)
        assert all(topo.operator(n).cost == 20.0 for n in topo)

    def test_full_imbalance_bounds(self, rng):
        from repro.topology_gen.suite import base_topology

        topo = apply_time_imbalance(
            base_topology("medium"), rng, mean_cost=20.0, imbalance=1.0
        )
        costs = [topo.operator(n).cost for n in topo]
        assert all(0.0 <= c <= 40.0 for c in costs)
        # Uniform(0, 40): sample mean near 20 for 50 draws.
        assert np.mean(costs) == pytest.approx(20.0, abs=5.0)

    def test_costs_actually_vary(self, rng, fan_topology):
        topo = apply_time_imbalance(fan_topology, rng, imbalance=1.0)
        costs = {topo.operator(n).cost for n in topo}
        assert len(costs) > 1

    def test_validation(self, rng, fan_topology):
        with pytest.raises(ValueError):
            apply_time_imbalance(fan_topology, rng, mean_cost=0.0)
        with pytest.raises(ValueError):
            apply_time_imbalance(fan_topology, rng, imbalance=1.5)

    @given(st.integers(min_value=0, max_value=500))
    @settings(max_examples=25, deadline=None)
    def test_property_mean_preserved(self, seed):
        topo = base_topology("medium")
        rng = np.random.default_rng(seed)
        modified = apply_time_imbalance(topo, rng, mean_cost=20.0, imbalance=1.0)
        costs = [modified.operator(n).cost for n in modified]
        assert 10.0 < np.mean(costs) < 30.0


class TestResourceContention:
    def test_zero_share_clears_flags(self, rng, fan_topology):
        flagged = fan_topology.with_operator_updates(
            {"work0": {"contentious": True}}
        )
        cleared = apply_resource_contention(flagged, rng, contentious_share=0.0)
        assert contentious_unit_share(cleared) == 0.0

    def test_share_target_reached(self, rng):
        topo = base_topology("medium")
        modified = apply_resource_contention(topo, rng, contentious_share=0.25)
        share = contentious_unit_share(modified)
        # Selection overshoots by at most one operator's cost.
        assert 0.25 <= share <= 0.25 + 1.2 / len(topo) * 2 + 0.05

    def test_paper_example_balanced_topology(self, rng):
        """10 nodes at cost 20, 25% -> flag nodes totalling ~50 units."""
        topo = base_topology("small")  # balanced, cost 20 each
        modified = apply_resource_contention(topo, rng, contentious_share=0.25)
        flagged_units = sum(
            modified.operator(n).cost
            for n in modified
            if modified.operator(n).contentious
        )
        assert flagged_units in (60.0,)  # 3 nodes x 20 (first to cross 50)

    def test_full_share_flags_everything(self, rng):
        topo = base_topology("small")
        modified = apply_resource_contention(topo, rng, contentious_share=1.0)
        assert all(modified.operator(n).contentious for n in modified)

    def test_validation(self, rng, fan_topology):
        with pytest.raises(ValueError):
            apply_resource_contention(fan_topology, rng, contentious_share=1.5)

    def test_seeded_determinism(self):
        topo = base_topology("medium")
        a = apply_resource_contention(
            topo, np.random.default_rng(3), contentious_share=0.25
        )
        b = apply_resource_contention(
            topo, np.random.default_rng(3), contentious_share=0.25
        )
        assert [a.operator(n).contentious for n in a] == [
            b.operator(n).contentious for n in b
        ]


class TestSelectivity:
    def test_apply_selectivity(self, fan_topology):
        modified = apply_selectivity(fan_topology, {"src": 2.0})
        assert modified.operator("src").selectivity == 2.0
        # Downstream volumes double.
        assert modified.volume("work0") == pytest.approx(2.0)

    def test_negative_rejected(self, fan_topology):
        with pytest.raises(ValueError):
            apply_selectivity(fan_topology, {"src": -1.0})

    def test_fold_preserves_total_work(self):
        from repro.storm.topology import TopologyBuilder

        builder = TopologyBuilder("sel")
        builder.spout("s", cost=2.0, selectivity=3.0)
        builder.bolt("mid", inputs=["s"], cost=5.0, selectivity=0.5)
        builder.bolt("out", inputs=["mid"], cost=4.0)
        topo = builder.build()
        folded = fold_selectivity_into_costs(topo)
        assert all(folded.operator(n).selectivity == 1.0 for n in folded)
        assert folded.total_compute_units_per_tuple() == pytest.approx(
            topo.total_compute_units_per_tuple()
        )
        # The mid bolt absorbed the 3x volume into a 3x cost.
        assert folded.operator("mid").cost == pytest.approx(15.0)


class TestSuitePresets:
    def test_table2_small(self):
        row = table2_stats(base_topology("small"), 0.40, layers=4).as_dict()
        assert row["V"] == 10 and row["E"] == 17
        assert row["L"] == 4 and row["Src"] == 3
        assert row["AOD"] == pytest.approx(1.70, abs=0.01)

    def test_table2_medium(self):
        row = table2_stats(base_topology("medium"), 0.08, layers=5).as_dict()
        assert row["V"] == 50 and row["E"] == 88
        assert row["Src"] == 17 and row["Snk"] == 17
        assert row["AOD"] == pytest.approx(1.76, abs=0.01)

    def test_table2_large(self):
        row = table2_stats(base_topology("large"), 0.04, layers=10).as_dict()
        assert row["V"] == 100
        assert row["Src"] == 29 and row["Snk"] == 27
        assert 160 <= row["E"] <= 175  # paper: 170, pinned graph: 166
        assert abs(row["AOD"] - 1.65) < 0.05

    def test_conditions_cover_figure4_grid(self):
        labels = {c.label for c in CONDITIONS}
        assert len(labels) == 4
        assert any("0% TiIm" in l and "0% Contentious" in l for l in labels)
        assert any("100% TiIm" in l and "25% Contentious" in l for l in labels)

    def test_make_topology_applies_condition(self):
        cond = TopologyCondition(time_imbalance=1.0, contentious_share=0.25)
        topo = make_topology("medium", cond)
        costs = {topo.operator(n).cost for n in topo}
        assert len(costs) > 1  # imbalanced
        assert any(topo.operator(n).contentious for n in topo)
        assert "medium" in topo.name

    def test_same_base_graph_across_conditions(self):
        """All four variants are modifications of one base graph (§IV-B)."""
        edges = {
            make_topology("small", cond).edges for cond in CONDITIONS
        }
        assert len(edges) == 1

    def test_unknown_preset(self):
        with pytest.raises(ValueError):
            base_topology("gigantic")

    def test_different_seeds_differ(self):
        a = base_topology("medium", seed=0)
        b = base_topology("medium", seed=1)
        assert a.edges != b.edges

    def test_all_presets_valid(self):
        from repro.topology_gen.properties import is_valid_sps_graph

        for size, preset in PRESETS.items():
            topo = base_topology(size)
            assert is_valid_sps_graph(topo)
            assert len(topo) == preset.n_vertices
