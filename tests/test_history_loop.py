"""Tuning results, convergence traces, and the tuning loop."""

from __future__ import annotations


import pytest

from repro.core.baselines import GridAscentOptimizer, ParallelLinearAscent
from repro.core.history import (
    Observation,
    TuningResult,
    best_of,
    convergence_spread,
)
from repro.core.loop import TuningLoop, run_passes


def make_result(values, strategy="test"):
    result = TuningResult(strategy=strategy)
    for i, v in enumerate(values):
        result.observations.append(
            Observation(step=i, config={"h": i + 1}, value=v)
        )
    return result


class TestObservation:
    def test_validation(self):
        with pytest.raises(ValueError):
            Observation(step=-1, config={}, value=0.0)

    def test_serialization_roundtrip(self):
        obs = Observation(step=3, config={"h": 2}, value=1.5, suggest_seconds=0.1)
        again = Observation.from_dict(obs.as_dict())
        assert again == obs


class TestTuningResult:
    def test_best_step_is_first_occurrence(self):
        result = make_result([1.0, 5.0, 3.0, 5.0])
        assert result.best_value == 5.0
        assert result.best_step == 2  # 1-based, first occurrence
        assert result.best_config == {"h": 2}

    def test_best_so_far_monotone(self):
        result = make_result([3.0, 1.0, 4.0, 2.0])
        trace = result.best_so_far()
        assert trace == [3.0, 3.0, 4.0, 4.0]
        assert all(b >= a for a, b in zip(trace, trace[1:]))

    def test_empty_result_raises(self):
        with pytest.raises(ValueError):
            TuningResult(strategy="x").best_observation()

    def test_rerun_summary_falls_back_to_best(self):
        result = make_result([2.0, 7.0])
        assert result.rerun_summary() == (7.0, 7.0, 7.0)

    def test_rerun_summary_uses_reruns(self):
        result = make_result([2.0])
        result.best_rerun_values = [1.0, 2.0, 3.0]
        mean, lo, hi = result.rerun_summary()
        assert (mean, lo, hi) == (2.0, 1.0, 3.0)

    def test_serialization_roundtrip(self, tmp_path):
        result = make_result([1.0, 2.0])
        result.best_rerun_values = [2.0, 2.1]
        result.metadata["size"] = "small"
        path = tmp_path / "result.json"
        result.save(path)
        again = TuningResult.load(path)
        assert again.strategy == result.strategy
        assert again.values() == result.values()
        assert again.best_rerun_values == result.best_rerun_values
        assert again.metadata == result.metadata

    def test_mean_suggest_seconds(self):
        result = TuningResult(strategy="x")
        assert result.mean_suggest_seconds() == 0.0
        result.observations = [
            Observation(step=0, config={}, value=1.0, suggest_seconds=0.2),
            Observation(step=1, config={}, value=1.0, suggest_seconds=0.4),
        ]
        assert result.mean_suggest_seconds() == pytest.approx(0.3)


class TestAggregates:
    def test_best_of_picks_highest(self):
        a = make_result([1.0, 3.0])
        b = make_result([2.0, 2.5])
        assert best_of([a, b]) is a

    def test_best_of_empty_raises(self):
        with pytest.raises(ValueError):
            best_of([])

    def test_convergence_spread(self):
        a = make_result([1.0, 5.0])  # best step 2
        b = make_result([6.0, 2.0])  # best step 1
        lo, avg, hi = convergence_spread([a, b])
        assert (lo, avg, hi) == (1, 1.5, 2)


class TestTuningLoop:
    def test_runs_and_records_timing(self):
        opt = GridAscentOptimizer([{"h": i} for i in range(1, 6)])
        loop = TuningLoop(lambda c: float(c["h"]), opt, max_steps=5)
        result = loop.run()
        assert result.n_steps == 5
        assert result.best_value == 5.0
        assert all(o.suggest_seconds >= 0 for o in result.observations)
        assert all(o.evaluate_seconds >= 0 for o in result.observations)

    def test_respects_optimizer_stop(self):
        opt = GridAscentOptimizer(
            [{"h": i} for i in range(1, 20)], stop_after_zeros=3
        )
        loop = TuningLoop(lambda c: 0.0, opt, max_steps=19)
        result = loop.run()
        assert result.n_steps == 3
        assert result.metadata["stopped_early"]

    def test_repeat_best_reevaluates_best_config(self):
        opt = GridAscentOptimizer([{"h": i} for i in range(1, 4)])
        calls = []

        def objective(c):
            calls.append(dict(c))
            return float(c["h"])

        loop = TuningLoop(objective, opt, max_steps=3, repeat_best=4)
        result = loop.run()
        assert len(result.best_rerun_values) == 4
        assert calls[-4:] == [{"h": 3}] * 4

    def test_max_steps_truncates(self):
        opt = GridAscentOptimizer([{"h": i} for i in range(1, 100)])
        result = TuningLoop(lambda c: 1.0, opt, max_steps=7).run()
        assert result.n_steps == 7

    def test_validation(self):
        opt = GridAscentOptimizer([{"h": 1}])
        with pytest.raises(ValueError):
            TuningLoop(lambda c: 1.0, opt, max_steps=0)
        with pytest.raises(ValueError):
            TuningLoop(lambda c: 1.0, opt, max_steps=1, repeat_best=-1)

    def test_strategy_name_defaults_to_class(self):
        opt = ParallelLinearAscent("h", [1, 2])
        result = TuningLoop(lambda c: 1.0, opt, max_steps=2).run()
        assert result.strategy == "ParallelLinearAscent"


class TestRunPasses:
    def test_independent_passes(self):
        def make_optimizer(seed):
            return GridAscentOptimizer([{"h": i} for i in range(1, 5)])

        results = run_passes(
            make_optimizer,
            lambda c: float(c["h"]),
            passes=3,
            max_steps=4,
            repeat_best=2,
            strategy_name="grid",
        )
        assert len(results) == 3
        assert all(r.strategy == "grid" for r in results)
        assert all(len(r.best_rerun_values) == 2 for r in results)

    def test_passes_validation(self):
        with pytest.raises(ValueError):
            run_passes(lambda s: None, lambda c: 1.0, passes=0)


class TestPatience:
    def test_stops_after_stale_steps(self):
        opt = GridAscentOptimizer([{"h": i} for i in range(1, 40)])
        values = iter([10.0] + [9.0] * 50)  # never improves after step 1
        loop = TuningLoop(
            lambda c: next(values), opt, max_steps=39, patience=5
        )
        result = loop.run()
        assert result.n_steps == 6  # 1 improvement + 5 stale
        assert result.metadata["stopped_early"]

    def test_improvement_resets_patience(self):
        opt = GridAscentOptimizer([{"h": i} for i in range(1, 40)])
        values = iter([10.0, 9.0, 9.0, 20.0, 19.0, 19.0, 19.0, 19.0] + [1.0] * 40)
        loop = TuningLoop(
            lambda c: next(values), opt, max_steps=39, patience=4
        )
        result = loop.run()
        assert result.n_steps == 8  # reset at the 20.0 improvement

    def test_min_improvement_threshold(self):
        opt = GridAscentOptimizer([{"h": i} for i in range(1, 40)])
        # 1% gains do not count as improvement at min_improvement=0.05.
        values = iter([100.0, 101.0, 102.0, 103.0] + [1.0] * 40)
        loop = TuningLoop(
            lambda c: next(values),
            opt,
            max_steps=39,
            patience=3,
            min_improvement=0.05,
        )
        result = loop.run()
        assert result.n_steps == 4

    def test_no_patience_runs_full_budget(self):
        opt = GridAscentOptimizer([{"h": i} for i in range(1, 10)])
        result = TuningLoop(lambda c: 1.0, opt, max_steps=9).run()
        assert result.n_steps == 9

    def test_validation(self):
        opt = GridAscentOptimizer([{"h": 1}])
        with pytest.raises(ValueError):
            TuningLoop(lambda c: 1.0, opt, max_steps=1, patience=0)
        with pytest.raises(ValueError):
            TuningLoop(lambda c: 1.0, opt, max_steps=1, min_improvement=-0.1)
