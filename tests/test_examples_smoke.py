"""Smoke-compile every example script.

Full example runs take minutes; these tests guarantee the scripts at
least parse, import their dependencies, and define a ``main``.  The
repository's examples were each executed end-to-end during development;
EXPERIMENTS.md and the docs quote their outputs.
"""

from __future__ import annotations

import ast
from pathlib import Path

import pytest

EXAMPLES = sorted(
    (Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_parses_and_has_main(path):
    tree = ast.parse(path.read_text())
    assert ast.get_docstring(tree), f"{path.name} lacks a docstring"
    names = {
        node.name for node in tree.body if isinstance(node, ast.FunctionDef)
    }
    assert "main" in names, f"{path.name} lacks a main()"
    # __main__ guard present.
    assert any(
        isinstance(node, ast.If) and "__main__" in ast.dump(node.test)
        for node in tree.body
    ), f"{path.name} lacks a __main__ guard"


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.name)
def test_example_imports_resolve(path):
    """Every module an example imports must be importable."""
    import importlib

    tree = ast.parse(path.read_text())
    for node in ast.walk(tree):
        if isinstance(node, ast.ImportFrom) and node.module:
            if node.module.startswith("repro"):
                module = importlib.import_module(node.module)
                for alias in node.names:
                    assert hasattr(module, alias.name), (
                        f"{path.name}: {node.module}.{alias.name} missing"
                    )
        elif isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name.startswith("repro"):
                    importlib.import_module(alias.name)


def test_expected_example_set():
    names = {p.name for p in EXAMPLES}
    assert {
        "quickstart.py",
        "tune_synthetic.py",
        "tune_sundog.py",
        "run_sundog_local.py",
        "linear_road.py",
        "des_vs_analytic.py",
        "pause_resume.py",
        "cluster_whatif.py",
    } <= names
