"""Cross-cutting coverage: package surface, misc behaviours."""

from __future__ import annotations

import pytest


class TestPackageSurface:
    def test_version(self):
        import repro

        assert repro.__version__

    def test_core_all_exports_resolve(self):
        import repro.core as core

        for name in core.__all__:
            assert getattr(core, name) is not None

    def test_storm_all_exports_resolve(self):
        import repro.storm as storm

        for name in storm.__all__:
            assert getattr(storm, name) is not None

    def test_topology_gen_all_exports_resolve(self):
        import repro.topology_gen as tg

        for name in tg.__all__:
            assert getattr(tg, name) is not None

    def test_stats_all_exports_resolve(self):
        import repro.stats as stats

        for name in stats.__all__:
            assert getattr(stats, name) is not None


class TestOptimizerVariants:
    def make_space(self):
        from repro.core.parameters import FloatParameter, ParameterSpace

        return ParameterSpace(
            [FloatParameter("x", 0, 1), FloatParameter("y", 0, 1)]
        )

    @pytest.mark.parametrize("acquisition", ["ei", "pi", "ucb"])
    def test_all_acquisitions_optimize(self, acquisition):
        from repro.core.optimizer import BayesianOptimizer

        opt = BayesianOptimizer(self.make_space(), acquisition=acquisition, seed=1)
        best = float("-inf")
        for _ in range(15):
            c = opt.ask()
            v = -((c["x"] - 0.5) ** 2 + (c["y"] - 0.5) ** 2)
            opt.tell(c, v)
            best = max(best, v)
        assert best > -0.1

    @pytest.mark.parametrize("kernel", ["rbf", "matern32", "matern52"])
    def test_all_kernels_optimize(self, kernel):
        from repro.core.optimizer import BayesianOptimizer

        opt = BayesianOptimizer(self.make_space(), kernel=kernel, seed=1)
        for _ in range(8):
            c = opt.ask()
            opt.tell(c, float(c["x"]))
        _, best = opt.best()
        assert best > 0.3

    def test_ard_auto_selection_by_dimension(self):
        from repro.core.optimizer import BayesianOptimizer
        from repro.core.parameters import IntParameter, ParameterSpace

        small_space = ParameterSpace([IntParameter(f"p{i}", 1, 4) for i in range(5)])
        big_space = ParameterSpace([IntParameter(f"p{i}", 1, 4) for i in range(40)])
        assert BayesianOptimizer(small_space, ard_max_dim=25).gp.kernel.ard
        assert not BayesianOptimizer(big_space, ard_max_dim=25).gp.kernel.ard

    def test_refit_every_controls_hyperparameter_updates(self):
        from repro.core.optimizer import BayesianOptimizer

        opt = BayesianOptimizer(self.make_space(), refit_every=5, seed=0)
        for _ in range(12):
            c = opt.ask()
            opt.tell(c, float(c["x"]) + float(c["y"]))
        assert opt.gp.is_fitted


class TestMeasuredRun:
    def test_failure_constructor(self):
        from repro.storm.metrics import MeasuredRun

        run = MeasuredRun.failure("boom", total_tasks=7)
        assert run.failed and run.throughput_tps == 0.0
        assert run.total_tasks == 7

    def test_failed_with_nonzero_throughput_rejected(self):
        from repro.storm.metrics import MeasuredRun

        with pytest.raises(ValueError):
            MeasuredRun(throughput_tps=5.0, failed=True)

    def test_with_throughput_clamps_negative(self):
        from repro.storm.metrics import MeasuredRun

        run = MeasuredRun(throughput_tps=10.0)
        assert run.with_throughput(-3.0).throughput_tps == 0.0

    def test_negative_throughput_rejected(self):
        from repro.storm.metrics import MeasuredRun

        with pytest.raises(ValueError):
            MeasuredRun(throughput_tps=-1.0)


class TestCapacityBreakdown:
    def test_limiting_picks_minimum(self):
        from repro.storm.analytic import CapacityBreakdown

        caps = CapacityBreakdown(
            pipeline_fill=100.0,
            bottleneck_stage=50.0,
            cpu_saturation=75.0,
            acker=float("inf"),
            receiver=float("inf"),
            nic=float("inf"),
        )
        name, value = caps.limiting()
        assert name == "bottleneck_stage"
        assert value == 50.0


class TestCalibrationValidation:
    def test_rejects_bad_values(self):
        from repro.storm.analytic import CalibrationParams

        with pytest.raises(ValueError):
            CalibrationParams(batch_overhead_ms=-1)
        with pytest.raises(ValueError):
            CalibrationParams(context_switch_kappa=-0.1)
        with pytest.raises(ValueError):
            CalibrationParams(receiver_tuples_per_ms=0)
        with pytest.raises(ValueError):
            CalibrationParams(usable_memory_fraction=0.0)
