"""Configuration surface: Table I parameters and max-tasks normalization."""

from __future__ import annotations

import pytest

from repro.storm.config import TABLE1_PARAMETERS, TopologyConfig
from repro.storm.topology import linear_topology


@pytest.fixture
def topo():
    return linear_topology("chain", 3)  # spout + 3 bolts


class TestValidation:
    def test_rejects_bad_values(self):
        with pytest.raises(ValueError):
            TopologyConfig(parallelism_hints={"a": 0})
        with pytest.raises(ValueError):
            TopologyConfig(batch_size=0)
        with pytest.raises(ValueError):
            TopologyConfig(batch_parallelism=0)
        with pytest.raises(ValueError):
            TopologyConfig(worker_threads=0)
        with pytest.raises(ValueError):
            TopologyConfig(receiver_threads=0)
        with pytest.raises(ValueError):
            TopologyConfig(ackers=-1)
        with pytest.raises(ValueError):
            TopologyConfig(num_workers=0)
        with pytest.raises(ValueError):
            TopologyConfig(max_tasks=0)

    def test_zero_ackers_allowed(self):
        assert TopologyConfig(ackers=0).effective_ackers() == 0


class TestHints:
    def test_default_hint_fallback(self, topo):
        config = TopologyConfig(parallelism_hints={"bolt1": 5})
        assert config.raw_hint(topo, "bolt1") == 5
        assert config.raw_hint(topo, "spout") == 1  # spec default

    def test_normalization_noop_below_cap(self, topo):
        config = TopologyConfig(
            parallelism_hints={n: 2 for n in topo}, max_tasks=100
        )
        assert config.normalized_hints(topo) == {n: 2 for n in topo}

    def test_normalization_scales_proportionally(self, topo):
        config = TopologyConfig(
            parallelism_hints={n: 10 for n in topo}, max_tasks=20
        )
        hints = config.normalized_hints(topo)
        assert all(h == 5 for h in hints.values())

    def test_normalization_floors_at_one(self, topo):
        config = TopologyConfig(
            parallelism_hints={"spout": 1, "bolt1": 1, "bolt2": 1, "bolt3": 97},
            max_tasks=10,
        )
        hints = config.normalized_hints(topo)
        assert all(h >= 1 for h in hints.values())

    def test_normalization_respects_cap_approximately(self, topo):
        config = TopologyConfig(
            parallelism_hints={n: 13 for n in topo}, max_tasks=17
        )
        total = config.total_tasks(topo)
        # Rounding with a floor of 1 may exceed the cap slightly, but
        # never by more than one task per operator.
        assert total <= 17 + len(topo)

    def test_no_max_tasks_means_no_normalization(self, topo):
        config = TopologyConfig(parallelism_hints={n: 50 for n in topo})
        assert config.total_tasks(topo) == 200

    def test_uniform_constructor(self, topo):
        config = TopologyConfig.uniform(topo, 7, batch_size=123)
        assert config.normalized_hints(topo) == {n: 7 for n in topo}
        assert config.batch_size == 123

    def test_with_hints_merges(self, topo):
        config = TopologyConfig.uniform(topo, 2)
        updated = config.with_hints({"bolt1": 9})
        assert updated.raw_hint(topo, "bolt1") == 9
        assert updated.raw_hint(topo, "bolt2") == 2
        assert config.raw_hint(topo, "bolt1") == 2  # original frozen


class TestDefaults:
    def test_acker_default_one_per_worker(self):
        config = TopologyConfig(num_workers=80)
        assert config.effective_ackers() == 80

    def test_acker_explicit(self):
        assert TopologyConfig(ackers=7).effective_ackers() == 7


class TestSerialization:
    def test_roundtrip(self, topo):
        config = TopologyConfig.uniform(
            topo, 3, max_tasks=50, batch_size=500, ackers=10
        )
        again = TopologyConfig.from_dict(config.as_dict())
        assert again.as_dict() == config.as_dict()

    def test_replace(self):
        config = TopologyConfig(batch_size=100)
        other = config.replace(batch_size=200)
        assert other.batch_size == 200
        assert config.batch_size == 100


def test_table1_catalogue_complete():
    names = {name for name, _ in TABLE1_PARAMETERS}
    assert names == {
        "Worker Threads",
        "Receiver Threads",
        "Ackers",
        "Batch Parallelism",
        "Batch Size",
        "Parallelism Hints",
    }
