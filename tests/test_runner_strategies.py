"""Runner strategy construction and the random-search control."""

from __future__ import annotations

import pytest

from repro.core.baselines import ParallelLinearAscent, RandomSearchOptimizer
from repro.core.optimizer import BayesianOptimizer
from repro.experiments.presets import (
    SYNTHETIC_BASE_CONFIG,
    Budget,
    default_cluster,
)
from repro.experiments.runner import (
    SyntheticCellSpec,
    make_synthetic_optimizer,
    run_synthetic_cell,
)
from repro.storm.spaces import (
    InformedMultiplierCodec,
    ParallelismCodec,
    UniformHintCodec,
)
from repro.topology_gen.suite import TopologyCondition, make_topology


@pytest.fixture(scope="module")
def topo():
    return make_topology("small")


@pytest.fixture(scope="module")
def cluster():
    return default_cluster()


class TestMakeOptimizer:
    def test_pla(self, topo, cluster):
        optimizer, codec = make_synthetic_optimizer(
            "pla", topo, cluster, SYNTHETIC_BASE_CONFIG, 30, 0
        )
        assert isinstance(optimizer, ParallelLinearAscent)
        assert isinstance(codec, UniformHintCodec)
        assert optimizer.ask() == {"uniform_hint": 1}

    def test_ipla(self, topo, cluster):
        optimizer, codec = make_synthetic_optimizer(
            "ipla", topo, cluster, SYNTHETIC_BASE_CONFIG, 30, 0
        )
        assert isinstance(optimizer, ParallelLinearAscent)
        assert isinstance(codec, InformedMultiplierCodec)
        assert "multiplier" in optimizer.ask()

    @pytest.mark.parametrize("strategy", ["bo", "bo180"])
    def test_bo_variants(self, topo, cluster, strategy):
        optimizer, codec = make_synthetic_optimizer(
            strategy, topo, cluster, SYNTHETIC_BASE_CONFIG, 30, 0
        )
        assert isinstance(optimizer, BayesianOptimizer)
        assert isinstance(codec, ParallelismCodec)
        # Seeded with the all-ones default configuration.
        first = optimizer.ask()
        hints = [v for k, v in first.items() if k.startswith("hint__")]
        assert set(hints) == {1}

    def test_ibo(self, topo, cluster):
        optimizer, codec = make_synthetic_optimizer(
            "ibo", topo, cluster, SYNTHETIC_BASE_CONFIG, 30, 0
        )
        assert isinstance(optimizer, BayesianOptimizer)
        assert isinstance(codec, InformedMultiplierCodec)

    def test_random_search_control(self, topo, cluster):
        optimizer, codec = make_synthetic_optimizer(
            "rs", topo, cluster, SYNTHETIC_BASE_CONFIG, 30, 0
        )
        assert isinstance(optimizer, RandomSearchOptimizer)
        assert isinstance(codec, ParallelismCodec)

    def test_unknown(self, topo, cluster):
        with pytest.raises(ValueError):
            make_synthetic_optimizer(
                "annealing", topo, cluster, SYNTHETIC_BASE_CONFIG, 30, 0
            )


def test_random_search_cell_runs():
    budget = Budget(
        steps=6, steps_extended=8, baseline_steps=10, passes=1, repeat_best=2
    )
    spec = SyntheticCellSpec(
        size="small",
        condition=TopologyCondition(0.0, 0.0),
        strategy="rs",
        budget=budget,
    )
    results = run_synthetic_cell(spec)
    assert results[0].n_steps == 6
    assert results[0].best_value > 0
