"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.storm.cluster import ClusterSpec, MachineSpec, small_test_cluster
from repro.storm.config import TopologyConfig
from repro.storm.grouping import Grouping
from repro.storm.topology import (
    Topology,
    TopologyBuilder,
    diamond_topology,
    linear_topology,
)


@pytest.fixture
def rng() -> np.random.Generator:
    return np.random.default_rng(12345)


@pytest.fixture
def tiny_cluster() -> ClusterSpec:
    """A 2-machine, 2-core cluster for hand-computable scenarios."""
    return ClusterSpec(
        n_machines=2,
        machine=MachineSpec(cores=2, core_speed=1.0, memory_mb=4096, nic_mbps=1000.0),
        workers_per_machine=1,
        max_executors_per_worker=20,
    )


@pytest.fixture
def four_machine_cluster() -> ClusterSpec:
    return small_test_cluster()


@pytest.fixture
def chain3() -> Topology:
    """spout -> bolt1 -> bolt2, homogeneous costs."""
    return linear_topology("chain3", 2, cost=10.0, spout_cost=10.0)


@pytest.fixture
def diamond() -> Topology:
    return diamond_topology()


@pytest.fixture
def fan_topology() -> Topology:
    """One spout fanning out to three independent bolts."""
    builder = TopologyBuilder("fan")
    builder.spout("src", cost=5.0)
    for i in range(3):
        builder.bolt(f"work{i}", inputs=["src"], cost=15.0)
    return builder.build()


@pytest.fixture
def default_config() -> TopologyConfig:
    return TopologyConfig(
        batch_size=100,
        batch_parallelism=4,
        worker_threads=8,
        receiver_threads=1,
        ackers=2,
        num_workers=2,
    )


def make_custom_topology(
    specs: list[tuple[str, str, float, list[str]]],
    grouping: Grouping = Grouping.SHUFFLE,
) -> Topology:
    """Helper: build a topology from (name, kind, cost, inputs) rows."""
    builder = TopologyBuilder("custom")
    for name, kind, cost, inputs in specs:
        if kind == "spout":
            builder.spout(name, cost=cost)
        else:
            builder.bolt(name, inputs=inputs, cost=cost, grouping=grouping)
    return builder.build()
