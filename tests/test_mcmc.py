"""Slice sampling and integrated acquisition (Spearmint's inference)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.core.gp import GaussianProcess
from repro.core.mcmc import (
    IntegratedAcquisitionOptimizer,
    SliceSampler,
    default_log_prior,
    sample_gp_hyperparameters,
)
from repro.core.optimizer import BayesianOptimizer
from repro.core.parameters import FloatParameter, ParameterSpace


class TestSliceSampler:
    def test_recovers_gaussian_moments(self, rng):
        def log_density(x):
            return -0.5 * float((x[0] - 2.0) ** 2) / 0.25

        sampler = SliceSampler(log_density)
        samples = sampler.sample(
            np.array([0.0]), 1500, burn_in=50, rng=rng
        ).ravel()
        assert np.mean(samples) == pytest.approx(2.0, abs=0.1)
        assert np.std(samples) == pytest.approx(0.5, abs=0.1)

    def test_bivariate_correlated_target(self, rng):
        cov_inv = np.linalg.inv(np.array([[1.0, 0.6], [0.6, 1.0]]))

        def log_density(x):
            return -0.5 * float(x @ cov_inv @ x)

        sampler = SliceSampler(log_density)
        samples = sampler.sample(np.zeros(2), 2000, burn_in=100, rng=rng)
        corr = np.corrcoef(samples.T)[0, 1]
        assert corr == pytest.approx(0.6, abs=0.15)

    def test_samples_stay_in_support(self, rng):
        def log_density(x):
            return 0.0 if 0.0 <= x[0] <= 1.0 else -math.inf

        sampler = SliceSampler(log_density)
        samples = sampler.sample(np.array([0.5]), 300, burn_in=10, rng=rng)
        assert ((samples >= 0) & (samples <= 1)).all()

    def test_validation(self):
        with pytest.raises(ValueError):
            SliceSampler(lambda x: 0.0, width=0.0)
        sampler = SliceSampler(lambda x: 0.0)
        with pytest.raises(ValueError):
            sampler.sample(np.zeros(1), 0)
        with pytest.raises(ValueError):
            sampler.sample(np.zeros(1), 5, thin=0)

    def test_deterministic_with_seed(self):
        def log_density(x):
            return -0.5 * float(x[0] ** 2)

        a = SliceSampler(log_density).sample(
            np.zeros(1), 50, rng=np.random.default_rng(3)
        )
        b = SliceSampler(log_density).sample(
            np.zeros(1), 50, rng=np.random.default_rng(3)
        )
        assert np.allclose(a, b)


class TestPrior:
    def test_prior_prefers_moderate_values(self):
        moderate = np.array([0.0, math.log(0.3), math.log(0.01)])
        extreme = np.array([10.0, math.log(100.0), math.log(10.0)])
        assert default_log_prior(moderate) > default_log_prior(extreme)

    def test_layout_without_noise(self):
        theta = np.array([0.0, math.log(0.3)])
        value = default_log_prior(theta, fit_noise=False)
        assert np.isfinite(value)


class TestGPHyperparameterSampling:
    def test_samples_have_correct_shape_and_are_finite(self, rng):
        X = rng.random((15, 2))
        z = np.sin(5 * X[:, 0])
        gp = GaussianProcess("matern52", dim=2)
        gp.fit(X, z, optimize_hyperparams=True, rng=rng)
        samples = sample_gp_hyperparameters(
            gp, gp._posterior.X, gp._posterior.y, 6, burn_in=5, rng=rng
        )
        assert samples.shape == (6, len(gp._pack_theta()))
        assert np.isfinite(samples).all()

    def test_samples_vary(self, rng):
        X = rng.random((12, 1))
        z = X[:, 0] ** 2
        gp = GaussianProcess("rbf", dim=1)
        gp.fit(X, z, rng=rng)
        samples = sample_gp_hyperparameters(
            gp, gp._posterior.X, gp._posterior.y, 8, burn_in=5, rng=rng
        )
        assert np.std(samples, axis=0).max() > 1e-4


class TestIntegratedAcquisition:
    def test_falls_back_without_samples(self, rng):
        gp = GaussianProcess("rbf", dim=1, noise=1e-4, fit_noise=False)
        X = rng.random((8, 1))
        gp.fit(X, np.sin(4 * X[:, 0]), rng=rng)
        acq = IntegratedAcquisitionOptimizer(n_candidates=32)
        pts = rng.random((5, 1))
        plain = acq.score(gp, pts, 0.5)
        assert plain.shape == (5,)

    def test_averages_over_theta_samples(self, rng):
        gp = GaussianProcess("rbf", dim=1, noise=1e-4)
        X = rng.random((10, 1))
        gp.fit(X, np.sin(4 * X[:, 0]), rng=rng)
        original_theta = gp._pack_theta().copy()
        thetas = sample_gp_hyperparameters(
            gp, gp._posterior.X, gp._posterior.y, 4, burn_in=3, rng=rng
        )
        acq = IntegratedAcquisitionOptimizer(n_candidates=32)
        acq.set_theta_samples(thetas)
        pts = rng.random((6, 1))
        integrated = acq.score(gp, pts, 0.5)
        assert integrated.shape == (6,)
        assert (integrated >= 0).all()
        # The GP is restored to its original hyperparameters afterwards.
        assert np.allclose(gp._pack_theta(), original_theta)

    def test_optimizer_with_mcmc_inference_converges(self):
        space = ParameterSpace(
            [FloatParameter("x", 0, 1), FloatParameter("y", 0, 1)]
        )

        def objective(c):
            return -((c["x"] - 0.3) ** 2 + (c["y"] - 0.6) ** 2)

        opt = BayesianOptimizer(
            space,
            seed=2,
            hyper_inference="mcmc",
            mcmc_samples=3,
            mcmc_burn_in=3,
            refit_every=3,
        )
        best = -np.inf
        for _ in range(20):
            config = opt.ask()
            value = objective(config)
            opt.tell(config, value)
            best = max(best, value)
        assert best > -0.05

    def test_unknown_inference_rejected(self):
        space = ParameterSpace([FloatParameter("x", 0, 1)])
        with pytest.raises(ValueError):
            BayesianOptimizer(space, hyper_inference="vi")

    def test_state_roundtrip_keeps_inference_mode(self, tmp_path):
        space = ParameterSpace(
            [FloatParameter("x", 0, 1), FloatParameter("y", 0, 1)]
        )
        opt = BayesianOptimizer(
            space, seed=1, hyper_inference="mcmc", mcmc_samples=3
        )
        for _ in range(5):
            c = opt.ask()
            opt.tell(c, float(c["x"]))
        path = tmp_path / "state.json"
        opt.save(path)
        resumed = BayesianOptimizer.load(path)
        assert resumed.hyper_inference == "mcmc"
        assert resumed.mcmc_samples == 3
        assert isinstance(resumed.acq, IntegratedAcquisitionOptimizer)
