"""Unit and property tests for the parameter-space layer."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.parameters import (
    CategoricalParameter,
    FloatParameter,
    IntParameter,
    ParameterSpace,
    parameter_from_dict,
)


class TestFloatParameter:
    def test_bounds_map_to_unit_interval(self):
        p = FloatParameter("x", 2.0, 10.0)
        assert p.to_unit(2.0) == 0.0
        assert p.to_unit(10.0) == 1.0
        assert p.from_unit(0.0) == 2.0
        assert p.from_unit(1.0) == 10.0

    def test_midpoint(self):
        p = FloatParameter("x", 0.0, 4.0)
        assert p.from_unit(0.5) == pytest.approx(2.0)

    def test_log_scale(self):
        p = FloatParameter("x", 1.0, 100.0, log=True)
        assert p.from_unit(0.5) == pytest.approx(10.0)
        assert p.to_unit(10.0) == pytest.approx(0.5)

    def test_log_requires_positive_low(self):
        with pytest.raises(ValueError):
            FloatParameter("x", 0.0, 1.0, log=True)

    def test_invalid_bounds(self):
        with pytest.raises(ValueError):
            FloatParameter("x", 1.0, 1.0)

    def test_contains(self):
        p = FloatParameter("x", 0.0, 1.0)
        assert p.contains(0.5)
        assert not p.contains(1.5)
        assert not p.contains("abc")

    def test_out_of_range_unit_clips(self):
        p = FloatParameter("x", 0.0, 1.0)
        assert p.from_unit(2.0) == 1.0
        assert p.from_unit(-1.0) == 0.0

    @given(st.floats(min_value=0.0, max_value=1.0))
    def test_from_unit_stays_in_domain(self, u):
        p = FloatParameter("x", -3.0, 7.0)
        v = p.from_unit(u)
        assert -3.0 <= v <= 7.0

    @given(st.floats(min_value=-3.0, max_value=7.0, allow_nan=False))
    def test_roundtrip(self, v):
        p = FloatParameter("x", -3.0, 7.0)
        assert p.from_unit(p.to_unit(v)) == pytest.approx(v, abs=1e-9)


class TestIntParameter:
    def test_extremes(self):
        p = IntParameter("n", 1, 10)
        assert p.from_unit(0.0) == 1
        assert p.from_unit(1.0 - 1e-12) == 10
        assert p.from_unit(1.0) == 10

    def test_every_value_reachable(self):
        p = IntParameter("n", 3, 9)
        values = {p.from_unit(u) for u in np.linspace(0, 1, 1000)}
        assert values == set(range(3, 10))

    def test_roundtrip_all_values(self):
        p = IntParameter("n", 1, 17)
        for v in range(1, 18):
            assert p.from_unit(p.to_unit(v)) == v

    def test_log_scale_roundtrip(self):
        p = IntParameter("n", 1, 100000, log=True)
        for v in (1, 10, 100, 5000, 100000):
            assert p.from_unit(p.to_unit(v)) == v

    def test_contains_rejects_non_integers(self):
        p = IntParameter("n", 1, 10)
        assert p.contains(5)
        assert not p.contains(5.5)
        assert not p.contains(11)

    def test_sample_in_range(self, rng):
        p = IntParameter("n", 2, 6)
        for _ in range(100):
            assert 2 <= p.sample(rng) <= 6

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=50)
    def test_unit_centres_are_unbiased(self, seed):
        """Uniform unit samples decode to a roughly uniform histogram."""
        p = IntParameter("n", 0, 3)
        rng = np.random.default_rng(seed)
        vals = [p.from_unit(rng.random()) for _ in range(40)]
        assert set(vals) <= {0, 1, 2, 3}


class TestCategoricalParameter:
    def test_roundtrip(self):
        p = CategoricalParameter("g", ["shuffle", "fields", "all"])
        for choice in ["shuffle", "fields", "all"]:
            assert p.from_unit(p.to_unit(choice)) == choice

    def test_needs_two_choices(self):
        with pytest.raises(ValueError):
            CategoricalParameter("g", ["only"])

    def test_duplicate_choices_rejected(self):
        with pytest.raises(ValueError):
            CategoricalParameter("g", ["a", "a"])

    def test_contains(self):
        p = CategoricalParameter("g", [1, 2, 3])
        assert p.contains(2)
        assert not p.contains(4)


class TestParameterSpace:
    def make_space(self) -> ParameterSpace:
        return ParameterSpace(
            [
                IntParameter("hint", 1, 8),
                FloatParameter("mult", 0.1, 4.0),
                CategoricalParameter("mode", ["a", "b", "c"]),
            ]
        )

    def test_dim_and_names(self):
        space = self.make_space()
        assert space.dim == 3
        assert space.names == ["hint", "mult", "mode"]
        assert "hint" in space

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError):
            ParameterSpace([IntParameter("x", 1, 2), IntParameter("x", 1, 3)])

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            ParameterSpace([])

    def test_encode_decode_roundtrip(self):
        space = self.make_space()
        config = {"hint": 5, "mult": 2.0, "mode": "b"}
        decoded = space.decode(space.encode(config))
        assert decoded["hint"] == 5
        assert decoded["mult"] == pytest.approx(2.0, abs=1e-9)
        assert decoded["mode"] == "b"

    def test_encode_missing_key_raises(self):
        space = self.make_space()
        with pytest.raises(KeyError):
            space.encode({"hint": 5})

    def test_decode_wrong_shape_raises(self):
        space = self.make_space()
        with pytest.raises(ValueError):
            space.decode(np.zeros(2))

    def test_validate(self):
        space = self.make_space()
        space.validate({"hint": 1, "mult": 0.1, "mode": "a"})
        with pytest.raises(ValueError):
            space.validate({"hint": 99, "mult": 0.1, "mode": "a"})
        with pytest.raises(KeyError):
            space.validate({"hint": 1, "mult": 0.1})

    def test_latin_hypercube_stratification(self, rng):
        space = ParameterSpace([FloatParameter("a", 0, 1), FloatParameter("b", 0, 1)])
        n = 20
        pts = space.latin_hypercube(n, rng)
        assert pts.shape == (n, 2)
        # Each axis has exactly one sample per 1/n stratum.
        for d in range(2):
            bins = np.floor(pts[:, d] * n).astype(int)
            bins = np.clip(bins, 0, n - 1)
            assert len(set(bins)) >= n - 1  # rounding may merge one pair

    def test_sample_unit_snaps_to_grid(self, rng):
        space = ParameterSpace([IntParameter("n", 1, 4)])
        pts = space.sample_unit(50, rng)
        decoded = {space.decode(p)["n"] for p in pts}
        assert decoded <= {1, 2, 3, 4}

    def test_round_trip_idempotent(self, rng):
        space = self.make_space()
        for _ in range(20):
            x = rng.random(space.dim)
            snapped = space.round_trip(x)
            assert np.allclose(space.round_trip(snapped), snapped)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50)
    def test_property_encode_decode_identity_on_grid(self, seed):
        space = ParameterSpace(
            [
                IntParameter("a", 1, 13),
                IntParameter("b", 2, 5),
                FloatParameter("c", -1.0, 1.0),
            ]
        )
        rng = np.random.default_rng(seed)
        config = space.sample(rng)
        again = space.decode(space.encode(config))
        assert again["a"] == config["a"]
        assert again["b"] == config["b"]
        assert math.isclose(float(again["c"]), float(config["c"]), abs_tol=1e-9)


class TestSerialization:
    def test_parameter_roundtrip(self):
        params = [
            IntParameter("a", 1, 9, log=False),
            IntParameter("b", 1, 1000, log=True),
            FloatParameter("c", 0.5, 2.5),
            CategoricalParameter("d", ["x", "y"]),
        ]
        for p in params:
            q = parameter_from_dict(p.as_dict())
            assert type(q) is type(p)
            assert q.as_dict() == p.as_dict()

    def test_space_roundtrip(self):
        space = ParameterSpace(
            [IntParameter("a", 1, 9), FloatParameter("c", 0.5, 2.5)]
        )
        again = ParameterSpace.from_dict(space.as_dict())
        assert again.names == space.names
        assert again.dim == space.dim

    def test_unknown_type_raises(self):
        with pytest.raises(ValueError):
            parameter_from_dict({"type": "mystery", "name": "x"})
