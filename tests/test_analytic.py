"""Analytic performance model: mechanisms, caps, and failure modes."""

from __future__ import annotations

import pytest

from repro.storm.analytic import AnalyticPerformanceModel, CalibrationParams
from repro.storm.cluster import ClusterSpec, MachineSpec
from repro.storm.config import TopologyConfig
from repro.storm.noise import GaussianNoise
from repro.storm.topology import TopologyBuilder, linear_topology


def quiet_calibration(**overrides) -> CalibrationParams:
    """Calibration with overheads disabled for clean hand calculations."""
    defaults = dict(
        batch_overhead_ms=0.0,
        context_switch_kappa=0.0,
        per_task_cpu_overhead=0.0,
        pool_oversubscription_weight=0.0,
        ack_cost_units=1e-9,
        batch_timeout_ms=1e12,
        stage_overhead_ms=0.0,
    )
    defaults.update(overrides)
    return CalibrationParams(**defaults)


@pytest.fixture
def big_cluster():
    return ClusterSpec(
        n_machines=10,
        machine=MachineSpec(cores=4, memory_mb=8192),
        max_executors_per_worker=50,
    )


class TestHandComputedThroughput:
    def test_single_stage_rate(self, big_cluster):
        """One spout at cost 10 with n tasks: rate = n / 10 tuples/ms."""
        builder = TopologyBuilder("solo")
        builder.spout("s", cost=10.0)
        builder.bolt("sink", inputs=["s"], cost=1e-9)
        topo = builder.build()
        model = AnalyticPerformanceModel(topo, big_cluster, quiet_calibration())
        config = TopologyConfig(
            parallelism_hints={"s": 4, "sink": 40},
            batch_size=100,
            batch_parallelism=100,  # pipeline never binds
            ackers=0,
            num_workers=10,
        )
        run = model.evaluate_noise_free(config)
        # stage cap: 4 tasks / 10 units = 0.4 tuples/ms = 400 tuples/s
        assert run.throughput_tps == pytest.approx(400.0, rel=1e-6)
        assert run.details["limiting_cap"] == "bottleneck_stage"

    def test_cpu_saturation_cap(self, big_cluster):
        """With abundant tasks the 40-core budget bounds throughput."""
        topo = linear_topology("chain", 1, cost=10.0, spout_cost=10.0)
        model = AnalyticPerformanceModel(topo, big_cluster, quiet_calibration())
        config = TopologyConfig(
            parallelism_hints={n: 100 for n in topo},
            batch_size=100,
            batch_parallelism=100,
            ackers=0,
            num_workers=10,
        )
        run = model.evaluate_noise_free(config)
        # 40 cores / 20 units per tuple = 2 tuples/ms = 2000 tuples/s
        assert run.throughput_tps == pytest.approx(2000.0, rel=1e-6)
        assert run.details["limiting_cap"] == "cpu_saturation"

    def test_pipeline_fill_cap(self, big_cluster):
        """With P=1 the batch rate is 1 / latency."""
        topo = linear_topology("chain", 1, cost=10.0, spout_cost=10.0)
        model = AnalyticPerformanceModel(topo, big_cluster, quiet_calibration())
        config = TopologyConfig(
            parallelism_hints={n: 1 for n in topo},
            batch_size=100,
            batch_parallelism=1,
            ackers=0,
            num_workers=10,
        )
        run = model.evaluate_noise_free(config)
        # Each stage: 100 tuples * 10 units / 1 task = 1000 ms; latency
        # 2000 ms; rate = 1 batch / 2 s -> 50 tuples/s.
        assert run.batch_latency_ms == pytest.approx(2000.0)
        assert run.throughput_tps == pytest.approx(50.0, rel=1e-6)
        assert run.details["limiting_cap"] == "pipeline_fill"

    def test_batch_overhead_amortized_by_batch_size(self, big_cluster):
        topo = linear_topology("chain", 1, cost=1.0, spout_cost=1.0)
        cal = quiet_calibration(batch_overhead_ms=100.0)
        model = AnalyticPerformanceModel(topo, big_cluster, cal)

        def tput(batch_size):
            config = TopologyConfig(
                parallelism_hints={n: 4 for n in topo},
                batch_size=batch_size,
                batch_parallelism=1,
                ackers=0,
                num_workers=10,
            )
            return model.evaluate_noise_free(config).throughput_tps

        # Larger batches amortize the fixed 100 ms overhead.
        assert tput(2000) > 1.5 * tput(200)


class TestContention:
    def make_model(self, big_cluster, contentious):
        builder = TopologyBuilder("cont")
        builder.spout("s", cost=1.0)
        builder.bolt("db", inputs=["s"], cost=10.0, contentious=contentious)
        return AnalyticPerformanceModel(
            builder.build(), big_cluster, quiet_calibration()
        )

    def config(self, db_tasks):
        return TopologyConfig(
            parallelism_hints={"s": 20, "db": db_tasks},
            batch_size=100,
            batch_parallelism=100,
            ackers=0,
            num_workers=10,
        )

    def test_parallelism_helps_normal_bolt(self, big_cluster):
        model = self.make_model(big_cluster, contentious=False)
        t1 = model.evaluate_noise_free(self.config(1)).throughput_tps
        t4 = model.evaluate_noise_free(self.config(4)).throughput_tps
        assert t4 == pytest.approx(4 * t1, rel=1e-6)

    def test_parallelism_negated_for_contentious_bolt(self, big_cluster):
        """§IV-B2: more tasks on a contentious bolt do not raise throughput."""
        model = self.make_model(big_cluster, contentious=True)
        t1 = model.evaluate_noise_free(self.config(1)).throughput_tps
        t4 = model.evaluate_noise_free(self.config(4)).throughput_tps
        assert t4 == pytest.approx(t1, rel=1e-6)

    def test_contentious_tasks_still_burn_cpu(self, big_cluster):
        """Extra contentious tasks consume CPU budget without benefit."""
        model = self.make_model(big_cluster, contentious=True)
        run1 = model.evaluate_noise_free(self.config(1))
        run8 = model.evaluate_noise_free(self.config(8))
        assert (
            run8.details["total_work_ms"] > 4 * run1.details["total_work_ms"]
        )


class TestFailures:
    def test_executor_capacity_failure(self, big_cluster):
        topo = linear_topology("chain", 1)
        model = AnalyticPerformanceModel(topo, big_cluster, quiet_calibration())
        config = TopologyConfig(
            parallelism_hints={n: 300 for n in topo}, ackers=0, num_workers=10
        )
        run = model.evaluate_noise_free(config)
        assert run.failed
        assert run.throughput_tps == 0.0
        assert "executors" in run.failure_reason

    def test_batch_timeout_failure(self, big_cluster):
        topo = linear_topology("chain", 1, cost=100.0, spout_cost=100.0)
        cal = quiet_calibration(batch_timeout_ms=1000.0)
        model = AnalyticPerformanceModel(topo, big_cluster, cal)
        config = TopologyConfig(
            parallelism_hints={n: 1 for n in topo},
            batch_size=1000,
            ackers=0,
            num_workers=10,
        )
        run = model.evaluate_noise_free(config)
        assert run.failed
        assert "timeout" in run.failure_reason

    def test_memory_failure_on_huge_batches(self, big_cluster):
        topo = linear_topology("chain", 1)
        model = AnalyticPerformanceModel(topo, big_cluster, quiet_calibration())
        config = TopologyConfig(
            parallelism_hints={n: 1 for n in topo},
            batch_size=10_000_000,
            batch_parallelism=32,
            ackers=0,
            num_workers=10,
        )
        run = model.evaluate_noise_free(config)
        assert run.failed
        assert "memory" in run.failure_reason

    def test_max_tasks_normalization_avoids_capacity_failure(self, big_cluster):
        topo = linear_topology("chain", 1)
        model = AnalyticPerformanceModel(topo, big_cluster, quiet_calibration())
        config = TopologyConfig(
            parallelism_hints={n: 300 for n in topo},
            max_tasks=100,
            ackers=0,
            num_workers=10,
        )
        run = model.evaluate_noise_free(config)
        assert not run.failed


class TestOverheads:
    def test_context_switch_penalty_kicks_in(self, big_cluster):
        topo = linear_topology("chain", 1, cost=1e-6, spout_cost=1e-6)
        cal = quiet_calibration(context_switch_kappa=0.5)
        model = AnalyticPerformanceModel(topo, big_cluster, cal)
        lean = TopologyConfig(
            parallelism_hints={n: 2 for n in topo}, ackers=0, num_workers=10
        )
        bloated = TopologyConfig(
            parallelism_hints={n: 200 for n in topo},
            max_tasks=400,
            ackers=0,
            num_workers=10,
        )
        eta_lean = model.evaluate_noise_free(lean).details["eta"]
        eta_bloated = model.evaluate_noise_free(bloated).details["eta"]
        assert eta_bloated < eta_lean

    def test_per_task_overhead_reduces_efficiency(self, big_cluster):
        topo = linear_topology("chain", 1)
        cal = quiet_calibration(per_task_cpu_overhead=0.05)
        model = AnalyticPerformanceModel(topo, big_cluster, cal)
        small = TopologyConfig(
            parallelism_hints={n: 1 for n in topo}, ackers=0, num_workers=10
        )
        large = TopologyConfig(
            parallelism_hints={n: 100 for n in topo},
            max_tasks=200,
            ackers=0,
            num_workers=10,
        )
        assert (
            model.evaluate_noise_free(large).details["eta"]
            < model.evaluate_noise_free(small).details["eta"]
        )

    def test_worker_threads_limit_usable_cores(self, big_cluster):
        topo = linear_topology("chain", 1, cost=10.0, spout_cost=10.0)
        model = AnalyticPerformanceModel(topo, big_cluster, quiet_calibration())

        def tput(worker_threads):
            config = TopologyConfig(
                parallelism_hints={n: 100 for n in topo},
                batch_size=100,
                batch_parallelism=100,
                worker_threads=worker_threads,
                ackers=0,
                num_workers=10,
            )
            return model.evaluate_noise_free(config).throughput_tps

        assert tput(1) == pytest.approx(tput(4) / 4, rel=1e-6)
        assert tput(8) == pytest.approx(tput(4), rel=1e-6)  # capped by cores

    def test_acker_capacity_can_bind(self, big_cluster):
        topo = linear_topology("chain", 1, cost=0.001, spout_cost=0.001)
        cal = quiet_calibration(ack_cost_units=0.5)
        model = AnalyticPerformanceModel(topo, big_cluster, cal)
        config = TopologyConfig(
            parallelism_hints={n: 20 for n in topo},
            batch_size=1000,
            batch_parallelism=50,
            ackers=1,
            num_workers=10,
        )
        run = model.evaluate_noise_free(config)
        assert run.details["limiting_cap"] == "acker"


class TestNetworkAccounting:
    def test_single_machine_has_no_remote_traffic(self):
        cluster = ClusterSpec(n_machines=1, machine=MachineSpec(cores=4))
        topo = linear_topology("chain", 2)
        model = AnalyticPerformanceModel(topo, cluster, quiet_calibration())
        config = TopologyConfig(
            parallelism_hints={n: 2 for n in topo}, ackers=0, num_workers=1
        )
        run = model.evaluate_noise_free(config)
        # Only source-ingest bytes remain.
        remote, remote_bytes, ingest = model._network_demand(
            float(config.batch_size), config.normalized_hints(topo)
        )
        assert remote == 0.0 and remote_bytes == 0.0 and ingest > 0

    def test_network_load_scales_with_tuple_bytes(self, big_cluster):
        def run_with_bytes(nbytes):
            builder = TopologyBuilder("net")
            builder.spout("s", cost=1.0, tuple_bytes=nbytes)
            builder.bolt("b", inputs=["s"], cost=1.0, tuple_bytes=nbytes)
            topo = builder.build()
            model = AnalyticPerformanceModel(topo, big_cluster, quiet_calibration())
            config = TopologyConfig(
                parallelism_hints={"s": 4, "b": 4}, ackers=0, num_workers=10
            )
            return model.evaluate_noise_free(config)

        small = run_with_bytes(100)
        large = run_with_bytes(10_000)
        assert large.network_mb_per_worker_s > 50 * small.network_mb_per_worker_s

    def test_nic_cap_binds_for_fat_tuples(self, big_cluster):
        builder = TopologyBuilder("fat")
        builder.spout("s", cost=0.001, tuple_bytes=1_000_000)
        builder.bolt("b", inputs=["s"], cost=0.001, tuple_bytes=1_000_000)
        topo = builder.build()
        model = AnalyticPerformanceModel(topo, big_cluster, quiet_calibration())
        config = TopologyConfig(
            parallelism_hints={"s": 10, "b": 10},
            batch_size=10,
            batch_parallelism=50,
            ackers=0,
            num_workers=10,
        )
        run = model.evaluate_noise_free(config)
        assert run.details["limiting_cap"] in ("nic", "receiver")


class TestNoiseIntegration:
    def test_noise_free_is_deterministic(self, big_cluster):
        topo = linear_topology("chain", 1)
        model = AnalyticPerformanceModel(topo, big_cluster)
        config = TopologyConfig(
            parallelism_hints={n: 2 for n in topo}, ackers=0, num_workers=10
        )
        a = model.evaluate_noise_free(config).throughput_tps
        b = model.evaluate_noise_free(config).throughput_tps
        assert a == b

    def test_noisy_evaluations_vary(self, big_cluster):
        topo = linear_topology("chain", 1)
        model = AnalyticPerformanceModel(
            topo, big_cluster, noise=GaussianNoise(0.05), seed=1
        )
        config = TopologyConfig(
            parallelism_hints={n: 2 for n in topo}, ackers=0, num_workers=10
        )
        values = {model.evaluate(config).throughput_tps for _ in range(5)}
        assert len(values) > 1

    def test_callable_interface(self, big_cluster):
        topo = linear_topology("chain", 1)
        model = AnalyticPerformanceModel(topo, big_cluster)
        config = TopologyConfig(
            parallelism_hints={n: 2 for n in topo}, ackers=0, num_workers=10
        )
        assert model(config) > 0
