"""The self-contained HTML run report and its scatter-chart primitive."""

from __future__ import annotations

import math

import pytest

from repro import obs
from repro.core.loop import TuningLoop
from repro.core.optimizer import BayesianOptimizer
from repro.experiments.htmlreport import render_report, write_report
from repro.experiments.presets import SYNTHETIC_BASE_CONFIG
from repro.experiments.svg import svg_scatter_chart
from repro.storm.cluster import paper_cluster
from repro.storm.objective import StormObjective
from repro.storm.spaces import ParallelismCodec
from repro.topology_gen.suite import make_topology


@pytest.fixture(scope="module")
def traced_run(tmp_path_factory):
    """One diagnostics-instrumented tuning run captured to JSONL."""
    path = tmp_path_factory.mktemp("trace") / "run.jsonl"
    topology = make_topology("small")
    cluster = paper_cluster()
    codec = ParallelismCodec(topology, cluster, SYNTHETIC_BASE_CONFIG)
    objective = StormObjective(topology, cluster, codec)
    optimizer = BayesianOptimizer(codec.space, seed=9)
    with obs.session(jsonl_path=path, manifest={"exhibit": "test-run"}):
        TuningLoop(objective, optimizer, max_steps=8, seed=9).run()
    return obs.read_jsonl(path)


class TestScatterChart:
    def test_negative_values_and_hlines_render(self):
        svg = svg_scatter_chart(
            {"z": ([0.0, 1.0, 2.0], [-2.5, 0.3, 2.5])},
            title="residuals",
            y_label="z",
            hlines=[(1.96, "+1.96"), (-1.96, "-1.96")],
        )
        assert svg.startswith("<svg")
        assert "residuals" in svg
        assert "+1.96" in svg and "-1.96" in svg
        # Three data points plus one legend marker.
        assert svg.count("<circle") == 4

    def test_empty_series_raises_like_the_other_charts(self):
        # Report sections guard with _note() before ever calling this.
        with pytest.raises(ValueError, match="points"):
            svg_scatter_chart({"z": ([], [])}, title="empty")


class TestRenderReport:
    def test_all_sections_present_for_instrumented_run(self, traced_run):
        html = render_report(traced_run, title="Unit run")
        assert html.lstrip().startswith("<!DOCTYPE html>")
        for heading in (
            "Run manifest",
            "Convergence",
            "Calibration",
            "Phase-time breakdown",
            "Drift &amp; fault timeline",
        ):
            assert heading in html, heading
        # Self-contained: inline SVG, nothing fetched at view time.
        assert "<svg" in html
        assert 'src="http' not in html and 'href="http' not in html
        assert "coverage" in html

    def test_empty_trace_degrades_to_notes(self):
        html = render_report([], title="empty")
        assert "<!DOCTYPE html>" in html
        assert "no " in html.lower()  # each section leaves a note

    def test_uninstrumented_trace_skips_calibration_chart(self):
        events = [
            {"type": "manifest", "manifest": {"exhibit": "x"}, "t_wall": 0},
            {
                "type": "span",
                "name": "tuning.evaluate",
                "duration_s": 0.5,
                "t_start": 0.0,
                "depth": 0,
                "parent_id": None,
                "span_id": "s1",
                "status": "ok",
                "attrs": {},
            },
        ]
        html = render_report(events, title="bare")
        assert "Calibration" in html  # section present, chart replaced
        assert "residual" not in html or "no scored" in html.lower()

    def test_timeline_lists_drift_events(self):
        events = [
            {
                "type": "event",
                "name": "drift.detected",
                "t_wall": 12.5,
                "attrs": {"epoch": 3, "metric": "page_hinkley"},
            }
        ]
        html = render_report(events, title="drift")
        assert "drift.detected" in html
        assert "page_hinkley" in html

    def test_values_are_escaped(self):
        events = [
            {
                "type": "event",
                "name": "drift.detected",
                "t_wall": 1.0,
                "attrs": {"note": "<script>alert(1)</script>"},
            }
        ]
        html = render_report(events, title="<b>t</b>")
        assert "<script>" not in html
        assert "&lt;script&gt;" in html

    def test_write_report_round_trip(self, traced_run, tmp_path):
        out = tmp_path / "report.html"
        path = write_report(traced_run, out, title="file run")
        assert path == out
        text = out.read_text(encoding="utf-8")
        assert "file run" in text
        assert math.isfinite(len(text)) and len(text) > 1000
