"""Lease primitives, the cell queue, and the crash-safe worker loop.

The lease contract runs against both backends: one winner per claim,
monotonic fencing tokens, wall-clock expiry, fenced result writes that
a stale owner cannot use to clobber a newer owner's cell.  On top of
it, :class:`~repro.service.queue.CellQueue` ordering/reclaim behavior
and :func:`~repro.service.queue.run_worker` end-to-end: commit,
torn-commit repair, poisoned-cell quarantine, bounded retries of
transient failures, SIGTERM-style drain, and multi-worker splits.
"""

from __future__ import annotations

import dataclasses
import threading
import time

import pytest

from repro.core.history import Observation, TuningResult
from repro.service.campaign import CampaignSpec, store_cell_label
from repro.service.queue import CellQueue, QueuePolicy, WorkerReport, run_worker
from repro.store import (
    JsonlStudyStore,
    Lease,
    SqliteStudyStore,
    StaleLeaseError,
    open_store,
)

STUDY = "synthetic"


@pytest.fixture(params=["jsonl", "sqlite"])
def store(request, tmp_path):
    if request.param == "jsonl":
        backend = JsonlStudyStore(tmp_path / "store-dir")
    else:
        backend = SqliteStudyStore(tmp_path / "store.db")
    with backend:
        yield backend


def _results(value=1.0):
    result = TuningResult(strategy="t")
    result.observations.append(
        Observation(step=0, config={"x": 1}, value=value)
    )
    return [result]


class TestLeaseContract:
    """Both backends must satisfy every test in this class."""

    def test_acquire_returns_a_fresh_lease(self, store):
        lease = store.acquire_lease(STUDY, "a", "w1", 30.0)
        assert lease is not None
        assert (lease.owner, lease.status) == ("w1", "leased")
        assert lease.token == 1
        assert lease.attempts == 1
        assert not lease.expired()

    def test_held_lease_is_not_reclaimable(self, store):
        assert store.acquire_lease(STUDY, "a", "w1", 30.0) is not None
        assert store.acquire_lease(STUDY, "a", "w2", 30.0) is None

    def test_expired_lease_reclaims_with_a_bumped_token(self, store):
        first = store.acquire_lease(STUDY, "a", "w1", 1.0, now=1000.0)
        second = store.acquire_lease(STUDY, "a", "w2", 30.0, now=1002.0)
        assert second is not None
        assert second.owner == "w2"
        assert second.token == first.token + 1
        assert second.attempts == 2

    def test_stale_owner_cannot_renew_or_commit(self, store):
        first = store.acquire_lease(STUDY, "a", "w1", 1.0, now=1000.0)
        store.acquire_lease(STUDY, "a", "w2", 30.0, now=1002.0)
        with pytest.raises(StaleLeaseError):
            store.renew_lease(first, 30.0)
        with pytest.raises(StaleLeaseError):
            store.commit_lease(first)

    def test_renew_extends_the_deadline(self, store):
        lease = store.acquire_lease(STUDY, "a", "w1", 5.0, now=1000.0)
        renewed = store.renew_lease(lease, 5.0, now=1003.0)
        assert renewed.deadline == pytest.approx(1008.0)
        assert renewed.token == lease.token

    def test_committed_cell_is_terminal(self, store):
        lease = store.acquire_lease(STUDY, "a", "w1", 30.0)
        committed = store.commit_lease(lease)
        assert committed.status == "committed"
        assert store.acquire_lease(STUDY, "a", "w2", 30.0) is None

    def test_quarantined_cell_is_terminal_and_keeps_the_reason(self, store):
        lease = store.acquire_lease(STUDY, "a", "w1", 30.0)
        store.quarantine_lease(lease, "boom")
        current = store.read_lease(STUDY, "a")
        assert (current.status, current.reason) == ("quarantined", "boom")
        assert store.acquire_lease(STUDY, "a", "w2", 30.0) is None

    def test_released_cell_is_reclaimable_and_carries_the_reason(self, store):
        lease = store.acquire_lease(STUDY, "a", "w1", 30.0)
        store.release_lease(lease, reason="flaky")
        again = store.acquire_lease(STUDY, "a", "w2", 30.0)
        assert again is not None
        assert again.token == lease.token + 1
        assert again.reason == "flaky"

    def test_fenced_save_accepts_the_current_owner(self, store):
        lease = store.acquire_lease(STUDY, "a", "w1", 30.0)
        store.save_results_fenced(
            STUDY, "a", _results(), owner="w1", token=lease.token
        )
        loaded = store.load_results(STUDY, "a")
        assert loaded is not None and loaded[0].observations[0].value == 1.0

    def test_fenced_save_from_a_stale_owner_preserves_results(self, store):
        first = store.acquire_lease(STUDY, "a", "w1", 1.0, now=1000.0)
        store.acquire_lease(STUDY, "a", "w2", 30.0, now=1002.0)
        store.save_results_fenced(
            STUDY, "a", _results(2.0), owner="w2", token=first.token + 1
        )
        with pytest.raises(StaleLeaseError):
            store.save_results_fenced(
                STUDY, "a", _results(99.0), owner="w1", token=first.token
            )
        loaded = store.load_results(STUDY, "a")
        assert loaded[0].observations[0].value == 2.0

    def test_leases_do_not_pollute_cell_enumeration(self, store):
        store.save_results(STUDY, "real", _results())
        store.acquire_lease(STUDY, "real", "w1", 30.0)
        store.acquire_lease(STUDY, "leased-only", "w1", 30.0)
        assert store.cells(STUDY) == ["real"]

    def test_leases_enumerates_by_cell(self, store):
        store.acquire_lease(STUDY, "b", "w1", 30.0)
        store.acquire_lease(STUDY, "a", "w2", 30.0)
        leases = store.leases(STUDY)
        assert [lease.cell for lease in leases] == ["a", "b"]
        assert {lease.owner for lease in leases} == {"w1", "w2"}

    def test_read_lease_missing_is_none(self, store):
        assert store.read_lease(STUDY, "nope") is None

    def test_lease_round_trips_through_dict(self, store):
        lease = store.acquire_lease(STUDY, "a", "w1", 30.0)
        assert Lease.from_dict(lease.as_dict()) == lease


class TestJsonlLeaseFiles:
    def test_vacuum_prunes_superseded_lease_files(self, tmp_path):
        with JsonlStudyStore(tmp_path / "s") as store:
            store.acquire_lease(STUDY, "a", "w1", 0.01, now=1000.0)
            store.acquire_lease(STUDY, "a", "w2", 0.01, now=2000.0)
            lease = store.acquire_lease(STUDY, "a", "w3", 30.0, now=3000.0)
            files = list((tmp_path / "s").glob("**/*lease-*.json"))
            assert len(files) == 3
            store.vacuum()
            files = list((tmp_path / "s").glob("**/*lease-*.json"))
            assert len(files) == 1
            current = store.read_lease(STUDY, "a")
            assert (current.owner, current.token) == ("w3", lease.token)

    def test_vacuum_keeps_the_readable_lease_under_a_torn_claim(
        self, tmp_path
    ):
        # The top token file can be a torn claim (created, JSON never
        # landed).  vacuum must keep the highest *readable* lease too —
        # deleting it would erase the cell's attempts counter and last
        # failure reason, resetting the poisoned-cell quarantine bound.
        with JsonlStudyStore(tmp_path / "s") as store:
            store.acquire_lease(STUDY, "a", "w1", 0.01, now=1000.0)
            lease = store.acquire_lease(STUDY, "a", "w2", 30.0, now=2000.0)
            store.release_lease(lease, reason="flaky")
            store._lease_path("a", lease.token + 1).write_text("")
            store.vacuum()
            current = store.read_lease(STUDY, "a")
            assert current is not None
            assert (current.owner, current.token) == ("w2", lease.token)
            assert (current.attempts, current.reason) == (2, "flaky")
            # The torn top file survives so tokens stay monotonic.
            again = store.acquire_lease(STUDY, "a", "w3", 30.0, now=3000.0)
            assert again.token == lease.token + 2
            assert again.attempts == 3


class TestQueuePolicy:
    def test_defaults_derive_from_ttl(self):
        policy = QueuePolicy(ttl_seconds=30.0)
        assert policy.heartbeat_interval() == pytest.approx(10.0)
        assert policy.poll_interval() == pytest.approx(1.0)

    def test_round_trips_through_dict(self):
        policy = QueuePolicy(ttl_seconds=4.0, max_claim_attempts=9)
        assert QueuePolicy.from_dict(policy.as_dict()) == policy

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"ttl_seconds": 0.0},
            {"heartbeat_seconds": 40.0},
            {"poll_seconds": -1.0},
            {"max_claim_attempts": 0},
        ],
    )
    def test_invalid_policies_raise(self, kwargs):
        with pytest.raises(ValueError):
            QueuePolicy(**kwargs)


class TestCellQueue:
    def test_claims_in_label_order_and_skips_held_cells(self, store):
        queue = CellQueue(store, STUDY, ["a", "b", "c"])
        first = queue.claim_next("w1")
        second = queue.claim_next("w2")
        assert (first.cell, second.cell) == ("a", "b")

    def test_terminal_cells_never_come_back(self, store):
        queue = CellQueue(store, STUDY, ["a", "b"])
        lease = queue.claim_next("w1")
        store.commit_lease(lease)
        assert queue.claim_next("w1").cell == "b"
        assert queue.pending_labels() == ["b"]

    def test_expired_lease_is_reclaimed(self, store):
        queue = CellQueue(
            store, STUDY, ["a"], QueuePolicy(ttl_seconds=30.0)
        )
        store.acquire_lease(STUDY, "a", "dead", 1e-9)
        reclaimed = queue.claim_next("w2")
        assert reclaimed is not None
        assert reclaimed.owner == "w2"
        assert reclaimed.token == 2

    def test_rows_report_per_cell_status(self, store):
        queue = CellQueue(store, STUDY, ["a", "b", "c"])
        store.commit_lease(store.acquire_lease(STUDY, "a", "w1", 30.0))
        store.acquire_lease(STUDY, "b", "w2", 30.0)
        rows = {row["cell"]: row for row in queue.rows()}
        assert rows["a"]["status"] == "committed"
        assert rows["b"]["status"] == "leased"
        assert rows["b"]["owner"] == "w2"
        assert rows["c"]["status"] == "free"


# ----------------------------------------------------------------------
# run_worker (driven through the cells= override)
# ----------------------------------------------------------------------
@dataclasses.dataclass(frozen=True)
class _CellSpec:
    label: str
    lease: tuple[str, int] | None = None


def _worker_spec(store_spec, **kwargs) -> CampaignSpec:
    kwargs.setdefault("lease_ttl_seconds", 30.0)
    return CampaignSpec(
        study=STUDY,
        store=str(store_spec),
        mode="fleet",
        conditions=(),
        sizes=(),
        strategies=(),
        **kwargs,
    )


def _make_cell_fn(store_spec, calls, failures=None):
    """A cell function that saves one fenced result per invocation."""

    def cell_fn(cell):
        calls.append(cell.label)
        exc = (failures or {}).get(cell.label)
        if exc is not None:
            raise exc
        owner, token = cell.lease
        with open_store(str(store_spec)) as cell_store:
            cell_store.save_results_fenced(
                STUDY, cell.label, _results(), owner=owner, token=token
            )

    return cell_fn


def _cells(store_spec, labels, calls, failures=None):
    specs = [_CellSpec(label) for label in labels]
    return (
        specs, list(labels), _make_cell_fn(store_spec, calls, failures), STUDY
    )


class TestRunWorker:
    def test_commits_every_cell(self, tmp_path):
        db = tmp_path / "q.db"
        calls: list[str] = []
        report = run_worker(
            _worker_spec(db), "w1", cells=_cells(db, ["a", "b"], calls)
        )
        assert sorted(report.committed) == ["a", "b"]
        assert report.clean and not report.drained
        assert sorted(calls) == ["a", "b"]
        with open_store(str(db)) as store:
            for label in ("a", "b"):
                assert store.read_lease(STUDY, label).status == "committed"
                assert store.has_results(STUDY, label)

    def test_torn_commit_is_repaired_without_rerunning(self, tmp_path):
        db = tmp_path / "q.db"
        with open_store(str(db)) as store:
            # A dead worker's torn commit: results written under its
            # lease, the lease itself expired before committing.
            dead = store.acquire_lease(STUDY, "a", "dead", 1e-9)
            store.save_results_fenced(
                STUDY, "a", _results(7.0), owner="dead", token=dead.token
            )
        calls: list[str] = []
        report = run_worker(
            _worker_spec(db), "w2", cells=_cells(db, ["a"], calls)
        )
        assert report.repaired == ["a"]
        assert calls == []  # never re-run
        with open_store(str(db)) as store:
            assert store.read_lease(STUDY, "a").status == "committed"
            assert store.load_results(STUDY, "a")[0].observations[0].value == 7.0

    def test_persistent_failure_quarantines_with_the_reason(self, tmp_path):
        db = tmp_path / "q.db"
        calls: list[str] = []
        report = run_worker(
            _worker_spec(db), "w1",
            cells=_cells(
                db, ["a", "b"], calls,
                failures={"a": ValueError("bad geometry")},
            ),
        )
        assert report.committed == ["b"]
        assert len(report.quarantined) == 1
        label, reason = report.quarantined[0]
        assert label == "a" and "bad geometry" in reason
        assert calls.count("a") == 1  # no retry for persistent failures
        with open_store(str(db)) as store:
            lease = store.read_lease(STUDY, "a")
            assert lease.status == "quarantined"
            assert "ValueError" in lease.reason

    def test_transient_failures_retry_until_the_claim_bound(self, tmp_path):
        db = tmp_path / "q.db"
        calls: list[str] = []
        spec = _worker_spec(db, max_claim_attempts=3)
        report = run_worker(
            spec, "w1",
            cells=_cells(
                db, ["a"], calls,
                failures={"a": RuntimeError("worker_crash: injected")},
            ),
        )
        # max_claim_attempts runs, then the next claim quarantines.
        assert calls.count("a") == 3
        assert len(report.released) == 3
        assert len(report.quarantined) == 1
        _label, reason = report.quarantined[0]
        assert "poisoned cell" in reason and "worker_crash" in reason

    def test_drain_stops_between_cells(self, tmp_path):
        db = tmp_path / "q.db"
        stop = threading.Event()
        calls: list[str] = []
        specs = [_CellSpec(label) for label in ["a", "b"]]
        inner = _make_cell_fn(db, calls)

        def draining_cell_fn(cell):
            inner(cell)
            stop.set()  # SIGTERM arrives while "a" is running

        report = run_worker(
            _worker_spec(db), "w1", stop=stop,
            cells=(specs, ["a", "b"], draining_cell_fn, STUDY),
        )
        assert report.committed == ["a"]
        assert report.drained
        with open_store(str(db)) as store:
            assert store.read_lease(STUDY, "a").status == "committed"
            assert store.read_lease(STUDY, "b") is None

    @pytest.mark.parametrize("store_name", ["q.db", "store-dir"])
    def test_heartbeat_keeps_a_slow_cell_leased_past_the_ttl(
        self, tmp_path, store_name
    ):
        # Regression: renewals must run on the heartbeat thread's *own*
        # store handle.  A SQLite connection shared from the worker's
        # thread raises on every renewal (sqlite3 binds connections to
        # their creating thread), the errors are swallowed, and a live
        # worker's lease silently expires — a concurrent claimant then
        # reclaims the cell mid-run and the worker's commit is dropped
        # as stale.
        store_spec = tmp_path / store_name
        ttl = 0.5
        spec = _worker_spec(store_spec, lease_ttl_seconds=ttl)
        calls: list[str] = []
        inner = _make_cell_fn(store_spec, calls)
        started = threading.Event()

        def slow_cell_fn(cell):
            started.set()
            time.sleep(2.5 * ttl)  # only heartbeats keep the lease alive
            inner(cell)

        specs = [_CellSpec("a")]
        result: dict[str, WorkerReport] = {}

        def drive():
            result["report"] = run_worker(
                spec, "w1", cells=(specs, ["a"], slow_cell_fn, STUDY)
            )

        worker = threading.Thread(target=drive)
        worker.start()
        assert started.wait(10.0)
        # A rival polling for the cell must never see the lease expire.
        reclaimed = None
        with open_store(str(store_spec)) as rival_store:
            rival = CellQueue(
                rival_store, STUDY, ["a"], QueuePolicy(ttl_seconds=ttl)
            )
            while worker.is_alive():
                reclaimed = rival.claim_next("w2")
                if reclaimed is not None:
                    break
                time.sleep(0.05)
        worker.join()
        assert reclaimed is None
        report = result["report"]
        assert report.committed == ["a"]
        assert not report.stale_drops
        with open_store(str(store_spec)) as store:
            lease = store.read_lease(STUDY, "a")
            assert (lease.status, lease.owner) == ("committed", "w1")
            assert lease.attempts == 1  # never reclaimed

    def test_two_workers_split_the_cells(self, tmp_path):
        db = tmp_path / "q.db"
        labels = [f"cell{i}" for i in range(6)]
        calls: list[str] = []
        spec = _worker_spec(db)
        reports: dict[str, WorkerReport] = {}

        def drive(owner):
            reports[owner] = run_worker(
                spec, owner, cells=_cells(db, labels, calls)
            )

        threads = [
            threading.Thread(target=drive, args=(f"w{i}",)) for i in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        committed = sorted(
            label for r in reports.values() for label in r.committed
        )
        assert committed == sorted(labels)  # each cell exactly once
        assert sorted(calls) == sorted(labels)
        with open_store(str(db)) as store:
            assert all(
                store.read_lease(STUDY, label).status == "committed"
                for label in labels
            )


class TestStoreCellLabel:
    def test_synthetic_is_identity(self):
        assert store_cell_label("synthetic", "c/small/bo") == "c/small/bo"

    def test_sundog_carries_the_store_prefix(self):
        assert store_cell_label("sundog", "bo.h") == "sundog_bo.h"
