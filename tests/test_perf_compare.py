"""The bench-result schema and the perf-regression comparator."""

from __future__ import annotations

import json

import pytest

from repro.cli import main as cli_main
from repro.obs.perf import (
    SCHEMA_VERSION,
    ComparisonReport,
    SchemaDriftError,
    compare,
    load_result,
    make_metric,
    make_result,
    validate_result,
)


def _result(bench="bench_x", **metrics):
    defaults = {"speed": make_metric(100.0, higher_is_better=True)}
    return make_result(bench, mode="smoke", metrics=metrics or defaults)


# ----------------------------------------------------------------------
# Schema construction and validation
# ----------------------------------------------------------------------
class TestSchema:
    def test_make_result_shape(self):
        payload = make_result(
            "bench_x",
            mode="full",
            metrics={"lat": make_metric(1.5, higher_is_better=False, unit="s")},
            meta={"n": 3},
        )
        assert payload["schema_version"] == SCHEMA_VERSION
        assert payload["bench"] == "bench_x"
        assert payload["mode"] == "full"
        assert payload["metrics"]["lat"]["value"] == 1.5
        assert payload["metrics"]["lat"]["higher_is_better"] is False
        assert payload["meta"] == {"n": 3}
        assert validate_result(payload) == []

    def test_bad_mode_rejected(self):
        with pytest.raises(ValueError):
            make_result("b", mode="benchy", metrics=_result()["metrics"])

    def test_validate_flags_missing_fields(self):
        payload = _result()
        del payload["metrics"]["speed"]["higher_is_better"]
        payload["schema_version"] = 99
        problems = validate_result(payload)
        assert any("schema_version" in p for p in problems)
        assert any("higher_is_better" in p for p in problems)

    def test_load_result_bad_json_is_schema_drift(self, tmp_path):
        path = tmp_path / "broken.json"
        path.write_text("{nope")
        with pytest.raises(SchemaDriftError):
            load_result(path)


# ----------------------------------------------------------------------
# Comparison semantics
# ----------------------------------------------------------------------
class TestCompare:
    def test_identical_results_are_ok(self):
        report = compare(_result(), _result())
        assert isinstance(report, ComparisonReport)
        assert report.ok
        assert report.regressions == []

    def test_regression_beyond_threshold_fails(self):
        base = _result(speed=make_metric(100.0, higher_is_better=True))
        cur = _result(speed=make_metric(80.0, higher_is_better=True))
        report = compare(base, cur, threshold=0.10)
        assert not report.ok
        (delta,) = report.regressions
        assert delta.metric == "speed"
        assert delta.regressed_by == pytest.approx(0.20)

    def test_within_threshold_is_ok(self):
        base = _result(speed=make_metric(100.0, higher_is_better=True))
        cur = _result(speed=make_metric(95.0, higher_is_better=True))
        assert compare(base, cur, threshold=0.10).ok

    def test_lower_is_better_direction(self):
        base = _result(lat=make_metric(1.0, higher_is_better=False))
        worse = _result(lat=make_metric(1.5, higher_is_better=False))
        better = _result(lat=make_metric(0.5, higher_is_better=False))
        assert not compare(base, worse, threshold=0.10).ok
        report = compare(base, better, threshold=0.10)
        assert report.ok
        assert report.deltas[0].gain == pytest.approx(0.5)

    def test_new_metric_reported_not_failed(self):
        cur = _result(
            speed=make_metric(100.0, higher_is_better=True),
            extra=make_metric(1.0, higher_is_better=True),
        )
        report = compare(_result(), cur)
        assert report.ok
        assert report.new_metrics == ["extra"]

    def test_dropped_metric_is_schema_drift(self):
        base = _result(
            speed=make_metric(100.0, higher_is_better=True),
            extra=make_metric(1.0, higher_is_better=True),
        )
        with pytest.raises(SchemaDriftError, match="extra"):
            compare(base, _result())

    def test_bench_mismatch_is_schema_drift(self):
        with pytest.raises(SchemaDriftError, match="mismatch"):
            compare(_result(bench="a"), _result(bench="b"))

    def test_direction_flip_is_schema_drift(self):
        base = _result(speed=make_metric(100.0, higher_is_better=True))
        cur = _result(speed=make_metric(100.0, higher_is_better=False))
        with pytest.raises(SchemaDriftError, match="direction"):
            compare(base, cur)

    def test_zero_baseline_movement_is_infinite_gain(self):
        base = _result(errors=make_metric(0.0, higher_is_better=False))
        cur = _result(errors=make_metric(3.0, higher_is_better=False))
        report = compare(base, cur)
        assert not report.ok
        assert report.regressions[0].regressed_by == float("inf")
        # Flat zero stays OK.
        assert compare(base, base).ok

    def test_render_mentions_every_metric(self):
        base = _result(
            speed=make_metric(100.0, higher_is_better=True),
            lat=make_metric(2.0, higher_is_better=False),
        )
        cur = _result(
            speed=make_metric(50.0, higher_is_better=True),
            lat=make_metric(1.0, higher_is_better=False),
        )
        text = compare(base, cur).render()
        assert "speed" in text and "lat" in text
        assert "REGRESSED" in text and "FAIL" in text


# ----------------------------------------------------------------------
# CLI: the exact exit codes CI keys on
# ----------------------------------------------------------------------
class TestCli:
    def _write(self, path, payload):
        path.write_text(json.dumps(payload))
        return str(path)

    def test_exit_codes(self, tmp_path, capsys):
        base = self._write(tmp_path / "base.json", _result())
        same = self._write(tmp_path / "same.json", _result())
        regressed = self._write(
            tmp_path / "reg.json",
            _result(speed=make_metric(10.0, higher_is_better=True)),
        )
        drifted = self._write(tmp_path / "drift.json", _result(bench="other"))

        assert cli_main(["obs", "perf-compare", base, same]) == 0
        # An injected synthetic regression must exit nonzero.
        assert cli_main(["obs", "perf-compare", base, regressed]) == 1
        out = capsys.readouterr().out
        assert "REGRESSED" in out
        # --warn-only downgrades perf regressions ...
        assert (
            cli_main(["obs", "perf-compare", base, regressed, "--warn-only"])
            == 0
        )
        # ... but never schema drift.
        assert (
            cli_main(["obs", "perf-compare", base, drifted, "--warn-only"])
            == 2
        )

    def test_threshold_flag(self, tmp_path):
        base = self._write(tmp_path / "base.json", _result())
        slower = self._write(
            tmp_path / "cur.json",
            _result(speed=make_metric(85.0, higher_is_better=True)),
        )
        argv = ["obs", "perf-compare", base, slower]
        assert cli_main(argv + ["--threshold", "0.30"]) == 0
        assert cli_main(argv + ["--threshold", "0.05"]) == 1


# ----------------------------------------------------------------------
# Committed baselines stay loadable and schema-clean
# ----------------------------------------------------------------------
def test_committed_baselines_validate():
    from pathlib import Path

    baseline_dir = Path(__file__).resolve().parent.parent / "benchmarks"
    baselines = sorted((baseline_dir / "baselines").glob("*.json"))
    assert baselines, "no committed baselines found"
    for path in baselines:
        payload = load_result(path)
        assert validate_result(payload) == [], path.name
        assert payload["bench"] == path.stem
        # A baseline must compare cleanly against itself.
        assert compare(payload, payload).ok
