"""Executor batch fast paths over vectorized objectives.

:class:`SerialExecutor` and :class:`ThreadPoolExecutor` route
homogeneous analytic batches through one ``measure_batch`` call instead
of N submits; these tests pin that engagement, the bit-identity of the
outcomes with the scalar path, the exception fallback (batching
disables itself, the failing evaluation keeps its ticket attribution),
and that the determinism regression of PR 3 extends to the batch path:
serial, serial-batched, and thread-batched loops observe the identical
set.
"""

from __future__ import annotations

import pytest

from repro.core.executor import (
    SerialExecutor,
    ThreadPoolExecutor,
    supports_batch_measurement,
)
from repro.core.loop import TuningLoop
from repro.experiments.presets import SYNTHETIC_BASE_CONFIG, default_cluster
from repro.experiments.runner import make_synthetic_optimizer
from repro.storm.noise import GaussianNoise
from repro.storm.objective import StormObjective
from repro.topology_gen.suite import make_topology


def _storm_objective(noise=None, seed=None, fidelity="analytic") -> StormObjective:
    topology = make_topology("small")
    cluster = default_cluster()
    _, codec = make_synthetic_optimizer(
        "pla", topology, cluster, SYNTHETIC_BASE_CONFIG, 8, seed=0
    )
    return StormObjective(
        topology, cluster, codec, fidelity=fidelity, noise=noise, seed=seed
    )


def _spy_measure_batch(objective) -> list[int]:
    """Shadow measure_batch with a call-size recorder (still vectorized)."""
    sizes: list[int] = []
    original = objective.measure_batch

    def spy(params_list, *, seeds=None):
        sizes.append(len(params_list))
        return original(params_list, seeds=seeds)

    objective.measure_batch = spy
    return sizes


class TestSupportsBatchMeasurement:
    def test_analytic_objective_qualifies(self):
        assert supports_batch_measurement(_storm_objective())

    def test_des_objective_does_not(self):
        objective = _storm_objective(fidelity="des")
        assert callable(objective.measure_batch)
        assert not objective.supports_batch_fast_path
        assert not supports_batch_measurement(objective)

    def test_plain_callable_does_not(self):
        assert not supports_batch_measurement(lambda config: 1.0)


class TestSerialBatchFastPath:
    def test_drains_queue_in_one_batch_call(self):
        objective = _storm_objective()
        sizes = _spy_measure_batch(objective)
        with SerialExecutor(objective) as executor:
            for i, h in enumerate((1, 2, 3, 4)):
                executor.submit(i, {"uniform_hint": h}, seed=i)
            outcomes = [executor.wait_one() for _ in range(4)]
        assert sizes == [4]
        assert [o.eval_id for o in outcomes] == [0, 1, 2, 3]  # FIFO

    def test_outcomes_match_scalar_path(self):
        params = [{"uniform_hint": h} for h in (1, 2, 3, 4)]
        reference = _storm_objective()
        expected = [reference.measure(p, seed=i) for i, p in enumerate(params)]
        with SerialExecutor(_storm_objective()) as executor:
            for i, p in enumerate(params):
                executor.submit(i, p, seed=i)
            outcomes = [executor.wait_one() for _ in range(4)]
        assert [o.run for o in outcomes] == expected
        assert [o.value for o in outcomes] == [
            r.throughput_tps for r in expected
        ]

    def test_single_submission_stays_scalar(self):
        objective = _storm_objective()
        sizes = _spy_measure_batch(objective)
        with SerialExecutor(objective) as executor:
            executor.submit(0, {"uniform_hint": 2})
            executor.wait_one()
        assert sizes == []

    def test_batch_failure_falls_back_with_attribution(self):
        objective = _storm_objective()

        def boom(params_list, *, seeds=None):
            raise RuntimeError("vectorized path exploded")

        objective.measure_batch = boom
        with SerialExecutor(objective) as executor:
            executor.submit(7, {"uniform_hint": 2})
            executor.submit(8, {"uniform_hint": "not-an-int"})
            first = executor.wait_one()  # scalar replay after batch failure
            assert first.eval_id == 7
            assert executor._batch_disabled
            with pytest.raises(Exception) as excinfo:
                executor.wait_one()
            assert excinfo.value._repro_ticket.eval_id == 8

    def test_abandoned_batch_outcome_is_dropped(self):
        objective = _storm_objective()
        with SerialExecutor(objective) as executor:
            executor.submit(0, {"uniform_hint": 1})
            executor.submit(1, {"uniform_hint": 2})
            executor.submit(2, {"uniform_hint": 3})
            first = executor.wait_one()  # drains the batch into _completed
            assert first.eval_id == 0
            assert executor.abandon(1)
            assert executor.wait_one().eval_id == 2
            assert executor.n_pending == 0


class TestThreadPoolBatchFastPath:
    def test_buffers_and_flushes_one_batch_task(self):
        objective = _storm_objective()
        sizes = _spy_measure_batch(objective)
        with ThreadPoolExecutor(objective, max_workers=2) as executor:
            for i, h in enumerate((1, 2, 3, 4)):
                executor.submit(i, {"uniform_hint": h}, seed=i)
            assert executor.n_pending == 4
            outcomes = [executor.wait_one() for _ in range(4)]
        assert sizes == [4]
        assert {o.eval_id for o in outcomes} == {0, 1, 2, 3}

    def test_outcomes_match_scalar_path(self):
        params = [{"uniform_hint": h} for h in (1, 2, 3, 4)]
        reference = _storm_objective()
        expected = {
            i: reference.measure(p, seed=i) for i, p in enumerate(params)
        }
        with ThreadPoolExecutor(_storm_objective(), max_workers=4) as executor:
            for i, p in enumerate(params):
                executor.submit(i, p, seed=i)
            outcomes = [executor.wait_one() for _ in range(4)]
        assert {o.eval_id: o.run for o in outcomes} == expected

    def test_abandon_from_buffer(self):
        objective = _storm_objective()
        with ThreadPoolExecutor(objective, max_workers=2) as executor:
            executor.submit(0, {"uniform_hint": 1})
            executor.submit(1, {"uniform_hint": 2})
            assert executor.abandon(1)
            assert executor.n_pending == 1
            assert executor.wait_one().eval_id == 0
            assert executor.n_pending == 0

    def test_abandon_in_flight_batch_discards_outcome(self):
        objective = _storm_objective()
        with ThreadPoolExecutor(objective, max_workers=2) as executor:
            executor.submit(0, {"uniform_hint": 1})
            executor.submit(1, {"uniform_hint": 2})
            executor.submit(2, {"uniform_hint": 3})
            first = executor.wait_one()  # flushes the batch
            collected = {first.eval_id}
            remaining = {0, 1, 2} - collected
            victim = min(remaining)
            assert executor.abandon(victim)
            survivor = executor.wait_one()
            assert survivor.eval_id == max(remaining)
            assert executor.n_pending == 0

    def test_batch_failure_resubmits_singles_with_attribution(self):
        objective = _storm_objective()
        original = objective.measure_batch
        calls = {"n": 0}

        def flaky(params_list, *, seeds=None):
            calls["n"] += 1
            raise RuntimeError("vectorized path exploded")

        objective.measure_batch = flaky
        with ThreadPoolExecutor(objective, max_workers=2) as executor:
            executor.submit(0, {"uniform_hint": 1}, seed=0)
            executor.submit(1, {"uniform_hint": 2}, seed=1)
            outcomes = [executor.wait_one() for _ in range(2)]
            assert executor._batch_disabled
        assert calls["n"] == 1
        assert {o.eval_id for o in outcomes} == {0, 1}
        expected = _storm_objective()
        by_id = {o.eval_id: o.run for o in outcomes}
        assert by_id[0] == expected.measure({"uniform_hint": 1}, seed=0)
        assert by_id[1] == expected.measure({"uniform_hint": 2}, seed=1)
        del original  # silence lints; kept for symmetry with the spy


class TestBatchDeterminismRegression:
    """PR 3's set-identity regression, extended to the batch path."""

    def _observations(self, *, executor_kind: str) -> set[tuple[tuple, float]]:
        objective = _storm_objective(noise=GaussianNoise(0.1), seed=11)
        optimizer, _ = make_synthetic_optimizer(
            "pla",
            objective.topology,
            objective.cluster,
            SYNTHETIC_BASE_CONFIG,
            8,
            seed=0,
        )
        if executor_kind == "none":
            executor = None
        elif executor_kind == "serial-batched":
            executor = SerialExecutor(objective)
        else:
            executor = ThreadPoolExecutor(objective, max_workers=4)
        try:
            loop = TuningLoop(
                objective,
                optimizer,
                max_steps=8,
                executor=executor,
                batch_size=4 if executor is not None else None,
                seed=2024,
            )
            result = loop.run()
        finally:
            if executor is not None:
                executor.close()
        return {
            (tuple(sorted(o.config.items())), o.value)
            for o in result.observations
        }

    def test_serial_and_batched_observe_identically(self):
        serial = self._observations(executor_kind="none")
        serial_batched = self._observations(executor_kind="serial-batched")
        thread_batched = self._observations(executor_kind="thread-batched")
        assert serial == serial_batched == thread_batched

    def test_fast_path_actually_engaged(self):
        """Guard against a silently-dead fast path making the set test
        vacuous."""
        objective = _storm_objective(noise=GaussianNoise(0.1), seed=11)
        sizes = _spy_measure_batch(objective)
        optimizer, _ = make_synthetic_optimizer(
            "pla",
            objective.topology,
            objective.cluster,
            SYNTHETIC_BASE_CONFIG,
            8,
            seed=0,
        )
        with SerialExecutor(objective) as executor:
            loop = TuningLoop(
                objective,
                optimizer,
                max_steps=8,
                executor=executor,
                batch_size=4,
                seed=2024,
            )
            loop.run()
        assert sizes and max(sizes) > 1
