"""Local-mode execution: real logic, real tuples, conservation laws."""

from __future__ import annotations

import pytest

from repro.storm.grouping import Grouping
from repro.storm.local import (
    BatchAwareBolt,
    LocalExecutionError,
    LocalTopologyRunner,
    iterate_rows,
    repeating_source,
)
from repro.storm.topology import TopologyBuilder, linear_topology
from repro.storm.tuples import Batch, Tuple, make_batch


def counter_source(prefix: str = "row"):
    def make_rows(chunk: int):
        return [{"id": f"{prefix}{chunk}-{i}"} for i in range(64)]

    return repeating_source(make_rows)


class TestTuples:
    def test_tuple_access(self):
        t = Tuple(values={"a": 1, "b": "x"}, source="s", batch_id=0)
        assert t["a"] == 1
        assert t.get("missing", 7) == 7
        assert t.fields == ("a", "b")

    def test_with_values(self):
        t = Tuple(values={"a": 1}, source="s", batch_id=3)
        u = t.with_values("bolt", b=2)
        assert u.values == {"b": 2}
        assert u.batch_id == 3
        assert u.source == "bolt"

    def test_batch_rejects_foreign_tuples(self):
        batch = Batch(batch_id=1)
        with pytest.raises(ValueError):
            batch.append(Tuple(values={}, source="s", batch_id=2))

    def test_make_batch(self):
        batch = make_batch(5, "s", [{"a": 1}, {"a": 2}])
        assert len(batch) == 2
        assert all(t.batch_id == 5 for t in batch)


class TestRunnerBasics:
    def test_requires_all_sources(self, chain3):
        with pytest.raises(LocalExecutionError):
            LocalTopologyRunner(chain3, sources={})

    def test_rejects_unknown_logic(self, chain3):
        with pytest.raises(LocalExecutionError):
            LocalTopologyRunner(
                chain3,
                sources={"spout": counter_source()},
                logic={"ghost": lambda t: []},
            )

    def test_exhausted_source_raises(self, chain3):
        runner = LocalTopologyRunner(
            chain3, sources={"spout": iterate_rows([{"id": 1}])}
        )
        with pytest.raises(LocalExecutionError):
            runner.run(n_batches=1, batch_size=5)

    def test_run_validates_args(self, chain3):
        runner = LocalTopologyRunner(chain3, sources={"spout": counter_source()})
        with pytest.raises(ValueError):
            runner.run(n_batches=0, batch_size=5)


class TestConservation:
    def test_chain_passthrough_conserves_tuples(self, chain3):
        runner = LocalTopologyRunner(chain3, sources={"spout": counter_source()})
        result = runner.run(n_batches=3, batch_size=20)
        assert result.source_tuples == 60
        for name in chain3:
            assert result.stats[name].received == 60
            assert result.stats[name].emitted == 60

    def test_fan_out_duplicates_to_each_child(self, fan_topology):
        runner = LocalTopologyRunner(
            fan_topology, sources={"src": counter_source()}
        )
        result = runner.run(n_batches=2, batch_size=10)
        for i in range(3):
            assert result.stats[f"work{i}"].received == 20

    def test_filtering_logic_reduces_volume(self, chain3):
        def drop_half(item):
            return [dict(item.values)] if int(str(item["id"]).split("-")[1]) % 2 == 0 else []

        runner = LocalTopologyRunner(
            chain3,
            sources={"spout": counter_source()},
            logic={"bolt1": drop_half},
        )
        result = runner.run(n_batches=1, batch_size=20)
        assert result.stats["bolt1"].received == 20
        assert result.stats["bolt1"].emitted == 10
        assert result.stats["bolt2"].received == 10

    def test_declared_selectivity_default_logic(self):
        builder = TopologyBuilder("sel")
        builder.spout("s")
        builder.bolt("expand", inputs=["s"], selectivity=2.5)
        builder.bolt("out", inputs=["expand"])
        topo = builder.build()
        runner = LocalTopologyRunner(topo, sources={"s": counter_source()})
        result = runner.run(n_batches=1, batch_size=100)
        # Deterministic rotation: exactly 250 tuples out of 100.
        assert result.stats["expand"].emitted == 250

    def test_multi_spout_batch_split(self):
        builder = TopologyBuilder("multi")
        builder.spout("s1")
        builder.spout("s2")
        builder.bolt("join", inputs=["s1", "s2"])
        topo = builder.build()
        runner = LocalTopologyRunner(
            topo, sources={"s1": counter_source("a"), "s2": counter_source("b")}
        )
        result = runner.run(n_batches=1, batch_size=11)
        assert result.stats["s1"].received + result.stats["s2"].received == 11
        assert result.stats["join"].received == 11

    def test_sink_tuples_are_received_tuples(self, chain3):
        runner = LocalTopologyRunner(chain3, sources={"spout": counter_source()})
        result = runner.run(n_batches=1, batch_size=7)
        assert len(result.sink_tuples["bolt2"]) == 7

    def test_measured_selectivities(self, chain3):
        runner = LocalTopologyRunner(chain3, sources={"spout": counter_source()})
        result = runner.run(n_batches=1, batch_size=10)
        sel = result.measured_selectivities()
        assert sel["bolt1"] == pytest.approx(1.0)


class TestBatchAwareBolts:
    def test_aggregation_emits_at_batch_end(self):
        class CountAll(BatchAwareBolt):
            def __init__(self):
                self.count = 0

            def begin_batch(self, batch_id):
                self.count = 0

            def process(self, item):
                self.count += 1
                return []

            def end_batch(self):
                return [{"count": self.count}]

        topo = linear_topology("agg", 2)  # spout -> bolt1(agg) -> bolt2(sink)
        runner = LocalTopologyRunner(
            topo, sources={"spout": counter_source()}, logic={"bolt1": CountAll()}
        )
        result = runner.run(n_batches=3, batch_size=15)
        # One aggregate row per batch.
        assert result.stats["bolt1"].emitted == 3
        assert all(t["count"] == 15 for t in result.sink_tuples["bolt2"])

    def test_state_resets_between_batches(self):
        class DistinctIds(BatchAwareBolt):
            def __init__(self):
                self.seen = set()

            def begin_batch(self, batch_id):
                self.seen = set()

            def process(self, item):
                self.seen.add(item["id"])
                return []

            def end_batch(self):
                return [{"distinct": len(self.seen)}]

        topo = linear_topology("distinct", 2)
        runner = LocalTopologyRunner(
            topo,
            sources={"spout": counter_source()},
            logic={"bolt1": DistinctIds()},
        )
        result = runner.run(n_batches=2, batch_size=10)
        distinct = [t["distinct"] for t in result.sink_tuples["bolt2"]]
        assert distinct == [10, 10]


class TestGroupingAccounting:
    def test_fields_grouping_keeps_keys_together(self):
        builder = TopologyBuilder("fields")
        builder.spout("s")
        builder.bolt("agg", inputs=["s"], grouping=Grouping.FIELDS)
        topo = builder.build()

        def keyed_rows(chunk):
            return [{"key": f"k{i % 4}"} for i in range(40)]

        runner = LocalTopologyRunner(
            topo,
            sources={"s": repeating_source(keyed_rows)},
            parallelism_hints={"agg": 3},
        )
        result = runner.run(n_batches=1, batch_size=40)
        per_task = result.stats["agg"].per_task_received
        assert sum(per_task) == 40
        # 4 distinct keys over 3 tasks: at most 4 non-empty partitions.
        assert sum(1 for c in per_task if c) <= 4

    def test_global_grouping_pins_task_zero(self):
        builder = TopologyBuilder("global")
        builder.spout("s")
        builder.bolt("single", inputs=["s"], grouping=Grouping.GLOBAL)
        topo = builder.build()
        runner = LocalTopologyRunner(
            topo,
            sources={"s": counter_source()},
            parallelism_hints={"single": 4},
        )
        result = runner.run(n_batches=1, batch_size=12)
        assert result.stats["single"].per_task_received == [12, 0, 0, 0]

    def test_shuffle_grouping_balances(self, fan_topology):
        runner = LocalTopologyRunner(
            fan_topology,
            sources={"src": counter_source()},
            parallelism_hints={"work0": 4},
        )
        result = runner.run(n_batches=1, batch_size=40)
        per_task = result.stats["work0"].per_task_received
        assert sum(per_task) == 40
        assert max(per_task) - min(per_task) <= 1
