"""Resilient evaluation: classification, retries, timeouts, breakers.

Also the failure-propagation chain the robustness work guarantees:
engine failure → ``Observation.failed`` → the loop's
``tuning.failed_evaluations`` counter — identically under the serial,
thread-pool, and process-pool executors.
"""

from __future__ import annotations

import math
import time

import numpy as np
import pytest

from repro.core.executor import (
    ProcessPoolExecutor,
    SerialExecutor,
    ThreadPoolExecutor,
)
from repro.core.loop import TuningLoop
from repro.core.optimizer import BayesianOptimizer
from repro.core.parameters import IntParameter, ParameterSpace
from repro.core.resilience import (
    FailedEvaluation,
    ReplicatedObjective,
    ResilientExecutor,
    RetryPolicy,
    classify_failure,
    config_key,
)
from repro.core.seeding import derive_seed
from repro.experiments.presets import SYNTHETIC_BASE_CONFIG, default_cluster
from repro.experiments.runner import make_synthetic_optimizer
from repro.storm.faults import FaultPlan, FaultSpec
from repro.storm.metrics import MeasuredRun
from repro.storm.objective import StormObjective
from repro.topology_gen.suite import make_topology


class FlakyObjective:
    """Fails transiently the first ``fail_first`` measure() calls."""

    def __init__(self, fail_first: int = 1, reason: str = "worker_crash: x"):
        self.fail_first = fail_first
        self.reason = reason
        self.calls: list[tuple[dict, int | None]] = []

    def measure(self, params, *, seed=None):
        self.calls.append((dict(params), seed))
        if len(self.calls) <= self.fail_first:
            return MeasuredRun.failure(self.reason)
        return MeasuredRun(throughput_tps=float(params["x"]) * 10.0)


def _sleepy(params):
    time.sleep(float(params.get("sleep", 0.0)))
    return float(params["x"])


class TestClassifyFailure:
    @pytest.mark.parametrize(
        "reason",
        [
            "worker_crash: died",
            "measurement_window_hang: stuck",
            "evaluation_timeout: exceeded 5s",
            "worker_exception: ValueError: boom",
        ],
    )
    def test_transient(self, reason):
        assert classify_failure(reason) == "transient"

    @pytest.mark.parametrize(
        "reason",
        ["scheduling: no capacity", "batch latency 45634 ms exceeds", ""],
    )
    def test_persistent(self, reason):
        assert classify_failure(reason) == "persistent"


class TestRetryPolicy:
    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_retries": -1},
            {"timeout_seconds": 0.0},
            {"backoff_multiplier": 0.5},
            {"breaker_threshold": 0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            RetryPolicy(**kwargs)

    def test_backoff_grows_exponentially(self):
        policy = RetryPolicy(
            backoff_base_seconds=0.1, backoff_multiplier=3.0, backoff_jitter=0.0
        )
        assert policy.backoff_seconds(1) == pytest.approx(0.1)
        assert policy.backoff_seconds(2) == pytest.approx(0.3)
        assert policy.backoff_seconds(3) == pytest.approx(0.9)

    def test_jitter_bounded(self):
        policy = RetryPolicy(backoff_base_seconds=1.0, backoff_jitter=0.5)
        rng = np.random.default_rng(0)
        for _ in range(100):
            s = policy.backoff_seconds(1, rng)
            assert 1.0 <= s <= 1.5

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError):
            RetryPolicy().backoff_seconds(0)


def _resilient(objective, policy, *, seed=None, workers=1, kind="serial"):
    inner = {
        "serial": lambda: SerialExecutor(objective),
        "thread": lambda: ThreadPoolExecutor(objective, max_workers=workers),
    }[kind]()
    return ResilientExecutor(inner, policy, seed=seed)


class TestRetries:
    def test_transient_failure_retried_to_success(self):
        objective = FlakyObjective(fail_first=2)
        policy = RetryPolicy(max_retries=2, backoff_base_seconds=0.0)
        ex = _resilient(objective, policy, seed=0)
        ex.submit(0, {"x": 3}, seed=42)
        outcome = ex.wait_one()
        assert outcome.value == 30.0
        assert not outcome.run.failed
        assert ex.stats["retries"] == 2
        assert ex.stats["transient_failures"] == 2
        assert len(objective.calls) == 3

    def test_retry_uses_derived_seed(self):
        objective = FlakyObjective(fail_first=1)
        policy = RetryPolicy(max_retries=1, backoff_base_seconds=0.0)
        ex = _resilient(objective, policy, seed=0)
        ex.submit(0, {"x": 1}, seed=42)
        ex.wait_one()
        seeds = [seed for _, seed in objective.calls]
        assert seeds == [42, derive_seed(42, "retry", 1)]

    def test_none_seed_stays_none_on_retry(self):
        objective = FlakyObjective(fail_first=1)
        ex = _resilient(
            objective, RetryPolicy(max_retries=1, backoff_base_seconds=0.0)
        )
        ex.submit(0, {"x": 1})
        ex.wait_one()
        assert [seed for _, seed in objective.calls] == [None, None]

    def test_retries_exhausted_surfaces_failure(self):
        objective = FlakyObjective(fail_first=100)
        policy = RetryPolicy(max_retries=2, backoff_base_seconds=0.0)
        ex = _resilient(objective, policy, seed=0)
        ex.submit(0, {"x": 1}, seed=7)
        outcome = ex.wait_one()
        assert outcome.run.failed
        assert outcome.run.failure_reason.startswith("worker_crash")
        assert outcome.value == 0.0
        assert ex.stats["gave_up"] == 1
        assert len(objective.calls) == 3  # 1 original + 2 retries

    def test_persistent_failure_not_retried(self):
        objective = FlakyObjective(
            fail_first=100, reason="scheduling: no capacity"
        )
        ex = _resilient(objective, RetryPolicy(max_retries=5), seed=0)
        ex.submit(0, {"x": 1}, seed=7)
        outcome = ex.wait_one()
        assert outcome.run.failed
        assert ex.stats["retries"] == 0
        assert ex.stats["persistent_failures"] == 1
        assert len(objective.calls) == 1


class TestCircuitBreaker:
    def test_opens_after_threshold_and_short_circuits(self):
        objective = FlakyObjective(
            fail_first=100, reason="scheduling: no capacity"
        )
        policy = RetryPolicy(breaker_threshold=2)
        ex = _resilient(objective, policy, seed=0)
        for eval_id in range(2):
            ex.submit(eval_id, {"x": 1}, seed=eval_id)
            assert ex.wait_one().run.failed
        assert ex.stats["circuit_opens"] == 1
        # Third submission never reaches the substrate.
        ex.submit(2, {"x": 1}, seed=2)
        outcome = ex.wait_one()
        assert outcome.run.failure_reason.startswith("circuit_open")
        assert ex.stats["short_circuits"] == 1
        assert len(objective.calls) == 2

    def test_distinct_configs_have_distinct_circuits(self):
        objective = FlakyObjective(
            fail_first=100, reason="scheduling: no capacity"
        )
        policy = RetryPolicy(breaker_threshold=1)
        ex = _resilient(objective, policy, seed=0)
        ex.submit(0, {"x": 1}, seed=0)
        ex.wait_one()
        ex.submit(1, {"x": 2}, seed=1)  # different config: circuit closed
        outcome = ex.wait_one()
        assert not outcome.run.failure_reason.startswith("circuit_open")
        assert config_key({"x": 1}) != config_key({"x": 2})

    def test_without_cooldown_an_open_circuit_never_recovers(self):
        objective = FlakyObjective(fail_first=1, reason="scheduling: full")
        policy = RetryPolicy(breaker_threshold=1)  # cooldown defaults None
        ex = _resilient(objective, policy, seed=0)
        ex.submit(0, {"x": 1}, seed=0)
        ex.wait_one()
        ex._clock = lambda: 1e9  # any amount of rest
        ex.submit(1, {"x": 1}, seed=1)
        assert ex.wait_one().run.failure_reason.startswith("circuit_open")
        assert len(objective.calls) == 1

    def test_in_flight_success_does_not_reclose_without_cooldown(self):
        # An evaluation submitted before the circuit opened can still
        # succeed afterwards; in classic mode (no cooldown — no probes)
        # that straggler must not reset the breaker: the circuit stays
        # open for the rest of the run.
        objective = FlakyObjective(fail_first=1, reason="scheduling: full")
        policy = RetryPolicy(breaker_threshold=1)  # cooldown defaults None
        ex = _resilient(objective, policy, seed=0)
        ex.submit(0, {"x": 1}, seed=0)  # will fail: opens the circuit
        ex.submit(1, {"x": 1}, seed=1)  # in flight before it opened
        assert ex.wait_one().run.failed
        assert not ex.wait_one().run.failed  # the straggler surfaces...
        assert ex.stats["circuit_closes"] == 0  # ...but never re-closes
        ex.submit(2, {"x": 1}, seed=2)
        assert ex.wait_one().run.failure_reason.startswith("circuit_open")
        assert len(objective.calls) == 2

    def _half_open_executor(self, objective):
        """Breaker at 1 with a 10s cooldown and a settable clock."""
        policy = RetryPolicy(
            breaker_threshold=1, breaker_cooldown_seconds=10.0
        )
        ex = _resilient(objective, policy, seed=0)
        clock = {"now": 0.0}
        ex._clock = lambda: clock["now"]
        return ex, clock

    def test_half_open_probe_success_recloses_the_circuit(self):
        objective = FlakyObjective(fail_first=1, reason="scheduling: full")
        ex, clock = self._half_open_executor(objective)
        ex.submit(0, {"x": 1}, seed=0)
        assert ex.wait_one().run.failed
        assert ex.stats["circuit_opens"] == 1

        # Still resting: submissions short-circuit.
        clock["now"] = 5.0
        ex.submit(1, {"x": 1}, seed=1)
        assert ex.wait_one().run.failure_reason.startswith("circuit_open")

        # Cooldown served: the next submission is a real probe, its
        # success re-closes the circuit, and traffic flows again.
        clock["now"] = 11.0
        ex.submit(2, {"x": 1}, seed=2)
        outcome = ex.wait_one()
        assert not outcome.run.failed
        assert ex.stats["circuit_half_opens"] == 1
        assert ex.stats["circuit_closes"] == 1
        ex.submit(3, {"x": 1}, seed=3)
        assert not ex.wait_one().run.failed
        assert ex.stats["short_circuits"] == 1  # only the resting one

    def test_failed_probe_reopens_for_another_cooldown(self):
        objective = FlakyObjective(fail_first=100, reason="scheduling: full")
        ex, clock = self._half_open_executor(objective)
        ex.submit(0, {"x": 1}, seed=0)
        assert ex.wait_one().run.failed

        clock["now"] = 11.0
        ex.submit(1, {"x": 1}, seed=1)  # probe, fails persistently again
        assert ex.wait_one().run.failed
        assert ex.stats["circuit_half_opens"] == 1
        assert ex.stats["circuit_closes"] == 0

        # Re-armed as of the probe: short-circuits until another rest.
        clock["now"] = 15.0
        ex.submit(2, {"x": 1}, seed=2)
        assert ex.wait_one().run.failure_reason.startswith("circuit_open")
        clock["now"] = 22.0
        ex.submit(3, {"x": 1}, seed=3)
        assert ex.wait_one().run.failure_reason.startswith("scheduling")
        assert ex.stats["circuit_half_opens"] == 2
        assert len(objective.calls) == 3

    def test_cooldown_validation(self):
        with pytest.raises(ValueError):
            RetryPolicy(breaker_cooldown_seconds=0.0)
        policy = RetryPolicy(breaker_cooldown_seconds=2.5)
        assert RetryPolicy.from_dict(policy.as_dict()) == policy


class TestControlFlowExceptions:
    """KeyboardInterrupt / SystemExit must re-raise, never retry."""

    @pytest.mark.parametrize("exc_type", [KeyboardInterrupt, SystemExit])
    def test_interrupts_propagate_through_the_resilient_layer(self, exc_type):
        class InterruptingObjective:
            calls = 0

            def measure(self, params, *, seed=None):
                type(self).calls += 1
                raise exc_type()

        objective = InterruptingObjective()
        policy = RetryPolicy(max_retries=5, backoff_base_seconds=0.0)
        ex = _resilient(objective, policy, seed=0)
        ex.submit(0, {"x": 1}, seed=0)
        with pytest.raises(exc_type):
            ex.wait_one()
        assert objective.calls == 1  # never retried

    @pytest.mark.parametrize("exc_type", [KeyboardInterrupt, SystemExit])
    def test_worker_drain_reraises_interrupts(self, exc_type, tmp_path):
        """The fleet worker loop must hand control-flow exceptions to
        the signal layer instead of classifying them as cell failures."""
        import dataclasses as dc

        from repro.service.campaign import CampaignSpec
        from repro.service.queue import run_worker

        @dc.dataclass(frozen=True)
        class Cell:
            label: str
            lease: tuple | None = None

        def interrupting_cell(cell):
            raise exc_type()

        spec = CampaignSpec(
            study="synthetic", store=str(tmp_path / "q.db"), mode="fleet"
        )
        with pytest.raises(exc_type):
            run_worker(
                spec, "w1",
                cells=([Cell("a")], ["a"], interrupting_cell, "synthetic"),
            )


class TestTimeouts:
    def test_thread_timeout_abandons_and_fails(self):
        policy = RetryPolicy(max_retries=0, timeout_seconds=0.1)
        inner = ThreadPoolExecutor(_sleepy, max_workers=2)
        ex = ResilientExecutor(inner, policy, seed=0)
        try:
            ex.submit(0, {"x": 1, "sleep": 5.0})
            t0 = time.perf_counter()
            outcome = ex.wait_one()
            assert time.perf_counter() - t0 < 2.0
            assert outcome.run.failed
            assert outcome.run.failure_reason.startswith("evaluation_timeout")
            assert ex.stats["timeouts"] == 1
        finally:
            ex.close()

    def test_serial_post_hoc_timeout(self):
        policy = RetryPolicy(max_retries=0, timeout_seconds=0.01)
        ex = ResilientExecutor(SerialExecutor(_sleepy), policy, seed=0)
        ex.submit(0, {"x": 1, "sleep": 0.05})
        outcome = ex.wait_one()
        assert outcome.run.failed
        assert outcome.run.failure_reason.startswith("evaluation_timeout")

    def test_fast_evaluations_unaffected(self):
        policy = RetryPolicy(max_retries=0, timeout_seconds=5.0)
        ex = ResilientExecutor(SerialExecutor(_sleepy), policy, seed=0)
        ex.submit(0, {"x": 4})
        outcome = ex.wait_one()
        assert outcome.value == 4.0
        assert ex.stats["timeouts"] == 0

    def test_process_pool_kill_and_respawn(self):
        policy = RetryPolicy(max_retries=0, timeout_seconds=0.5)
        inner = ProcessPoolExecutor(_sleepy, max_workers=2)
        ex = ResilientExecutor(inner, policy, seed=0)
        try:
            ex.submit(0, {"x": 1, "sleep": 60.0})  # wedged worker
            ex.submit(1, {"x": 2, "sleep": 0.0})
            outcomes = [ex.wait_one(), ex.wait_one()]
            by_id = {o.eval_id: o for o in outcomes}
            assert by_id[0].run.failed
            assert by_id[0].run.failure_reason.startswith("evaluation_timeout")
            assert by_id[1].value == 2.0
            # The respawned pool still evaluates.
            ex.submit(2, {"x": 3, "sleep": 0.0})
            assert ex.wait_one().value == 3.0
        finally:
            ex.close()


class TestWorkerExceptions:
    def test_exception_becomes_failure(self):
        def broken(params):
            raise ZeroDivisionError("bad math")

        policy = RetryPolicy(max_retries=0)
        ex = ResilientExecutor(SerialExecutor(broken), policy, seed=0)
        ex.submit(0, {"x": 1})
        outcome = ex.wait_one()
        assert outcome.run.failed
        assert outcome.run.failure_reason.startswith(
            "worker_exception: ZeroDivisionError"
        )
        assert ex.stats["worker_exceptions"] == 1

    def test_exception_is_transient_and_retried(self):
        calls = []

        def flaky_exc(params):
            calls.append(1)
            if len(calls) == 1:
                raise ValueError("transient glitch")
            return 5.0

        policy = RetryPolicy(max_retries=1, backoff_base_seconds=0.0)
        ex = ResilientExecutor(SerialExecutor(flaky_exc), policy, seed=0)
        ex.submit(0, {"x": 1})
        outcome = ex.wait_one()
        assert outcome.value == 5.0
        assert ex.stats["retries"] == 1


class TestFailedEvaluationRecord:
    def test_duck_typing(self):
        rec = FailedEvaluation(failure_reason="evaluation_timeout: 5s")
        assert rec.failed
        assert rec.throughput_tps == 0.0
        assert dict(rec.details) == {}


class TestFailureAwareBO:
    def _space(self):
        return ParameterSpace([IntParameter("x", 1, 32)])

    def test_failure_imputed_below_worst(self):
        opt = BayesianOptimizer(self._space(), seed=0)
        opt.tell({"x": 4}, 100.0)
        opt.tell({"x": 8}, 200.0)
        opt.tell_failure({"x": 16}, reason="worker_crash: x")
        assert len(opt.y) == 3
        assert opt.y[-1] < 100.0
        assert math.isfinite(opt.y[-1])
        best_config, best_value = opt.best()
        assert best_value == 200.0

    def test_imputation_excludes_prior_imputations(self):
        opt = BayesianOptimizer(self._space(), seed=0)
        opt.tell({"x": 4}, 100.0)
        opt.tell_failure({"x": 8})
        first = opt.y[-1]
        opt.tell_failure({"x": 16})
        # Anchored to the worst *real* value both times — no spiral.
        assert opt.y[-1] == pytest.approx(first)

    def test_failure_before_any_success(self):
        opt = BayesianOptimizer(self._space(), seed=0)
        opt.tell_failure({"x": 4}, reason="worker_crash: x")
        assert opt.y == [0.0]

    def test_telemetry_counts_failures(self):
        opt = BayesianOptimizer(self._space(), seed=0)
        opt.tell({"x": 4}, 100.0)
        opt.tell_failure({"x": 8}, reason="worker_crash: z")
        t = opt.telemetry
        assert t["failed_observations"] == 1
        assert t["last_failure_reason"] == "worker_crash: z"

    def test_state_dict_round_trips_failure_mask(self):
        opt = BayesianOptimizer(self._space(), seed=0)
        opt.tell({"x": 4}, 100.0)
        opt.tell_failure({"x": 8})
        clone = BayesianOptimizer.from_state_dict(opt.state_dict())
        assert clone._failure_mask == [False, True]
        clone.tell_failure({"x": 16})
        assert clone.y[-1] == pytest.approx(opt.y[-1])

    def test_non_finite_tell_becomes_failure(self):
        opt = BayesianOptimizer(self._space(), seed=0)
        opt.tell({"x": 4}, 100.0)
        opt.tell({"x": 8}, float("nan"))
        opt.tell({"x": 16}, float("inf"))
        assert all(math.isfinite(v) for v in opt.y)
        assert opt.telemetry["failed_observations"] == 2
        assert "non_finite" in opt.telemetry["last_failure_reason"]


class TestNonFiniteLoopRegression:
    def test_nan_objective_recorded_as_failed_observation(self):
        values = iter([10.0, float("nan"), 12.0])

        def sometimes_nan(params):
            return next(values)

        space = ParameterSpace([IntParameter("x", 1, 32)])
        opt = BayesianOptimizer(space, seed=0)
        result = TuningLoop(sometimes_nan, opt, max_steps=3).run()
        failed = [o for o in result.observations if o.failed]
        assert len(failed) == 1
        assert failed[0].failure_reason.startswith("non_finite")
        assert failed[0].value == 0.0
        assert all(math.isfinite(v) for v in opt.y)
        counters = result.metadata["obs_metrics"]["counters"]
        assert counters["tuning.failed_evaluations"] == 1


def _crashing_objective():
    topology = make_topology("small")
    cluster = default_cluster()
    optimizer, codec = make_synthetic_optimizer(
        "pla", topology, cluster, SYNTHETIC_BASE_CONFIG, 6, seed=0
    )
    objective = StormObjective(
        topology,
        cluster,
        codec,
        fidelity="analytic",
        faults=FaultPlan(FaultSpec(crash_rate=1.0)),
    )
    return objective, optimizer


class TestFailurePropagationChain:
    """engine failure → Observation.failed → loop counter, everywhere."""

    @pytest.mark.parametrize("kind", ["serial", "thread", "process"])
    def test_chain_across_executors(self, kind):
        objective, optimizer = _crashing_objective()
        executor = None
        if kind == "thread":
            executor = ThreadPoolExecutor(objective, max_workers=2)
        elif kind == "process":
            executor = ProcessPoolExecutor(objective, max_workers=2)
        try:
            loop = TuningLoop(
                objective,
                optimizer,
                max_steps=3,
                strategy_name="pla",
                executor=executor,
                seed=5,
            )
            result = loop.run()
        finally:
            if executor is not None:
                executor.close()
        assert result.observations  # pla's zero-stop rule permits 3 zeros
        assert all(o.failed for o in result.observations)
        assert all(
            o.failure_reason.startswith("worker_crash")
            for o in result.observations
        )
        counters = result.metadata["obs_metrics"]["counters"]
        assert counters["tuning.failed_evaluations"] == len(result.observations)

    def test_loop_resilience_stats_in_metadata(self):
        objective = FlakyObjective(fail_first=1)
        space = ParameterSpace([IntParameter("x", 1, 32)])
        opt = BayesianOptimizer(space, seed=0)
        loop = TuningLoop(
            objective,
            opt,
            max_steps=3,
            seed=9,
            resilience=RetryPolicy(max_retries=2, backoff_base_seconds=0.0),
        )
        result = loop.run()
        stats = result.metadata["resilience"]
        assert stats["retries"] >= 1
        assert not any(o.failed for o in result.observations)
        counters = result.metadata["obs_metrics"]["counters"]
        assert counters["resilience.retries"] == stats["retries"]


class TestReplicatedObjective:
    """Median-of-k replication against silent degradation."""

    class _SeedValued:
        """Deterministic per-seed values; records the seeds it saw."""

        def __init__(self, values):
            self.values = dict(values)
            self.seeds: list[int | None] = []
            self.memoize = False

        def measure(self, params, *, seed=None):
            self.seeds.append(seed)
            value = self.values.get(seed, 100.0)
            if value is None:
                return MeasuredRun.failure("worker_crash: injected")
            return MeasuredRun(throughput_tps=float(value))

    def test_validates_replicates(self):
        with pytest.raises(ValueError):
            ReplicatedObjective(self._SeedValued({}), replicates=0)

    def test_single_replicate_is_passthrough(self):
        inner = self._SeedValued({7: 55.0})
        wrapped = ReplicatedObjective(inner, replicates=1)
        assert wrapped.measure({}, seed=7).throughput_tps == 55.0
        assert inner.seeds == [7]

    def test_median_filters_one_degraded_window(self):
        seed = 42
        reps = [derive_seed(seed, "replicate", i) for i in (1, 2)]
        inner = self._SeedValued({seed: 35.0, reps[0]: 100.0, reps[1]: 100.0})
        wrapped = ReplicatedObjective(inner, replicates=3)
        run = wrapped.measure({}, seed=seed)
        assert run.throughput_tps == 100.0
        assert inner.seeds == [seed, reps[0], reps[1]]

    def test_first_replicate_failure_returned_for_retry_layer(self):
        inner = self._SeedValued({3: None})
        wrapped = ReplicatedObjective(inner, replicates=3)
        run = wrapped.measure({}, seed=3)
        assert run.failed and run.failure_reason.startswith("worker_crash")
        assert inner.seeds == [3]  # no replication of a failed window

    def test_failed_extra_replicates_dropped(self):
        seed = 8
        reps = [derive_seed(seed, "replicate", i) for i in (1, 2)]
        inner = self._SeedValued({seed: 60.0, reps[0]: None, reps[1]: 90.0})
        wrapped = ReplicatedObjective(inner, replicates=3)
        # survivors are 60 and 90; the upper median resists degradation
        assert wrapped.measure({}, seed=seed).throughput_tps == 90.0

    def test_none_seed_passes_through(self):
        inner = self._SeedValued({None: 70.0})
        wrapped = ReplicatedObjective(inner, replicates=2)
        assert wrapped.measure({}, seed=None).throughput_tps == 70.0
        assert inner.seeds == [None, None]

    def test_delegates_attributes(self):
        inner = self._SeedValued({})
        assert ReplicatedObjective(inner).memoize is False
