"""Sundog topology and workload (paper §IV-A, Figure 2, Figure 8)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.storm.analytic import AnalyticPerformanceModel
from repro.storm.cluster import paper_cluster
from repro.sundog import (
    CommonCrawlWorkload,
    sundog_default_config,
    sundog_topology,
)
from repro.sundog.topology import EDGES, WORK_SHARES


class TestStructure:
    def test_figure2_operator_set(self):
        topo = sundog_topology()
        names = set(topo.operators)
        for expected in (
            "HDFS1",
            "Filter",
            "DKVS1",
            "PPS1",
            "PPS2",
            "PPS3",
            "DKVS2",
            "R1",
            "HDFS2",
            "HDFS3",
        ):
            assert expected in names
        assert sum(1 for n in names if n.startswith("CNT")) == 5
        assert sum(1 for n in names if n.startswith("FC")) == 7
        assert sum(1 for n in names if n.startswith("M")) == 3

    def test_single_spout_is_hdfs_reader(self):
        topo = sundog_topology()
        assert topo.sources() == ("HDFS1",)

    def test_sinks_are_outputs(self):
        topo = sundog_topology()
        assert set(topo.sinks()) == {"DKVS1", "HDFS2", "HDFS3"}

    def test_three_phase_ordering(self):
        topo = sundog_topology()
        # Phase 1 before phase 2 before phase 3 along the layering.
        assert topo.layer_of("Filter") < topo.layer_of("FC1")
        assert topo.layer_of("FC1") < topo.layer_of("R1")

    def test_edges_match_declaration(self):
        topo = sundog_topology()
        assert len(topo.edges) == len(EDGES)

    def test_filter_reduces_volume(self):
        topo = sundog_topology()
        assert topo.volume("PPS1") < topo.volume("Filter")

    def test_work_shares_cover_all_operators(self):
        topo = sundog_topology()
        assert set(WORK_SHARES) == set(topo.operators)

    def test_costs_follow_work_shares(self):
        """cost * volume is proportional to the declared work share."""
        topo = sundog_topology()
        share_total = sum(WORK_SHARES.values())
        for name in topo:
            op = topo.operator(name)
            units = op.cost * topo.volume(name)
            expected = WORK_SHARES[name] / share_total * 0.135
            assert units == pytest.approx(expected, rel=1e-6)


class TestCalibrationAnchors:
    """The Figure 8 anchors the reproduction is calibrated against."""

    @pytest.fixture
    def model(self):
        return AnalyticPerformanceModel(sundog_topology(), paper_cluster())

    def _pla_best(self, model):
        """Best uniform-hint throughput under the developers' settings."""
        topo = sundog_topology()
        base = sundog_default_config()
        return max(
            model.evaluate_noise_free(
                base.replace(parallelism_hints={n: h for n in topo})
            ).throughput_tps
            for h in range(1, 61)
        )

    def test_hint_only_tuning_plateaus_near_600k(self, model):
        """Paper §V-D: pla/bo/bo180 on hints alone all land ~0.6M t/s
        with the manual batch settings — the latency floor the batch
        parameters impose cannot be tuned away with parallelism."""
        best = self._pla_best(model)
        assert 0.40e6 < best < 0.75e6

    def test_tuned_batches_reach_about_1_5m(self, model):
        """The paper's tuned bs=265312 / bp=16: ~1.4-1.7M tuples/s."""
        config = sundog_default_config().replace(
            parallelism_hints={n: 11 for n in sundog_topology()},
            batch_size=265_312,
            batch_parallelism=16,
        )
        run = model.evaluate_noise_free(config)
        assert 1.2e6 < run.throughput_tps < 1.9e6

    def test_batch_tuning_gain_matches_paper_factor(self, model):
        """The headline 2.8x gain lands within [2.2, 3.5]."""
        topo = sundog_topology()
        tuned = sundog_default_config().replace(
            parallelism_hints={n: 30 for n in topo},
            batch_size=265_312,
            batch_parallelism=16,
        )
        gain = model.evaluate_noise_free(tuned).throughput_tps / self._pla_best(
            model
        )
        assert 2.2 < gain < 3.5

    def test_network_load_in_figure3_band(self, model):
        config = sundog_default_config().replace(
            parallelism_hints={n: 30 for n in sundog_topology()}
        )
        run = model.evaluate_noise_free(config)
        assert 2.0 < run.network_mb_per_worker_s < 15.0
        assert run.network_mb_per_worker_s < 125.0  # never saturated

    def test_default_config_matches_section_vd(self):
        config = sundog_default_config()
        assert config.batch_size == 50_000
        assert config.batch_parallelism == 5
        assert config.worker_threads == 8
        assert config.receiver_threads == 1
        assert config.effective_ackers() == 80  # one per worker


class TestWorkload:
    def test_selectivity_matches_match_fraction(self, rng):
        workload = CommonCrawlWorkload(match_fraction=0.4)
        measured = workload.measure_selectivity(3000, rng)
        assert measured == pytest.approx(0.4, abs=0.05)

    def test_line_lengths_heavy_tailed(self, rng):
        workload = CommonCrawlWorkload(mean_line_bytes=100.0)
        lengths = workload.line_lengths(4000, rng)
        assert np.mean(lengths) == pytest.approx(100.0, rel=0.15)
        assert lengths.max() > 3 * np.median(lengths)

    def test_matching_lines_contain_terms(self, rng):
        workload = CommonCrawlWorkload(match_fraction=1.0)
        lines = workload.sample_lines(50, rng)
        assert all(workload.matches(line) for line in lines)

    def test_nonmatching_lines_filtered(self, rng):
        workload = CommonCrawlWorkload(match_fraction=0.0)
        lines = workload.sample_lines(50, rng)
        assert not any(workload.matches(line) for line in lines)

    def test_topology_calibrated_from_workload(self, rng):
        workload = CommonCrawlWorkload(match_fraction=0.2)
        topo = sundog_topology(workload, seed=3)
        assert topo.operator("Filter").selectivity == pytest.approx(0.2, abs=0.05)

    def test_validation(self):
        with pytest.raises(ValueError):
            CommonCrawlWorkload(match_fraction=1.5)
        with pytest.raises(ValueError):
            CommonCrawlWorkload(mean_line_bytes=0)
        with pytest.raises(ValueError):
            CommonCrawlWorkload(dictionary=())

    def test_average_tuple_bytes(self, rng):
        workload = CommonCrawlWorkload(mean_line_bytes=80.0)
        avg = workload.average_tuple_bytes(2000, rng)
        assert 40 < avg < 160

    def test_realized_mean_calibrated_to_target(self, rng):
        """Regression: the 8-byte clamp, whole-word overshoot, and term
        insertion used to bias realized lines several percent above
        ``mean_line_bytes``; calibration holds the realized mean within
        2% of the target across the plausible range."""
        for target in (40.0, 70.0, 160.0):
            workload = CommonCrawlWorkload(mean_line_bytes=target)
            avg = workload.average_tuple_bytes(20_000, rng)
            assert avg == pytest.approx(target, rel=0.02)
