"""Additional report-rendering coverage."""

from __future__ import annotations

from repro.experiments.figures import FigureData
from repro.experiments.report import (
    _slug,
    render_bars,
    render_figure,
    render_series,
    render_table,
)


class TestSlug:
    def test_basic(self):
        assert _slug("Figure 8a") == "figure_8a"
        assert _slug("Table II") == "table_ii"
        assert _slug("  odd--chars!! ") == "odd_chars"


class TestRenderTable:
    def test_alignment_with_mixed_widths(self):
        rows = [
            {"col": "x", "value": 1},
            {"col": "longer-label", "value": 123456},
        ]
        text = render_table(rows)
        lines = text.splitlines()
        # Header, separator, two data rows.
        assert len(lines) == 4
        assert len(set(len(line) for line in lines)) == 1  # aligned

    def test_missing_keys_render_blank(self):
        rows = [{"a": 1, "b": 2}, {"a": 3}]
        text = render_table(rows)
        assert "3" in text


class TestRenderBars:
    def test_zero_values(self):
        rows = [{"n": "a", "v": 0.0}, {"n": "b", "v": 0.0}]
        text = render_bars(rows, value_key="v", label_keys=["n"])
        assert "a" in text and "b" in text

    def test_empty(self):
        assert render_bars([], value_key="v", label_keys=["n"]) == "(no rows)"


class TestRenderSeries:
    def test_constant_series(self):
        text = render_series({"flat": ([1.0, 2.0, 3.0], [5.0, 5.0, 5.0])})
        assert "flat" in text

    def test_single_point(self):
        text = render_series({"dot": ([1.0], [2.0])})
        assert "dot" in text

    def test_many_series_glyph_cycling(self):
        series = {
            f"s{i}": ([1.0, 2.0], [float(i), float(i + 1)]) for i in range(10)
        }
        text = render_series(series)
        for i in range(10):
            assert f"s{i}" in text

    def test_empty(self):
        assert render_series({}) == "(no series)"


class TestRenderFigure:
    def test_notes_included(self):
        data = FigureData("Figure Z", "title", rows=[{"a": 1}], notes=["hello"])
        text = render_figure(data)
        assert "note: hello" in text

    def test_rows_and_series_both_rendered(self):
        data = FigureData(
            "Figure Z",
            "title",
            rows=[{"a": 1}],
            series={"s": ([1.0, 2.0], [3.0, 4.0])},
        )
        text = render_figure(data)
        assert "a" in text and "s" in text
