"""Campaign specs, worker-budget splitting, and the runner facade."""

from __future__ import annotations

import pytest

from repro.experiments.presets import Budget
from repro.core.resilience import RetryPolicy
from repro.experiments.runner import SyntheticStudy
from repro.service.campaign import (
    CampaignRunner,
    CampaignSpec,
    split_worker_budget,
    store_cell_label,
)
from repro.topology_gen.suite import CONDITIONS


class TestSplitWorkerBudget:
    def test_workers_zero_raises(self):
        with pytest.raises(ValueError, match="workers"):
            split_worker_budget(0, 4)

    def test_workers_negative_raises(self):
        with pytest.raises(ValueError, match="workers"):
            split_worker_budget(-3, 4)

    def test_workers_one_is_fully_serial(self):
        assert split_worker_budget(1, 24) == (1, 1)
        assert split_worker_budget(1, 1) == (1, 1)

    def test_more_cells_than_workers_spends_budget_on_processes(self):
        assert split_worker_budget(8, 24) == (8, 1)

    def test_fewer_cells_than_workers_spends_remainder_in_loop(self):
        assert split_worker_budget(8, 2) == (2, 4)

    def test_zero_cells_still_yields_one_job(self):
        n_jobs, loop_workers = split_worker_budget(4, 0)
        assert n_jobs == 1
        assert loop_workers == 4


class TestCampaignSpec:
    def test_unknown_study_kind_is_rejected(self):
        with pytest.raises(ValueError, match="study"):
            CampaignSpec(study="mystery")

    def test_synthetic_defaults_cover_the_paper_grid(self):
        spec = CampaignSpec.synthetic()
        assert spec.conditions == CONDITIONS
        assert spec.n_cells == (
            len(spec.conditions) * len(spec.sizes) * len(spec.strategies)
        )

    def test_sundog_defaults_cover_figure8_arms(self):
        spec = CampaignSpec.sundog()
        assert spec.n_cells == len(spec.arms) > 0

    def test_round_trip_through_dict(self):
        spec = CampaignSpec.synthetic(
            budget=Budget(steps=4, steps_extended=6, baseline_steps=8, passes=1, repeat_best=2),
            seed=3,
            workers=4,
            store="ckpts",
            resilience=RetryPolicy(max_retries=1, breaker_threshold=2),
        )
        clone = CampaignSpec.from_dict(spec.as_dict())
        assert clone == spec
        assert clone.resilience == spec.resilience
        assert clone.conditions == spec.conditions

    def test_dict_form_is_json_plain(self):
        import json

        spec = CampaignSpec.sundog(resilience=RetryPolicy())
        encoded = json.dumps(spec.as_dict(), sort_keys=True)
        assert CampaignSpec.from_dict(json.loads(encoded)) == spec

    def test_worker_split_prefers_explicit_workers(self):
        spec = CampaignSpec.synthetic(workers=2)
        assert spec.worker_split() == split_worker_budget(2, spec.n_cells)
        spec = CampaignSpec.synthetic(n_jobs=3)
        assert spec.worker_split() == (3, 1)


class TestCampaignRunner:
    def _tiny_spec(self, **kwargs):
        return CampaignSpec.synthetic(
            budget=Budget(steps=4, steps_extended=6, baseline_steps=8, passes=1, repeat_best=2),
            conditions=CONDITIONS[:1],
            sizes=("small",),
            strategies=("pla",),
            **kwargs,
        )

    def test_cell_specs_match_the_grid(self):
        runner = CampaignRunner(self._tiny_spec())
        specs, labels, _ = runner.cell_specs()
        assert len(specs) == len(labels) == 1
        assert labels[0] == f"{CONDITIONS[0].label}/small/pla"

    def test_run_matches_study_facade(self, tmp_path):
        spec = self._tiny_spec(seed=5)
        direct = CampaignRunner(spec).run()
        study = SyntheticStudy(
            budget=Budget(steps=4, steps_extended=6, baseline_steps=8, passes=1, repeat_best=2),
            conditions=CONDITIONS[:1],
            sizes=("small",),
            strategies=("pla",),
            seed=5,
        )
        via_study = study.run().results
        (key,) = via_study.keys()
        label = f"{key[0].label}/{key[1]}/{key[2]}"
        assert [r.best_value for r in direct[label]] == [
            r.best_value for r in via_study[key]
        ]

    def test_store_backed_campaign_skips_finished_cells(self, tmp_path):
        spec = self._tiny_spec(store=str(tmp_path / "ckpts"))
        first = CampaignRunner(spec).run()
        again = CampaignRunner(spec).run()
        (label,) = first.keys()
        assert [r.best_value for r in first[label]] == [
            r.best_value for r in again[label]
        ]


class TestFleetMode:
    def _tiny(self, **kwargs):
        return CampaignSpec.synthetic(
            budget=Budget(
                steps=4, steps_extended=6, baseline_steps=8, passes=1,
                repeat_best=2,
            ),
            conditions=CONDITIONS[:1],
            sizes=("small",),
            strategies=("pla", "bo"),
            **kwargs,
        )

    def test_fleet_requires_a_store(self):
        with pytest.raises(ValueError, match="store"):
            CampaignSpec.synthetic(mode="fleet")

    def test_unknown_mode_is_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            CampaignSpec.synthetic(mode="swarm")

    @pytest.mark.parametrize(
        "kwargs",
        [{"lease_ttl_seconds": 0.0}, {"max_claim_attempts": 0}],
    )
    def test_lease_knobs_are_validated(self, kwargs):
        with pytest.raises(ValueError):
            CampaignSpec.synthetic(mode="fleet", store="ckpts", **kwargs)

    def test_fleet_fields_round_trip_through_dict(self):
        spec = self._tiny(
            store="ckpts", mode="fleet", workers=3,
            lease_ttl_seconds=7.5, max_claim_attempts=9,
        )
        clone = CampaignSpec.from_dict(spec.as_dict())
        assert clone == spec
        assert (clone.mode, clone.lease_ttl_seconds) == ("fleet", 7.5)
        assert clone.max_claim_attempts == 9

    def test_dicts_without_fleet_fields_default_to_pool(self):
        data = self._tiny().as_dict()
        for key in ("mode", "lease_ttl_seconds", "max_claim_attempts"):
            data.pop(key)
        assert CampaignSpec.from_dict(data).mode == "pool"

    def test_fleet_workers_run_serial_loops(self):
        spec = self._tiny(store="ckpts", mode="fleet", workers=4)
        assert spec.worker_split() == (4, 1)

    def test_store_cell_label_maps_sundog(self):
        assert store_cell_label("synthetic", "a/small/bo") == "a/small/bo"
        assert store_cell_label("sundog", "bo.h") == "sundog_bo.h"

    def test_fleet_run_matches_a_serial_pool_run(self, tmp_path):
        from repro.core.checkpoint import canonical_history

        fleet_spec = self._tiny(
            seed=2, store=str(tmp_path / "fleet"), mode="fleet", workers=2,
            lease_ttl_seconds=15.0,
        )
        pool_spec = self._tiny(
            seed=2, store=str(tmp_path / "pool"), mode="pool", n_jobs=1
        )
        fleet = CampaignRunner(fleet_spec).run()
        pool = CampaignRunner(pool_spec).run()
        assert fleet.keys() == pool.keys()
        for label in pool:
            assert [
                canonical_history(r.observations) for r in fleet[label]
            ] == [canonical_history(r.observations) for r in pool[label]]
        from repro.store import open_store

        with open_store(fleet_spec.store) as store:
            statuses = {
                lease.cell: lease.status
                for lease in store.leases("synthetic")
            }
        assert set(statuses.values()) == {"committed"}
