"""Cross-cell packed evaluation: bit-compat, padding edges, broker, JIT.

:class:`~repro.storm.packed.PackedBatchModel` is required to be
*bit-compatible* per cell with each cell's own
:class:`~repro.storm.analytic_batch.AnalyticBatchModel` — equal
:class:`MeasuredRun` dataclasses and max absolute throughput deviation
exactly 0 — no matter how heterogeneous the cells co-batched into one
dispatch are.  These tests pin that contract (property-tested over all
bundled topologies and conditions), the padded-mask edge cases
(single-operator cells, no network edges, memory caps exactly at the
boundary, mixed config-space dimensions), the
:class:`~repro.core.executor.CrossCellBroker` runtime (equality with a
serial executor, ticket attribution, non-packable fallback), the
packed campaign mode, the optional numba kernel (parity when present,
graceful fallback when absent), and the screener model-reuse
regression.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import obs
from repro.core.executor import CrossCellBroker, SerialExecutor
from repro.experiments.presets import SYNTHETIC_BASE_CONFIG, default_cluster
from repro.experiments.runner import make_synthetic_optimizer
from repro.storm.analytic import CalibrationParams
from repro.storm.analytic_batch import (
    AnalyticBatchModel,
    _screener_model,
    make_analytic_screener,
)
from repro.storm.cluster import paper_cluster, small_test_cluster
from repro.storm.config import TopologyConfig
from repro.storm.noise import GaussianNoise
from repro.storm.objective import StormObjective
from repro.storm.packed import (
    PACKED_ENGINES,
    CellPack,
    PackedBatchModel,
    PackedTopologySet,
    _stage_layer_core,
    jit_available,
    pack_cells,
)
from repro.storm.schedule import DiurnalSchedule
from repro.storm.topology import TopologyBuilder
from repro.sundog import sundog_topology
from repro.topology_gen.suite import CONDITIONS, make_topology


def random_config(topology, rng, *, n_workers: int, hint_max: int = 33):
    """One rng-driven configuration spanning feasible and infeasible."""
    return TopologyConfig(
        parallelism_hints={
            name: int(rng.integers(1, hint_max)) for name in topology
        },
        max_tasks=(
            int(rng.integers(len(list(topology)), 400))
            if rng.random() < 0.3
            else None
        ),
        batch_size=int(rng.integers(10, 50_001)),
        batch_parallelism=int(rng.integers(1, 65)),
        worker_threads=int(rng.integers(1, 17)),
        receiver_threads=int(rng.integers(1, 9)),
        ackers=int(rng.integers(0, 17)),
        num_workers=n_workers,
    )


def solo_topology():
    """A single-operator topology: one spout, zero network edges."""
    return TopologyBuilder("solo").spout("src", cost=3.0).build()


#: Every bundled deployment shape as (label, topology, cluster,
#: calibration): all sizes x conditions, Sundog, and a single-operator
#: edgeless cell — all packed into ONE set in the bit-compat sweep.
def _all_cells():
    cells = []
    for size in ("small", "medium", "large"):
        for condition in CONDITIONS:
            cells.append(
                (
                    f"{size}/{condition.label}",
                    make_topology(size, condition),
                    paper_cluster(),
                    None,
                )
            )
    cells.append(("sundog", sundog_topology(), paper_cluster(), None))
    cells.append(("solo", solo_topology(), small_test_cluster(), None))
    return cells


ALL_CELLS = _all_cells()


class TestPackedBitCompat:
    """Tentpole contract: one dispatch == every cell's own engine."""

    def test_whole_grid_single_dispatch_is_bit_identical(self):
        """All bundled cells, interleaved rows, one evaluate_cells call."""
        packed = PackedBatchModel(
            pack_cells((t, cl, cal) for _, t, cl, cal in ALL_CELLS)
        )
        per_cell = [
            AnalyticBatchModel(t, cl, cal) for _, t, cl, cal in ALL_CELLS
        ]
        rng = np.random.default_rng(42)
        n_per_cell = 8
        cell_indices: list[int] = []
        configs: list[TopologyConfig] = []
        # Interleave cells so consecutive rows mix dimensions.
        for j in range(n_per_cell):
            for m, (_, topology, cluster, _) in enumerate(ALL_CELLS):
                cell_indices.append(m)
                configs.append(
                    random_config(topology, rng, n_workers=cluster.n_machines)
                )
        evaluation = packed.evaluate_cells(cell_indices, configs)
        fused_runs = evaluation.runs()

        max_dev = 0.0
        mismatched = 0
        for m in range(len(ALL_CELLS)):
            rows = [i for i, c in enumerate(cell_indices) if c == m]
            reference = per_cell[m].evaluate([configs[i] for i in rows])
            for k, i in enumerate(rows):
                if fused_runs[i] != reference.run(k):
                    mismatched += 1
                max_dev = max(
                    max_dev,
                    abs(
                        float(evaluation.throughput_tps[i])
                        - float(reference.throughput_tps[k])
                    ),
                )
        assert mismatched == 0
        assert max_dev == 0.0
        # The sweep must exercise successes and several failure classes.
        assert int((~evaluation.failed).sum()) > 0
        reasons = {
            evaluation.failure_reason(i).split(":")[0]
            for i in range(len(fused_runs))
            if evaluation.failed[i]
        }
        assert len(reasons) >= 2, reasons

        # Random hints stay under the 4000-executor paper-cluster cap;
        # pin the capacity-failure branch with an explicit oversize row.
        big = next(
            m for m, case in enumerate(ALL_CELLS) if case[0].startswith("large/")
        )
        oversize = TopologyConfig(
            parallelism_hints={name: 500 for name in ALL_CELLS[big][1]},
            num_workers=80,
        )
        capacity = packed.evaluate_cells([big], [oversize])
        assert bool(capacity.failed_capacity[0])
        assert capacity.runs() == per_cell[big].evaluate([oversize]).runs()

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=60, deadline=None)
    def test_property_random_rows_match_per_cell_engine(self, seed):
        """Hypothesis sweep over a mixed-dimension three-cell pack."""
        packed, per_cell, cases = _property_pack()
        rng = np.random.default_rng(seed)
        m = seed % len(cases)
        topology, cluster = cases[m]
        config = random_config(topology, rng, n_workers=cluster.n_machines)
        evaluation = packed.evaluate_cells([m], [config])
        (fused,) = evaluation.runs()
        reference = per_cell[m].evaluate([config]).run(0)
        assert fused == reference
        assert float(evaluation.throughput_tps[0]) == reference.throughput_tps

    def test_evaluate_cell_wrapper_matches_evaluate_cells(self):
        packed, per_cell, cases = _property_pack()
        rng = np.random.default_rng(7)
        configs = [
            random_config(cases[1][0], rng, n_workers=cases[1][1].n_machines)
            for _ in range(5)
        ]
        wrapper = packed.evaluate_cell(1, configs)
        direct = packed.evaluate_cells([1] * 5, configs)
        assert wrapper.runs() == direct.runs()
        assert wrapper.runs() == per_cell[1].evaluate(configs).runs()

    def test_empty_batch(self):
        packed, _, _ = _property_pack()
        evaluation = packed.evaluate_cells([], [])
        assert len(evaluation) == 0
        assert evaluation.runs() == []

    def test_length_mismatches_rejected(self):
        packed, _, cases = _property_pack()
        config = TopologyConfig()
        with pytest.raises(ValueError, match="cell indices"):
            packed.evaluate_cells([0, 1], [config])
        with pytest.raises(ValueError, match="workload times"):
            packed.evaluate_cells([0], [config], workload_times_s=[0.0, 1.0])

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError, match="packed engine"):
            PackedBatchModel(PackedTopologySet(), engine="warp")
        assert PACKED_ENGINES == ("packed", "packed-jit")

    def test_env_var_selects_jit_engine(self, monkeypatch):
        monkeypatch.setenv("REPRO_JIT", "1")
        assert PackedBatchModel(PackedTopologySet()).engine == "packed-jit"
        monkeypatch.delenv("REPRO_JIT")
        assert PackedBatchModel(PackedTopologySet()).engine == "packed"


_PROPERTY_STATE: list[tuple] = []


def _property_pack():
    """One shared mixed-dimension pack so hypothesis examples reuse it."""
    if not _PROPERTY_STATE:
        cases = [
            (make_topology("medium", CONDITIONS[3]), paper_cluster()),
            (make_topology("small"), paper_cluster()),
            (solo_topology(), small_test_cluster()),
        ]
        packed = PackedBatchModel(pack_cells(cases))
        per_cell = [AnalyticBatchModel(t, cl) for t, cl in cases]
        _PROPERTY_STATE.append((packed, per_cell, cases))
    return _PROPERTY_STATE[0]


class TestPaddingEdgeCases:
    """Satellite: masked padding stays exact at every awkward boundary."""

    def test_single_operator_cell_alone_in_a_set(self):
        """E_max == 0 and S_max == 1: the no-edges branches engage."""
        topology = solo_topology()
        cluster = small_test_cluster()
        packed = PackedBatchModel(pack_cells([(topology, cluster)]))
        reference = AnalyticBatchModel(topology, cluster)
        rng = np.random.default_rng(3)
        configs = [
            random_config(topology, rng, n_workers=cluster.n_machines)
            for _ in range(20)
        ]
        assert packed.evaluate_cell(0, configs).runs() == reference.evaluate(
            configs
        ).runs()

    def test_single_operator_cell_padded_against_a_large_cell(self):
        """The solo cell's operator/edge/source rows are mostly padding."""
        solo = solo_topology()
        large = make_topology("large", CONDITIONS[3])
        cluster = paper_cluster()
        packed = PackedBatchModel(
            pack_cells([(solo, small_test_cluster()), (large, cluster)])
        )
        solo_ref = AnalyticBatchModel(solo, small_test_cluster())
        large_ref = AnalyticBatchModel(large, cluster)
        rng = np.random.default_rng(11)
        solo_cfgs = [
            random_config(solo, rng, n_workers=4) for _ in range(6)
        ]
        large_cfgs = [
            random_config(large, rng, n_workers=80) for _ in range(6)
        ]
        rows = packed.evaluate_cells(
            [0, 1] * 6,
            [c for pair in zip(solo_cfgs, large_cfgs) for c in pair],
        ).runs()
        assert rows[0::2] == solo_ref.evaluate(solo_cfgs).runs()
        assert rows[1::2] == large_ref.evaluate(large_cfgs).runs()

    def test_memory_cap_exactly_at_the_boundary(self):
        """budget == task_mb + data_mb: the strict `>` check must agree.

        ``small_test_cluster`` machines carry 4096 MB (a power of two),
        so ``usable_memory_fraction = usage / 4096`` makes the budget
        *exactly* equal to the usage in IEEE-754 — the packed gather of
        per-cell budgets must reproduce the same comparison bitwise.
        """
        topology = make_topology("small")
        cluster = small_test_cluster()
        config = TopologyConfig(
            parallelism_hints={name: 4 for name in topology},
            batch_size=5_000,
            batch_parallelism=2,
            worker_threads=4,
            receiver_threads=2,
            ackers=4,
            num_workers=cluster.n_machines,
        )
        probe_cal = CalibrationParams(
            batch_timeout_ms=1e12, per_task_memory_mb=64.0
        )
        probe = AnalyticBatchModel(topology, cluster, probe_cal).evaluate(
            [config]
        )
        usage = float(probe._task_mb[0] + probe._data_mb[0])
        assert 0.0 < usage <= 4096.0

        at_boundary = CalibrationParams(
            batch_timeout_ms=1e12,
            per_task_memory_mb=64.0,
            usable_memory_fraction=usage / 4096.0,
        )
        below = CalibrationParams(
            batch_timeout_ms=1e12,
            per_task_memory_mb=64.0,
            usable_memory_fraction=float(np.nextafter(usage, 0.0)) / 4096.0,
        )
        for cal, expect_failed in ((at_boundary, False), (below, True)):
            reference = AnalyticBatchModel(topology, cluster, cal)
            packed = PackedBatchModel(
                pack_cells(
                    [(topology, cluster, cal), (make_topology("medium"), paper_cluster())]
                )
            )
            evaluation = packed.evaluate_cell(0, [config])
            assert bool(evaluation.failed_memory[0]) is expect_failed
            assert evaluation.runs() == reference.evaluate([config]).runs()

    def test_mixed_dimension_config_spaces_in_one_dispatch(self):
        """Rows with different hint-dict shapes co-batch exactly."""
        small = make_topology("small")
        large = make_topology("large")
        solo = solo_topology()
        assert len(list(small)) != len(list(large)) != len(list(solo))
        cluster = paper_cluster()
        packed = PackedBatchModel(
            pack_cells(
                [(small, cluster), (large, cluster), (solo, small_test_cluster())]
            )
        )
        rng = np.random.default_rng(23)
        tuples = []
        for m, topology in enumerate((small, large, solo)):
            n_workers = 4 if topology is solo else 80
            for _ in range(4):
                tuples.append(
                    (m, random_config(topology, rng, n_workers=n_workers))
                )
        rng.shuffle(tuples)
        evaluation = packed.evaluate_cells(
            [m for m, _ in tuples], [c for _, c in tuples]
        )
        references = [
            AnalyticBatchModel(t, cl)
            for t, cl in (
                (small, cluster),
                (large, cluster),
                (solo, small_test_cluster()),
            )
        ]
        for i, (m, config) in enumerate(tuples):
            assert evaluation.run(i) == references[m].evaluate([config]).run(0)

    def test_workload_schedules_are_per_row(self):
        """Scheduled and unscheduled cells co-batch; times apply per row."""
        scheduled_topo = make_topology("small", CONDITIONS[1])
        plain_topo = make_topology("small")
        cluster = paper_cluster()
        schedule = DiurnalSchedule(amplitude=0.4, period_s=3600.0, skew=0.2)
        packed = PackedBatchModel(
            pack_cells(
                [
                    (scheduled_topo, cluster, None, schedule),
                    (plain_topo, cluster),
                ]
            )
        )
        sched_ref = AnalyticBatchModel(scheduled_topo, cluster, None, schedule)
        plain_ref = AnalyticBatchModel(plain_topo, cluster)
        rng = np.random.default_rng(5)
        configs = [
            random_config(scheduled_topo, rng, n_workers=80),
            random_config(plain_topo, rng, n_workers=80),
            random_config(scheduled_topo, rng, n_workers=80),
        ]
        evaluation = packed.evaluate_cells(
            [0, 1, 0], configs, workload_times_s=[600.0, 123.0, 2400.0]
        )
        assert evaluation.run(0) == sched_ref.evaluate(
            [configs[0]], workload_time_s=600.0
        ).run(0)
        assert evaluation.run(1) == plain_ref.evaluate([configs[1]]).run(0)
        assert evaluation.run(2) == sched_ref.evaluate(
            [configs[2]], workload_time_s=2400.0
        ).run(0)


class TestGroupingTables:
    """The fused combo table grows geometrically and is rebuilt rarely."""

    def test_table_constructions_grow_logarithmically(self):
        topology = make_topology("medium", CONDITIONS[3])
        cluster = paper_cluster()
        pset = pack_cells([(topology, cluster)])
        packed = PackedBatchModel(pset)

        def cfg(hint):
            return TopologyConfig(
                parallelism_hints={name: hint for name in topology},
                num_workers=cluster.n_machines,
            )

        packed.evaluate_cell(0, [cfg(4)])
        assert pset.table_constructions == 1
        packed.evaluate_cell(0, [cfg(3)])  # within the built range
        assert pset.table_constructions == 1
        packed.evaluate_cell(0, [cfg(64)])  # grows, at least doubling
        assert pset.table_constructions == 2
        packed.evaluate_cell(0, [cfg(65)])  # one past: doubles to >= 128
        assert pset.table_constructions == 3
        packed.evaluate_cell(0, [cfg(120)])  # covered by the 2x growth
        assert pset.table_constructions == 3

    def test_adding_a_cell_reassembles_but_reuses_combos(self):
        pset = pack_cells([(make_topology("small"), paper_cluster())])
        packed = PackedBatchModel(pset)
        cfgs = [TopologyConfig(num_workers=80)]
        first = packed.evaluate_cell(0, cfgs).runs()
        m = pset.add(CellPack(make_topology("small", CONDITIONS[2]), paper_cluster()))
        again = packed.evaluate_cell(0, cfgs).runs()
        assert first == again
        reference = AnalyticBatchModel(
            make_topology("small", CONDITIONS[2]), paper_cluster()
        )
        assert packed.evaluate_cell(m, cfgs).runs() == reference.evaluate(cfgs).runs()


class TestJitKernel:
    """The optional numba core and its plain-Python twin."""

    def test_plain_python_kernel_matches_numpy_branch(self):
        """The undecorated kernel is parity-tested even without numba."""
        cases = [
            (make_topology("medium", CONDITIONS[3]), paper_cluster()),
            (solo_topology(), small_test_cluster()),
        ]
        vectorized = PackedBatchModel(pack_cells(cases), engine="packed")
        kerneled = PackedBatchModel(pack_cells(cases), engine="packed")
        kerneled._kernel = _stage_layer_core  # force the kernel branch
        rng = np.random.default_rng(17)
        cell_indices = []
        configs = []
        for m, (topology, cluster) in enumerate(cases):
            for _ in range(10):
                cell_indices.append(m)
                configs.append(
                    random_config(topology, rng, n_workers=cluster.n_machines)
                )
        a = vectorized.evaluate_cells(cell_indices, configs)
        b = kerneled.evaluate_cells(cell_indices, configs)
        assert a.runs() == b.runs()
        assert np.max(np.abs(a.throughput_tps - b.throughput_tps)) == 0.0

    @pytest.mark.skipif(not jit_available(), reason="numba not installed")
    def test_compiled_kernel_parity(self):
        cases = [
            (make_topology(size, condition), paper_cluster())
            for size in ("small", "medium")
            for condition in CONDITIONS
        ]
        plain = PackedBatchModel(pack_cells(cases), engine="packed")
        jitted = PackedBatchModel(pack_cells(cases), engine="packed-jit")
        assert jitted.jit_active
        rng = np.random.default_rng(29)
        cell_indices = []
        configs = []
        for m, (topology, cluster) in enumerate(cases):
            for _ in range(6):
                cell_indices.append(m)
                configs.append(
                    random_config(topology, rng, n_workers=cluster.n_machines)
                )
        a = plain.evaluate_cells(cell_indices, configs)
        b = jitted.evaluate_cells(cell_indices, configs)
        assert a.runs() == b.runs()
        assert np.max(np.abs(a.throughput_tps - b.throughput_tps)) == 0.0

    @pytest.mark.skipif(jit_available(), reason="numba is installed")
    def test_graceful_fallback_without_numba(self, tmp_path):
        with obs.session(jsonl_path=tmp_path / "t.jsonl") as ctx:
            packed = PackedBatchModel(
                pack_cells([(make_topology("small"), paper_cluster())]),
                engine="packed-jit",
            )
            assert not packed.jit_active
            assert ctx.metrics.counter("pack.jit_fallbacks").value == 1
        reference = AnalyticBatchModel(make_topology("small"), paper_cluster())
        cfgs = [TopologyConfig(num_workers=80)]
        assert packed.evaluate_cell(0, cfgs).runs() == reference.evaluate(cfgs).runs()


def _packable_objective(topology_size="small", condition=None, **kwargs):
    topology = (
        make_topology(topology_size, condition)
        if condition is not None
        else make_topology(topology_size)
    )
    cluster = default_cluster()
    _, codec = make_synthetic_optimizer(
        "pla", topology, cluster, SYNTHETIC_BASE_CONFIG, 8, seed=0
    )
    return StormObjective(topology, cluster, codec, fidelity="analytic", **kwargs)


class TestCrossCellBroker:
    """The runtime that feeds the packed model from many tuning loops."""

    def test_fused_outcomes_match_a_serial_executor(self, tmp_path):
        params = [{"uniform_hint": h} for h in (2, 5, 9, 14)]
        seeds = [101, 202, 303, 404]

        def collect_serial(objective):
            executor = SerialExecutor(objective)
            for eid, (p, s) in enumerate(zip(params, seeds)):
                executor.submit(eid, p, seed=s)
            return [executor.wait_one() for _ in params]

        serial_a = collect_serial(
            _packable_objective("small", noise=GaussianNoise(0.1), seed=5)
        )
        serial_b = collect_serial(
            _packable_objective("medium", CONDITIONS[3], noise=GaussianNoise(0.1), seed=5)
        )

        with obs.session(jsonl_path=tmp_path / "t.jsonl") as ctx:
            broker = CrossCellBroker()
            exec_a = broker.executor(
                _packable_objective("small", noise=GaussianNoise(0.1), seed=5)
            )
            exec_b = broker.executor(
                _packable_objective(
                    "medium", CONDITIONS[3], noise=GaussianNoise(0.1), seed=5
                )
            )
            for eid, (p, s) in enumerate(zip(params, seeds)):
                exec_a.submit(eid, p, seed=s)
                exec_b.submit(eid, p, seed=s)
            fused_a = [exec_a.wait_one() for _ in params]
            fused_b = [exec_b.wait_one() for _ in params]
            exec_a.close()
            exec_b.close()
            # Both cells' rows went through fused packed dispatches.
            assert ctx.metrics.counter("pack.dispatches").value >= 1
            assert ctx.metrics.counter("dispatch.flushes").value >= 1
            assert ctx.metrics.counter("dispatch.serial_replays").value == 0
            assert ctx.metrics.histogram("dispatch.cells").max == 2.0

        for fused, serial in ((fused_a, serial_a), (fused_b, serial_b)):
            assert [(o.eval_id, o.value, o.run) for o in fused] == [
                (o.eval_id, o.value, o.run) for o in serial
            ]

    def test_non_packable_objective_falls_back(self):
        def objective(config):
            return float(config["x"]) * 2.0

        broker = CrossCellBroker(linger_s=0.0)
        packable = broker.executor(_packable_objective("small"))
        plain = broker.executor(objective)
        plain.submit(0, {"x": 3.0})
        packable.submit(0, {"uniform_hint": 4})
        assert plain.wait_one().value == 6.0
        reference = _packable_objective("small").measure({"uniform_hint": 4})
        assert packable.wait_one().run == reference
        plain.close()
        packable.close()

    def test_failures_carry_ticket_attribution(self):
        def objective(config):
            if config.get("boom"):
                raise RuntimeError("boom")
            return float(config["x"])

        broker = CrossCellBroker(linger_s=0.0)
        executor = broker.executor(objective)
        executor.submit(7, {"x": 1.0})
        executor.submit(8, {"x": 0.0, "boom": True})
        outcomes = []
        errors = []
        for _ in range(2):
            try:
                outcomes.append(executor.wait_one())
            except RuntimeError as exc:
                errors.append(exc)
        executor.close()
        assert [o.eval_id for o in outcomes] == [7]
        (error,) = errors
        assert error._repro_ticket.eval_id == 8

    def test_batch_failure_replays_serially_with_equal_values(self, tmp_path):
        params = [{"uniform_hint": h} for h in (3, 6, 9)]
        seeds = [1, 2, 3]
        reference = _packable_objective("small", noise=GaussianNoise(0.1), seed=4)
        expected = [
            reference.measure(p, seed=s) for p, s in zip(params, seeds)
        ]

        broken = _packable_objective("small", noise=GaussianNoise(0.1), seed=4)

        def exploding_batch(*args, **kwargs):
            raise RuntimeError("batch path down")

        broken.measure_batch = exploding_batch
        with obs.session(jsonl_path=tmp_path / "t.jsonl") as ctx:
            broker = CrossCellBroker(linger_s=0.0)
            executor = broker.executor(broken)
            for eid, (p, s) in enumerate(zip(params, seeds)):
                executor.submit(eid, p, seed=s)
            outcomes = [executor.wait_one() for _ in params]
            executor.close()
            assert ctx.metrics.counter("dispatch.serial_replays").value >= 1
        assert [o.run for o in sorted(outcomes, key=lambda o: o.eval_id)] == expected

    def test_closed_executor_rejects_submissions(self):
        broker = CrossCellBroker()
        executor = broker.executor(_packable_objective("small"))
        executor.close()
        with pytest.raises(RuntimeError, match="closed"):
            executor.submit(0, {"uniform_hint": 2})


class TestPackedCampaignMode:
    """CampaignSpec(mode='packed'): whole studies through the broker."""

    def _spec(self, **kwargs):
        from repro.experiments.presets import Budget
        from repro.service.campaign import CampaignSpec

        return CampaignSpec.synthetic(
            budget=Budget(
                steps=4, steps_extended=6, baseline_steps=8, passes=1,
                repeat_best=2,
            ),
            conditions=CONDITIONS[:2],
            sizes=("small",),
            strategies=("pla", "bo"),
            **kwargs,
        )

    def test_packed_requires_analytic_fidelity(self):
        with pytest.raises(ValueError, match="analytic"):
            self._spec(mode="packed", fidelity="des")

    def test_mode_round_trips_and_runs_serial_loops(self):
        from repro.service.campaign import CampaignSpec

        spec = self._spec(mode="packed")
        assert CampaignSpec.from_dict(spec.as_dict()) == spec
        assert spec.worker_split() == (1, 1)

    def test_packed_run_matches_a_seeded_pool_run(self, tmp_path):
        from repro.core.checkpoint import canonical_history
        from repro.service.campaign import CampaignRunner

        packed = CampaignRunner(
            self._spec(seed=2, store=str(tmp_path / "packed"), mode="packed")
        ).run()
        pool = CampaignRunner(
            self._spec(seed=2, store=str(tmp_path / "pool"), mode="pool", n_jobs=1)
        ).run()
        assert packed.keys() == pool.keys()
        for label in pool:
            assert [
                canonical_history(r.observations) for r in packed[label]
            ] == [canonical_history(r.observations) for r in pool[label]]


class TestScreenerModelReuse:
    """Satellite regression: one AnalyticBatchModel per deployment."""

    def test_screeners_share_one_model_and_its_tables(self):
        topology = make_topology("small")
        cluster = default_cluster()
        _, codec = make_synthetic_optimizer(
            "bo", topology, cluster, SYNTHETIC_BASE_CONFIG, 8, seed=0
        )
        model = _screener_model(topology, cluster, None)
        assert _screener_model(topology, cluster, None) is model

        screen_one = make_analytic_screener(codec, topology, cluster)
        rng = np.random.default_rng(0)
        candidates = rng.random((16, codec.space.dim))
        screen_one(candidates)
        constructions = model.table_constructions
        assert constructions >= 1

        # A second screener for the same deployment must not rebuild
        # the grouping tables — same shared model, same table count.
        screen_two = make_analytic_screener(codec, topology, cluster)
        screen_two(candidates)
        assert _screener_model(topology, cluster, None) is model
        assert model.table_constructions == constructions

    def test_distinct_deployments_get_distinct_models(self):
        a = _screener_model(make_topology("small"), default_cluster(), None)
        b = _screener_model(make_topology("small"), default_cluster(), None)
        assert a is not b  # different objects are different cache keys
