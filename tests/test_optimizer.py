"""Bayesian optimizer behaviour: ask/tell, convergence, pause/resume."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.optimizer import BayesianOptimizer
from repro.core.parameters import (
    FloatParameter,
    IntParameter,
    ParameterSpace,
)


def quadratic_objective(config):
    """Smooth unimodal test function, max 0 at (0.3, 0.6)."""
    x = np.array([config["x"], config["y"]])
    return -np.sum((x - np.array([0.3, 0.6])) ** 2)


def make_space():
    return ParameterSpace([FloatParameter("x", 0, 1), FloatParameter("y", 0, 1)])


class TestAskTell:
    def test_ask_is_idempotent_until_tell(self):
        opt = BayesianOptimizer(make_space(), seed=0)
        a = opt.ask()
        b = opt.ask()
        assert a == b
        opt.tell(a, 1.0)
        c = opt.ask()
        assert c != a or opt.n_observed == 1

    def test_tell_validates_config(self):
        opt = BayesianOptimizer(make_space(), seed=0)
        with pytest.raises(ValueError):
            opt.tell({"x": 3.0, "y": 0.5}, 1.0)

    def test_initial_design_is_latin_hypercube(self):
        opt = BayesianOptimizer(make_space(), init_points=6, seed=0)
        points = []
        for _ in range(6):
            config = opt.ask()
            points.append(config["x"])
            opt.tell(config, quadratic_objective(config))
        # LHS stratification on the first axis.
        bins = sorted(int(p * 6) for p in points)
        assert len(set(bins)) >= 5

    def test_initial_configs_evaluated_first(self):
        opt = BayesianOptimizer(
            make_space(),
            seed=0,
            initial_configs=[{"x": 0.25, "y": 0.75}],
        )
        first = opt.ask()
        assert first["x"] == pytest.approx(0.25, abs=1e-9)
        assert first["y"] == pytest.approx(0.75, abs=1e-9)

    def test_best_requires_observations(self):
        opt = BayesianOptimizer(make_space(), seed=0)
        with pytest.raises(RuntimeError):
            opt.best()

    def test_best_tracks_maximum(self):
        opt = BayesianOptimizer(make_space(), seed=0)
        for _ in range(5):
            config = opt.ask()
            opt.tell(config, quadratic_objective(config))
        _, best_val = opt.best()
        assert best_val == max(opt.y)

    def test_minimize_mode(self):
        opt = BayesianOptimizer(make_space(), seed=0, maximize=False)
        for _ in range(5):
            config = opt.ask()
            opt.tell(config, quadratic_objective(config))
        _, best_val = opt.best()
        assert best_val == min(opt.y)

    def test_never_done(self):
        opt = BayesianOptimizer(make_space(), seed=0)
        assert not opt.done

    def test_avoids_exact_duplicates_on_integer_grid(self):
        space = ParameterSpace([IntParameter("n", 1, 4)])
        opt = BayesianOptimizer(space, init_points=4, seed=0)
        seen = []
        for _ in range(4):
            c = opt.ask()
            seen.append(c["n"])
            opt.tell(c, float(c["n"]))
        # After init, proposals jitter away from already-measured points
        # when possible (4 values, 4 seen: anything goes, just no crash).
        c = opt.ask()
        assert 1 <= c["n"] <= 4


class TestConvergence:
    def test_finds_quadratic_optimum(self):
        opt = BayesianOptimizer(make_space(), init_points=6, seed=3)
        best = -np.inf
        for _ in range(30):
            config = opt.ask()
            value = quadratic_objective(config)
            opt.tell(config, value)
            best = max(best, value)
        assert best > -0.01  # within 0.1 of the optimum in each coord

    def test_beats_random_search_on_average(self):
        from repro.core.baselines import RandomSearchOptimizer

        def run(opt, budget=25):
            best = -np.inf
            for _ in range(budget):
                c = opt.ask()
                v = quadratic_objective(c)
                opt.tell(c, v)
                best = max(best, v)
            return best

        bo_scores = [
            run(BayesianOptimizer(make_space(), init_points=6, seed=s))
            for s in range(4)
        ]
        rs_scores = [
            run(RandomSearchOptimizer(make_space(), seed=s)) for s in range(4)
        ]
        assert np.mean(bo_scores) >= np.mean(rs_scores)

    def test_integer_space_convergence(self):
        space = ParameterSpace(
            [IntParameter("a", 1, 20), IntParameter("b", 1, 20)]
        )

        def objective(c):
            return -((c["a"] - 13) ** 2 + (c["b"] - 7) ** 2)

        opt = BayesianOptimizer(space, init_points=8, seed=1)
        best = -np.inf
        for _ in range(40):
            c = opt.ask()
            v = objective(c)
            opt.tell(c, v)
            best = max(best, v)
        assert best >= -8  # within ~2 grid steps of (13, 7)


class TestPauseResume:
    def test_state_roundtrip_preserves_history(self, tmp_path):
        opt = BayesianOptimizer(make_space(), init_points=4, seed=7)
        for _ in range(6):
            c = opt.ask()
            opt.tell(c, quadratic_objective(c))
        path = tmp_path / "state.json"
        opt.save(path)
        resumed = BayesianOptimizer.load(path)
        assert resumed.n_observed == opt.n_observed
        assert np.allclose(np.vstack(resumed.X), np.vstack(opt.X))
        assert resumed.y == opt.y
        assert resumed.best()[1] == opt.best()[1]

    def test_resume_continues_identically(self, tmp_path):
        """Pause/resume must not change the trajectory (same RNG state)."""
        opt_a = BayesianOptimizer(make_space(), init_points=4, seed=11)
        for _ in range(5):
            c = opt_a.ask()
            opt_a.tell(c, quadratic_objective(c))
        path = tmp_path / "state.json"
        opt_a.save(path)
        opt_b = BayesianOptimizer.load(path)
        for _ in range(3):
            ca = opt_a.ask()
            opt_a.tell(ca, quadratic_objective(ca))
            cb = opt_b.ask()
            opt_b.tell(cb, quadratic_objective(cb))
            assert ca.keys() == cb.keys()
            for key in ca:
                assert float(ca[key]) == pytest.approx(float(cb[key]), abs=1e-9)

    def test_resume_preserves_hyperparameters(self, tmp_path):
        opt = BayesianOptimizer(make_space(), init_points=4, seed=5)
        for _ in range(8):
            c = opt.ask()
            opt.tell(c, quadratic_objective(c))
        theta = opt.gp.kernel.theta.copy()
        path = tmp_path / "state.json"
        opt.save(path)
        resumed = BayesianOptimizer.load(path)
        assert np.allclose(resumed.gp.kernel.theta, theta)


def test_seeded_runs_are_deterministic():
    def run(seed):
        opt = BayesianOptimizer(make_space(), init_points=4, seed=seed)
        trace = []
        for _ in range(8):
            c = opt.ask()
            v = quadratic_objective(c)
            opt.tell(c, v)
            trace.append(v)
        return trace

    assert run(42) == run(42)
    assert run(42) != run(43)


def test_invalid_constructor_args():
    with pytest.raises(ValueError):
        BayesianOptimizer(make_space(), init_points=0)
    with pytest.raises(ValueError):
        BayesianOptimizer(make_space(), refit_every=0)
    with pytest.raises(ValueError):
        BayesianOptimizer(make_space(), acquisition="nope")
    with pytest.raises(ValueError):
        BayesianOptimizer(make_space(), kernel="nope")
