"""Statistics: LOESS, t-tests, summaries."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st
from scipy import stats as sstats

from repro.stats.loess import loess, loess_at
from repro.stats.summarize import Summary, bootstrap_mean_ci, geometric_mean, summarize
from repro.stats.ttest import two_sided_t_test, welch_t_test


class TestLoess:
    def test_recovers_linear_function_exactly(self):
        x = np.linspace(0, 10, 50)
        y = 3.0 * x + 2.0
        _, smoothed = loess(x, y, span=0.5)
        assert np.allclose(smoothed, y, atol=1e-8)

    def test_smooths_noise(self, rng):
        x = np.linspace(0, 1, 200)
        truth = np.sin(2 * np.pi * x)
        y = truth + rng.normal(0, 0.3, size=200)
        _, smoothed = loess(x, y, span=0.3)
        raw_err = np.mean((y - truth) ** 2)
        smooth_err = np.mean((smoothed - truth) ** 2)
        assert smooth_err < raw_err / 2

    def test_follows_trend(self, rng):
        """Paper use-case: rising optimization traces keep their trend."""
        x = np.arange(1, 181, dtype=float)
        y = np.log(x) * 100 + rng.normal(0, 20, size=180)
        _, smoothed = loess(x, y, span=0.75)
        assert smoothed[-1] > smoothed[0]
        # Mostly monotone after smoothing.
        assert np.mean(np.diff(smoothed) >= -1.0) > 0.9

    def test_constant_data(self):
        x = np.arange(10, dtype=float)
        y = np.full(10, 5.0)
        _, smoothed = loess(x, y)
        assert np.allclose(smoothed, 5.0)

    def test_eval_points(self):
        x = np.linspace(0, 1, 30)
        y = x**2
        xs, ys = loess(x, y, x_eval=np.array([0.25, 0.5, 0.75]))
        assert len(xs) == 3
        assert np.all(np.diff(xs) > 0)

    def test_duplicate_x_values(self):
        x = np.array([1.0, 1.0, 1.0, 2.0, 2.0])
        y = np.array([1.0, 2.0, 3.0, 4.0, 5.0])
        value = loess_at(x, y, 1.0, span=1.0)
        assert np.isfinite(value)

    def test_validation(self):
        with pytest.raises(ValueError):
            loess_at(np.array([1.0]), np.array([1.0, 2.0]), 0.5)
        with pytest.raises(ValueError):
            loess_at(np.array([]), np.array([]), 0.5)
        with pytest.raises(ValueError):
            loess_at(np.array([1.0, 2.0]), np.array([1.0, 2.0]), 0.5, span=0.0)


class TestTTest:
    def test_matches_scipy_welch(self, rng):
        a = list(rng.normal(10, 2, size=25))
        b = list(rng.normal(11, 3, size=30))
        ours = welch_t_test(a, b)
        theirs = sstats.ttest_ind(a, b, equal_var=False)
        assert ours.statistic == pytest.approx(theirs.statistic, rel=1e-9)
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-9)

    def test_matches_scipy_pooled(self, rng):
        a = list(rng.normal(5, 1, size=20))
        b = list(rng.normal(5, 1, size=20))
        ours = two_sided_t_test(a, b, equal_var=True)
        theirs = sstats.ttest_ind(a, b, equal_var=True)
        assert ours.statistic == pytest.approx(theirs.statistic, rel=1e-9)
        assert ours.p_value == pytest.approx(theirs.pvalue, rel=1e-9)

    def test_identical_samples_insignificant(self):
        a = [1.0, 2.0, 3.0, 4.0]
        result = welch_t_test(a, list(a))
        assert not result.significant
        assert result.p_value == pytest.approx(1.0)

    def test_clearly_different_samples_significant(self, rng):
        a = list(rng.normal(0, 1, size=30))
        b = list(rng.normal(10, 1, size=30))
        assert welch_t_test(a, b).significant

    def test_paper_scenario_611k_vs_660k(self, rng):
        """Similar means with wide spread: insignificant, as in §V-D."""
        a = list(rng.normal(611_000, 60_000, size=30))
        b = list(rng.normal(660_000, 60_000, size=30))
        result = welch_t_test(a, b)
        assert result.p_value > 0.001  # not overwhelmingly different

    def test_degenerate_constant_samples(self):
        equal = welch_t_test([2.0, 2.0], [2.0, 2.0])
        assert not equal.significant
        different = welch_t_test([2.0, 2.0], [3.0, 3.0])
        assert different.significant

    def test_requires_two_observations(self):
        with pytest.raises(ValueError):
            welch_t_test([1.0], [1.0, 2.0])

    def test_verdict_text(self):
        result = welch_t_test([1.0, 2.0, 3.0], [1.1, 2.1, 3.1])
        assert "insignificant" in result.verdict()

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_property_p_value_in_unit_interval(self, seed):
        rng = np.random.default_rng(seed)
        a = list(rng.normal(0, 1, size=5))
        b = list(rng.normal(0.5, 2, size=7))
        result = welch_t_test(a, b)
        assert 0.0 <= result.p_value <= 1.0


class TestSummaries:
    def test_summarize(self):
        s = summarize([1.0, 2.0, 3.0])
        assert s == Summary(mean=2.0, minimum=1.0, maximum=3.0, std=1.0, n=3)

    def test_single_value(self):
        s = summarize([5.0])
        assert s.std == 0.0 and s.mean == 5.0

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            summarize([])

    def test_bootstrap_ci_brackets_mean(self, rng):
        values = list(rng.normal(50, 5, size=100))
        lo, hi = bootstrap_mean_ci(values, seed=1)
        assert lo < np.mean(values) < hi
        assert hi - lo < 5.0

    def test_geometric_mean(self):
        assert geometric_mean([1.0, 4.0]) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            geometric_mean([1.0, -1.0])
        with pytest.raises(ValueError):
            geometric_mean([])
