"""Cluster model and the even scheduler."""

from __future__ import annotations

import pytest

from repro.storm.cluster import ClusterSpec, MachineSpec, paper_cluster
from repro.storm.config import TopologyConfig
from repro.storm.scheduler import EvenScheduler, SchedulingError, schedulable
from repro.storm.topology import linear_topology


class TestClusterSpec:
    def test_paper_cluster_matches_section_iv_c(self):
        cluster = paper_cluster()
        assert cluster.n_machines == 80
        assert cluster.machine.cores == 4
        assert cluster.total_cores == 320
        assert cluster.machine.memory_mb == 8192
        assert cluster.machine.nic_mbps == 1000.0

    def test_nic_bytes_per_ms(self):
        machine = MachineSpec(nic_mbps=1000.0)
        # 1 Gbps = 125 MB/s = 125000 bytes/ms
        assert machine.nic_bytes_per_ms == pytest.approx(125_000.0)

    def test_worker_slots_deterministic(self):
        cluster = ClusterSpec(n_machines=3, workers_per_machine=2)
        slots = cluster.worker_slots()
        assert len(slots) == 6
        assert slots[0].machine_id == 0 and slots[0].slot_id == 0
        assert slots[-1].machine_id == 2 and slots[-1].slot_id == 1

    def test_validation(self):
        with pytest.raises(ValueError):
            ClusterSpec(n_machines=0)
        with pytest.raises(ValueError):
            MachineSpec(cores=0)
        with pytest.raises(ValueError):
            MachineSpec(core_speed=0)


class TestEvenScheduler:
    def test_balances_executors(self, four_machine_cluster):
        topo = linear_topology("chain", 3)
        config = TopologyConfig.uniform(topo, 8, ackers=4, num_workers=4)
        assignment = EvenScheduler().schedule(topo, config, four_machine_cluster)
        counts = assignment.executors_per_machine()
        assert sum(counts.values()) == 4 * 8 + 4
        assert max(counts.values()) - min(counts.values()) <= 1

    def test_all_tasks_placed(self, four_machine_cluster):
        topo = linear_topology("chain", 2)
        config = TopologyConfig.uniform(topo, 5, ackers=2, num_workers=4)
        assignment = EvenScheduler().schedule(topo, config, four_machine_cluster)
        for name in topo:
            assert assignment.task_count(name) == 5
        assert len(assignment.acker_tasks) == 2

    def test_respects_normalized_hints(self, four_machine_cluster):
        topo = linear_topology("chain", 2)
        config = TopologyConfig.uniform(
            topo, 10, max_tasks=15, ackers=0, num_workers=4
        )
        assignment = EvenScheduler().schedule(topo, config, four_machine_cluster)
        assert len(assignment.tasks) == config.total_tasks(topo)

    def test_capacity_error(self, tiny_cluster):
        topo = linear_topology("chain", 2)
        # tiny cluster: 2 machines x 20 executors = 40 slots
        config = TopologyConfig.uniform(topo, 20, ackers=0, num_workers=2)
        with pytest.raises(SchedulingError):
            EvenScheduler().schedule(topo, config, tiny_cluster)
        assert not schedulable(topo, config, tiny_cluster)

    def test_schedulable_boundary(self, tiny_cluster):
        topo = linear_topology("chain", 1)  # 2 operators
        ok = TopologyConfig.uniform(topo, 19, ackers=2, num_workers=2)
        assert schedulable(topo, ok, tiny_cluster)

    def test_colocation_fraction_spread_tasks(self, four_machine_cluster):
        topo = linear_topology("chain", 1)
        config = TopologyConfig.uniform(topo, 8, ackers=0, num_workers=4)
        assignment = EvenScheduler().schedule(topo, config, four_machine_cluster)
        frac = assignment.colocation_fraction("spout", "bolt1")
        # With 8 tasks over 4 machines, roughly 1/4 of pairs co-locate.
        assert 0.0 <= frac <= 0.6

    def test_colocation_single_machine(self):
        cluster = ClusterSpec(n_machines=1, machine=MachineSpec())
        topo = linear_topology("chain", 1)
        config = TopologyConfig.uniform(topo, 3, ackers=0, num_workers=1)
        assignment = EvenScheduler().schedule(topo, config, cluster)
        assert assignment.colocation_fraction("spout", "bolt1") == pytest.approx(1.0)

    def test_threads_per_machine_includes_system_threads(self, tiny_cluster):
        topo = linear_topology("chain", 1)
        config = TopologyConfig.uniform(
            topo, 2, ackers=0, num_workers=2, receiver_threads=2
        )
        assignment = EvenScheduler().schedule(topo, config, tiny_cluster)
        threads = assignment.threads_per_machine()
        # 2 executors/machine + (2 receiver + 2 system) per worker
        assert threads[0] == pytest.approx(2 + 4)

    def test_machines_of(self, four_machine_cluster):
        topo = linear_topology("chain", 1)
        config = TopologyConfig.uniform(topo, 8, ackers=0, num_workers=4)
        assignment = EvenScheduler().schedule(topo, config, four_machine_cluster)
        assert assignment.machines_of("spout") == {0, 1, 2, 3}

    def test_total_executors(self, four_machine_cluster):
        topo = linear_topology("chain", 2)
        config = TopologyConfig.uniform(topo, 4, ackers=3, num_workers=4)
        assignment = EvenScheduler().schedule(topo, config, four_machine_cluster)
        assert assignment.total_executors() == 3 * 4 + 3
