"""Gaussian-process regression correctness."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.gp import GaussianProcess


def test_prior_prediction_without_fit():
    gp = GaussianProcess("rbf", dim=2)
    mean, std = gp.predict(np.array([[0.5, 0.5]]))
    assert mean[0] == pytest.approx(0.0)
    assert std[0] > 0


def test_interpolates_training_points_with_small_noise(rng):
    X = rng.random((10, 2))
    y = np.sin(3 * X[:, 0]) + X[:, 1]
    gp = GaussianProcess("matern52", dim=2, noise=1e-6, fit_noise=False)
    gp.fit(X, y, optimize_hyperparams=True, rng=rng)
    mean, std = gp.predict(X)
    assert np.allclose(mean, y, atol=1e-2)
    assert (std < 0.15).all()


def test_uncertainty_grows_away_from_data(rng):
    X = np.array([[0.5, 0.5]])
    y = np.array([1.0])
    gp = GaussianProcess("rbf", dim=2, noise=1e-4, fit_noise=False)
    gp.fit(X, y, optimize_hyperparams=False)
    _, std_near = gp.predict(np.array([[0.5, 0.51]]))
    _, std_far = gp.predict(np.array([[0.0, 0.0]]))
    assert std_far[0] > std_near[0]


def test_posterior_mean_reverts_to_prior_far_away(rng):
    X = np.array([[0.5]])
    y = np.array([5.0])
    gp = GaussianProcess("rbf", dim=1, noise=1e-4, fit_noise=False, normalize_y=False)
    gp.kernel.theta = np.array([0.0, np.log(0.02)])
    gp.fit(X, y, optimize_hyperparams=False)
    mean, _ = gp.predict(np.array([[0.99]]))
    assert abs(mean[0]) < 0.1  # prior mean is 0 without normalization


def test_y_normalization_restores_scale(rng):
    X = rng.random((20, 1))
    y = 1e6 + 1e5 * np.sin(6 * X[:, 0])
    gp = GaussianProcess("matern52", dim=1, noise=1e-4)
    gp.fit(X, y, rng=rng)
    mean, _ = gp.predict(X)
    assert np.corrcoef(mean, y)[0, 1] > 0.99
    assert abs(np.mean(mean) - np.mean(y)) / np.mean(y) < 0.01


def test_lml_gradient_matches_finite_differences(rng):
    X = rng.random((12, 2))
    y = np.cos(4 * X[:, 0]) * X[:, 1]
    gp = GaussianProcess("rbf", dim=2, noise=1e-2, fit_noise=True)
    z = (y - y.mean()) / y.std()
    theta = gp._pack_theta() + rng.normal(0, 0.1, size=len(gp._pack_theta()))
    _, grad = gp._neg_lml_and_grad(theta, X, z)
    eps = 1e-6
    for j in range(len(theta)):
        t_hi = theta.copy()
        t_hi[j] += eps
        t_lo = theta.copy()
        t_lo[j] -= eps
        f_hi, _ = gp._neg_lml_and_grad(t_hi, X, z)
        f_lo, _ = gp._neg_lml_and_grad(t_lo, X, z)
        fd = (f_hi - f_lo) / (2 * eps)
        assert grad[j] == pytest.approx(fd, rel=1e-3, abs=1e-5)


def test_hyperparameter_optimization_improves_lml(rng):
    X = rng.random((25, 2))
    y = np.sin(5 * X[:, 0]) + 0.1 * rng.normal(size=25)
    gp_fixed = GaussianProcess("matern52", dim=2, noise=1e-2)
    gp_fixed.fit(X, y, optimize_hyperparams=False)
    lml_fixed = gp_fixed.log_marginal_likelihood()
    gp_opt = GaussianProcess("matern52", dim=2, noise=1e-2)
    gp_opt.fit(X, y, optimize_hyperparams=True, n_restarts=2, rng=rng)
    assert gp_opt.log_marginal_likelihood() >= lml_fixed - 1e-6


def test_noise_fitting_detects_noisy_targets(rng):
    X = rng.random((40, 1))
    y = rng.normal(0, 1.0, size=40)  # pure noise
    gp = GaussianProcess("rbf", dim=1, noise=1e-3, fit_noise=True)
    gp.fit(X, y, optimize_hyperparams=True, n_restarts=2, rng=rng)
    assert gp.noise > 1e-3  # learned a larger nugget


def test_predict_shape_checks(rng):
    gp = GaussianProcess("rbf", dim=2)
    gp.fit(rng.random((5, 2)), rng.random(5), optimize_hyperparams=False)
    with pytest.raises(ValueError):
        gp.predict(rng.random((3, 4)))


def test_fit_validates_inputs(rng):
    gp = GaussianProcess("rbf", dim=2)
    with pytest.raises(ValueError):
        gp.fit(rng.random((4, 2)), rng.random(5))
    with pytest.raises(ValueError):
        gp.fit(np.empty((0, 2)), np.empty(0))
    with pytest.raises(ValueError):
        gp.fit(rng.random((4, 3)), rng.random(4))


def test_sample_posterior_matches_moments(rng):
    X = rng.random((8, 1))
    y = np.sin(4 * X[:, 0])
    gp = GaussianProcess("rbf", dim=1, noise=1e-4, fit_noise=False)
    gp.fit(X, y, rng=rng)
    Xs = np.array([[0.25], [0.75]])
    samples = gp.sample_posterior(Xs, 4000, rng)
    mean, std = gp.predict(Xs)
    assert np.allclose(samples.mean(axis=0), mean, atol=0.05)
    assert np.allclose(samples.std(axis=0), std, atol=0.08)


def test_constant_targets_do_not_crash(rng):
    X = rng.random((6, 2))
    y = np.full(6, 3.0)
    gp = GaussianProcess("matern52", dim=2)
    gp.fit(X, y, rng=rng)
    mean, std = gp.predict(rng.random((4, 2)))
    assert np.allclose(mean, 3.0, atol=0.2)


def test_duplicate_inputs_with_different_targets(rng):
    """Noisy duplicates must not break the Cholesky factorization."""
    X = np.vstack([np.full((5, 1), 0.5), rng.random((5, 1))])
    y = np.concatenate([[1.0, 1.2, 0.8, 1.1, 0.9], rng.random(5)])
    gp = GaussianProcess("rbf", dim=1, noise=1e-2)
    gp.fit(X, y, rng=rng)
    mean, _ = gp.predict(np.array([[0.5]]))
    assert 0.5 < mean[0] < 1.5


def test_requires_dim_with_named_kernel():
    with pytest.raises(ValueError):
        GaussianProcess("rbf")


def test_n_observations_tracking(rng):
    gp = GaussianProcess("rbf", dim=1)
    assert gp.n_observations == 0
    gp.fit(rng.random((7, 1)), rng.random(7), optimize_hyperparams=False)
    assert gp.n_observations == 7
    assert gp.is_fitted
