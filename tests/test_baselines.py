"""Baseline optimizers: grid ascent (pla/ipla) and random search."""

from __future__ import annotations

import pytest

from repro.core.baselines import (
    GridAscentOptimizer,
    ParallelLinearAscent,
    RandomSearchOptimizer,
)
from repro.core.parameters import FloatParameter, IntParameter, ParameterSpace


class TestGridAscent:
    def test_walks_configs_in_order(self):
        configs = [{"h": i} for i in range(1, 6)]
        opt = GridAscentOptimizer(configs)
        seen = []
        while not opt.done:
            c = opt.ask()
            seen.append(c["h"])
            opt.tell(c, float(c["h"]))
        assert seen == [1, 2, 3, 4, 5]

    def test_stop_rule_three_consecutive_zeros(self):
        configs = [{"h": i} for i in range(1, 20)]
        opt = GridAscentOptimizer(configs, stop_after_zeros=3)
        values = [5.0, 6.0, 0.0, 0.0, 0.0, 7.0]
        steps = 0
        while not opt.done and steps < len(values):
            c = opt.ask()
            opt.tell(c, values[steps])
            steps += 1
        assert opt.done
        assert steps == 5  # stopped after the third consecutive zero

    def test_nonzero_resets_zero_counter(self):
        configs = [{"h": i} for i in range(1, 10)]
        opt = GridAscentOptimizer(configs, stop_after_zeros=3)
        for value in [0.0, 0.0, 5.0, 0.0, 0.0, 3.0]:
            c = opt.ask()
            opt.tell(c, value)
        assert not opt.done

    def test_exhaustion(self):
        opt = GridAscentOptimizer([{"h": 1}, {"h": 2}])
        for _ in range(2):
            opt.tell(opt.ask(), 1.0)
        assert opt.done
        with pytest.raises(RuntimeError):
            opt.ask()

    def test_best(self):
        opt = GridAscentOptimizer([{"h": i} for i in range(1, 5)])
        for value in [1.0, 9.0, 3.0]:
            opt.tell(opt.ask(), value)
        config, best = opt.best()
        assert best == 9.0
        assert config["h"] == 2

    def test_best_requires_history(self):
        opt = GridAscentOptimizer([{"h": 1}])
        with pytest.raises(RuntimeError):
            opt.best()

    def test_validation(self):
        with pytest.raises(ValueError):
            GridAscentOptimizer([])
        with pytest.raises(ValueError):
            GridAscentOptimizer([{"h": 1}], stop_after_zeros=0)


class TestParallelLinearAscent:
    def test_uniform_hint_schedule(self):
        pla = ParallelLinearAscent("uniform_hint", list(range(1, 61)))
        first = pla.ask()
        assert first == {"uniform_hint": 1}
        pla.tell(first, 10.0)
        assert pla.ask() == {"uniform_hint": 2}

    def test_extra_params_attached(self):
        pla = ParallelLinearAscent(
            "multiplier", [0.5, 1.0], extra={"phase": "informed"}
        )
        c = pla.ask()
        assert c == {"multiplier": 0.5, "phase": "informed"}

    def test_empty_values_rejected(self):
        with pytest.raises(ValueError):
            ParallelLinearAscent("h", [])

    def test_paper_stop_scenario(self):
        """Ascent over a cliff: nonzero until h=39, zeros from h=40."""
        pla = ParallelLinearAscent("uniform_hint", list(range(1, 61)))
        steps = 0
        while not pla.done:
            c = pla.ask()
            value = 100.0 if c["uniform_hint"] < 40 else 0.0
            pla.tell(c, value)
            steps += 1
        assert steps == 42  # 39 nonzero + 3 zeros
        assert pla.best()[1] == 100.0


class TestRandomSearch:
    def space(self):
        return ParameterSpace(
            [IntParameter("a", 1, 10), FloatParameter("b", 0, 1)]
        )

    def test_samples_in_domain(self):
        opt = RandomSearchOptimizer(self.space(), seed=0)
        for _ in range(20):
            c = opt.ask()
            assert 1 <= c["a"] <= 10
            assert 0 <= c["b"] <= 1
            opt.tell(c, 0.0)

    def test_ask_stable_until_tell(self):
        opt = RandomSearchOptimizer(self.space(), seed=0)
        assert opt.ask() == opt.ask()

    def test_seeded_determinism(self):
        a = RandomSearchOptimizer(self.space(), seed=9)
        b = RandomSearchOptimizer(self.space(), seed=9)
        for _ in range(5):
            ca, cb = a.ask(), b.ask()
            assert ca == cb
            a.tell(ca, 0.0)
            b.tell(cb, 0.0)

    def test_best(self):
        opt = RandomSearchOptimizer(self.space(), seed=1)
        values = [3.0, 7.0, 1.0]
        for v in values:
            opt.tell(opt.ask(), v)
        assert opt.best()[1] == 7.0
        assert not opt.done
