"""Fault injection: determinism, rates, engine integration.

The fault plan's headline guarantee is that fault decisions are a pure
function of (plan seed, evaluation identity) — never of scheduling —
so a ``batch_size=4`` run replays the serial run fault-for-fault.
"""

from __future__ import annotations

import pytest

from repro.core.executor import ThreadPoolExecutor
from repro.core.loop import TuningLoop
from repro.experiments.presets import SYNTHETIC_BASE_CONFIG, default_cluster
from repro.experiments.runner import make_synthetic_optimizer
from repro.storm.faults import (
    NO_FAULTS,
    FaultDecision,
    FaultPlan,
    FaultSpec,
    inject_faults,
)
from repro.storm.metrics import MeasuredRun
from repro.storm.objective import StormObjective
from repro.topology_gen.suite import make_topology


def _objective(faults=None, seed=None, fidelity="analytic"):
    topology = make_topology("small")
    cluster = default_cluster()
    _, codec = make_synthetic_optimizer(
        "pla", topology, cluster, SYNTHETIC_BASE_CONFIG, 8, seed=0
    )
    return StormObjective(
        topology,
        cluster,
        codec,
        fidelity=fidelity,
        faults=faults,
        seed=seed,
    )


class TestFaultSpec:
    def test_inactive_by_default(self):
        assert not FaultSpec().active
        assert FaultSpec(crash_rate=0.1).active

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"crash_rate": 1.5},
            {"hang_rate": -0.1},
            {"straggler_slowdown": 0.0},
            {"tuple_loss_fraction": 1.0},
            {"hang_seconds": -1.0},
        ],
    )
    def test_validation(self, kwargs):
        with pytest.raises(ValueError):
            FaultSpec(**kwargs)

    def test_chaos_splits_budget(self):
        spec = FaultSpec.chaos(0.2, seed=7)
        assert spec.crash_rate == pytest.approx(0.05)
        assert spec.straggler_rate == pytest.approx(0.05)
        assert spec.tuple_loss_rate == pytest.approx(0.05)
        assert spec.hang_rate == pytest.approx(0.05)
        assert spec.hang_seconds == 0.0
        assert spec.seed == 7
        assert spec.active


class TestFaultDecision:
    def test_no_faults_shared_instance(self):
        assert not NO_FAULTS.any
        assert NO_FAULTS.labels() == []

    def test_labels_severity_order(self):
        decision = FaultDecision(
            crash=True, straggler_factor=0.5, replay_fraction=0.1, hang=True
        )
        assert decision.labels() == [
            "measurement_window_hang",
            "worker_crash",
            "straggler",
            "tuple_loss",
        ]
        assert decision.any


class TestDecide:
    def test_pure_function_of_seed(self):
        plan = FaultPlan(FaultSpec.chaos(0.5, seed=3))
        for seed in range(50):
            assert plan.decide(seed) == plan.decide(seed)

    def test_plan_seed_changes_stream(self):
        a = FaultPlan(FaultSpec.chaos(0.5, seed=0))
        b = FaultPlan(FaultSpec.chaos(0.5, seed=1))
        decisions_a = [a.decide(s) for s in range(200)]
        decisions_b = [b.decide(s) for s in range(200)]
        assert decisions_a != decisions_b

    def test_key_identifies_when_seed_is_none(self):
        plan = FaultPlan(FaultSpec.chaos(0.5))
        assert plan.decide(None, key="cfg-a") == plan.decide(None, key="cfg-a")
        many = {str(plan.decide(None, key=f"cfg-{i}")) for i in range(100)}
        assert len(many) > 1

    def test_inactive_spec_never_faults(self):
        plan = FaultPlan(FaultSpec())
        assert not plan.active
        assert plan.decide(123) is NO_FAULTS

    def test_statistical_rates(self):
        plan = FaultPlan(FaultSpec(crash_rate=0.2, seed=11))
        n = 2000
        crashes = sum(plan.decide(s).crash for s in range(n))
        assert 0.15 < crashes / n < 0.25

    def test_hang_preempts_crash(self):
        plan = FaultPlan(FaultSpec(crash_rate=1.0, hang_rate=1.0))
        decision = plan.decide(0)
        assert decision.hang and not decision.crash


class TestPreemptAndDegrade:
    def test_crash_preempts(self):
        plan = FaultPlan(FaultSpec(crash_rate=1.0))
        run = plan.preempt(plan.decide(0))
        assert run is not None and run.failed
        assert run.failure_reason.startswith("worker_crash")

    def test_hang_preempts(self):
        plan = FaultPlan(FaultSpec(hang_rate=1.0, hang_seconds=0.0))
        run = plan.preempt(plan.decide(0))
        assert run is not None and run.failed
        assert run.failure_reason.startswith("measurement_window_hang")

    def test_no_preempt_without_fault(self):
        plan = FaultPlan(FaultSpec(straggler_rate=1.0))
        assert plan.preempt(plan.decide(0)) is None

    def test_degrade_composes_multiplicatively(self):
        plan = FaultPlan(
            FaultSpec(
                straggler_rate=1.0,
                straggler_slowdown=0.5,
                tuple_loss_rate=1.0,
                tuple_loss_fraction=0.1,
            )
        )
        decision = plan.decide(0)
        run = MeasuredRun(throughput_tps=1000.0)
        degraded = plan.degrade(run, decision)
        assert degraded.throughput_tps == pytest.approx(1000.0 * 0.5 * 0.9)
        assert degraded.details["injected_faults"] == ["straggler", "tuple_loss"]
        assert degraded.details["fault_factor"] == pytest.approx(0.45)

    def test_degrade_passes_failed_run_through(self):
        plan = FaultPlan(FaultSpec(straggler_rate=1.0))
        failed = MeasuredRun.failure("scheduling: no capacity")
        assert plan.degrade(failed, plan.decide(0)) is failed


class TestInjectFaults:
    class _Tracer:
        def __init__(self):
            self.events = []

        def event(self, name, **attrs):
            self.events.append((name, attrs))

    def test_none_plan_is_passthrough(self):
        run = MeasuredRun(throughput_tps=5.0)
        out = inject_faults(
            None,
            lambda: run,
            config_key="k",
            seed=0,
            tracer=self._Tracer(),
            engine="analytic",
        )
        assert out is run

    def test_preempting_fault_skips_mechanics(self):
        plan = FaultPlan(FaultSpec(crash_rate=1.0))
        tracer = self._Tracer()

        def boom():
            raise AssertionError("mechanics must not run on a crash")

        out = inject_faults(
            plan, boom, config_key="k", seed=0, tracer=tracer, engine="analytic"
        )
        assert out.failed
        names = [name for name, _ in tracer.events]
        assert "engine.fault_injected" in names
        assert "engine.failure" in names


class TestEngineIntegration:
    @pytest.mark.parametrize("fidelity", ["analytic", "des"])
    def test_crash_surfaces_as_failed_run(self, fidelity):
        plan = FaultPlan(FaultSpec(crash_rate=1.0))
        objective = _objective(faults=plan, fidelity=fidelity)
        run = objective.measure({"uniform_hint": 2}, seed=0)
        assert run.failed
        assert run.failure_reason.startswith("worker_crash")

    @pytest.mark.parametrize("fidelity", ["analytic", "des"])
    def test_straggler_degrades_throughput(self, fidelity):
        plan = FaultPlan(
            FaultSpec(straggler_rate=1.0, straggler_slowdown=0.35)
        )
        clean = _objective(fidelity=fidelity)
        faulty = _objective(faults=plan, fidelity=fidelity)
        # hint 6 is feasible under both engines (the DES hits its batch
        # timeout below 4, which is a *persistent* failure, not a fault)
        base = clean.measure({"uniform_hint": 6}, seed=0)
        degraded = faulty.measure({"uniform_hint": 6}, seed=0)
        assert not base.failed
        assert degraded.throughput_tps == pytest.approx(
            base.throughput_tps * 0.35
        )
        assert degraded.details["injected_faults"] == ["straggler"]

    def test_active_faults_disable_memoization(self):
        assert _objective().memoize
        assert not _objective(faults=FaultPlan(FaultSpec.chaos(0.5))).memoize
        assert _objective(faults=FaultPlan(FaultSpec())).memoize

    def test_faults_keyed_by_eval_seed(self):
        plan = FaultPlan(FaultSpec(crash_rate=0.5, seed=5))
        objective = _objective(faults=plan)
        config = {"uniform_hint": 2}
        outcomes = [
            objective.measure(config, seed=s).failed for s in range(40)
        ]
        assert any(outcomes) and not all(outcomes)
        replay = [objective.measure(config, seed=s).failed for s in range(40)]
        assert outcomes == replay


class TestBatchDeterminism:
    def _observations(self, *, workers: int):
        topology = make_topology("small")
        cluster = default_cluster()
        optimizer, codec = make_synthetic_optimizer(
            "pla", topology, cluster, SYNTHETIC_BASE_CONFIG, 8, seed=0
        )
        objective = StormObjective(
            topology,
            cluster,
            codec,
            fidelity="analytic",
            faults=FaultPlan(FaultSpec.chaos(0.5, seed=9)),
        )
        executor = (
            ThreadPoolExecutor(objective, max_workers=workers)
            if workers > 1
            else None
        )
        try:
            loop = TuningLoop(
                objective,
                optimizer,
                max_steps=8,
                strategy_name="pla",
                executor=executor,
                batch_size=workers if workers > 1 else None,
                seed=1234,
            )
            result = loop.run()
        finally:
            if executor is not None:
                executor.close()
        return {
            (tuple(sorted(o.config.items())), o.value, o.failed)
            for o in result.observations
        }

    def test_serial_and_batch4_fault_identically(self):
        assert self._observations(workers=1) == self._observations(workers=4)
