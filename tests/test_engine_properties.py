"""Property-based tests over the execution engines.

Random topologies and configurations must never crash the engines, and
a set of invariants must hold everywhere: non-negative throughput,
zero throughput exactly on failure, determinism of the noise-free path,
and monotone responses to added hardware.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storm.analytic import AnalyticPerformanceModel, CalibrationParams
from repro.storm.cluster import ClusterSpec, MachineSpec
from repro.storm.config import TopologyConfig
from repro.storm.simulation import DiscreteEventSimulator
from repro.topology_gen.ggen import layer_by_layer
from repro.topology_gen.modifications import (
    apply_resource_contention,
    apply_time_imbalance,
)


def random_topology(seed: int, *, n_vertices: int, n_layers: int, imbalance: float, contention: float):
    topo = layer_by_layer(
        f"prop{seed}", n_vertices, n_layers, 0.3, seed=seed, cost=5.0
    )
    rng = np.random.default_rng(seed + 1)
    topo = apply_time_imbalance(topo, rng, mean_cost=5.0, imbalance=imbalance)
    return apply_resource_contention(topo, rng, contentious_share=contention)


def random_config(seed: int, n_workers: int, topo) -> TopologyConfig:
    rng = np.random.default_rng(seed + 2)
    return TopologyConfig(
        parallelism_hints={n: int(rng.integers(1, 9)) for n in topo},
        max_tasks=int(rng.integers(len(topo), 400)) if rng.random() < 0.5 else None,
        batch_size=int(rng.integers(10, 400)),
        batch_parallelism=int(rng.integers(1, 17)),
        worker_threads=int(rng.integers(1, 17)),
        receiver_threads=int(rng.integers(1, 5)),
        ackers=int(rng.integers(0, 9)),
        num_workers=n_workers,
    )


CLUSTER = ClusterSpec(
    n_machines=6,
    machine=MachineSpec(cores=4, memory_mb=8192),
    max_executors_per_worker=40,
)


@given(
    seed=st.integers(min_value=0, max_value=5000),
    n_vertices=st.integers(min_value=4, max_value=24),
    n_layers=st.integers(min_value=2, max_value=5),
    imbalance=st.sampled_from([0.0, 1.0]),
    contention=st.sampled_from([0.0, 0.25]),
)
@settings(max_examples=60, deadline=None)
def test_analytic_invariants(seed, n_vertices, n_layers, imbalance, contention):
    topo = random_topology(
        seed,
        n_vertices=n_vertices,
        n_layers=min(n_layers, n_vertices),
        imbalance=imbalance,
        contention=contention,
    )
    config = random_config(seed, CLUSTER.total_workers, topo)
    model = AnalyticPerformanceModel(topo, CLUSTER)
    run = model.evaluate_noise_free(config)
    # Invariants.
    assert run.throughput_tps >= 0.0
    assert run.failed == (run.throughput_tps == 0.0) or not run.failed
    if run.failed:
        assert run.failure_reason
    else:
        assert run.batch_latency_ms > 0
        assert run.network_mb_per_worker_s >= 0
    # Determinism.
    again = model.evaluate_noise_free(config)
    assert again.throughput_tps == run.throughput_tps


@given(seed=st.integers(min_value=0, max_value=2000))
@settings(max_examples=15, deadline=None)
def test_des_never_crashes_and_matches_failure_semantics(seed):
    topo = random_topology(seed, n_vertices=8, n_layers=3, imbalance=1.0, contention=0.0)
    config = random_config(seed, CLUSTER.total_workers, topo)
    sim = DiscreteEventSimulator(
        topo, CLUSTER, max_batches=12, warmup_batches=1
    )
    run = sim.evaluate_noise_free(config)
    assert run.throughput_tps >= 0.0
    if run.failed:
        assert run.throughput_tps == 0.0


@given(seed=st.integers(min_value=0, max_value=2000))
@settings(max_examples=25, deadline=None)
def test_more_machines_never_hurt(seed):
    """Throughput is monotone in cluster size for feasible configs."""
    topo = random_topology(seed, n_vertices=10, n_layers=3, imbalance=1.0, contention=0.0)
    small = ClusterSpec(n_machines=4, machine=MachineSpec(cores=4))
    large = ClusterSpec(n_machines=16, machine=MachineSpec(cores=4))
    config = TopologyConfig(
        parallelism_hints={n: 4 for n in topo},
        batch_size=100,
        batch_parallelism=8,
        ackers=4,
        num_workers=1,
    )
    t_small = AnalyticPerformanceModel(topo, small).evaluate_noise_free(
        config.replace(num_workers=4)
    )
    t_large = AnalyticPerformanceModel(topo, large).evaluate_noise_free(
        config.replace(num_workers=16)
    )
    if not t_small.failed and not t_large.failed:
        assert t_large.throughput_tps >= t_small.throughput_tps * 0.999


@given(seed=st.integers(min_value=0, max_value=2000))
@settings(max_examples=25, deadline=None)
def test_faster_cores_never_hurt(seed):
    topo = random_topology(seed, n_vertices=8, n_layers=3, imbalance=0.0, contention=0.0)
    slow = ClusterSpec(n_machines=4, machine=MachineSpec(cores=4, core_speed=1.0))
    fast = ClusterSpec(n_machines=4, machine=MachineSpec(cores=4, core_speed=2.0))
    config = TopologyConfig(
        parallelism_hints={n: 3 for n in topo},
        batch_size=100,
        batch_parallelism=8,
        ackers=2,
        num_workers=4,
    )
    t_slow = AnalyticPerformanceModel(topo, slow).evaluate_noise_free(config)
    t_fast = AnalyticPerformanceModel(topo, fast).evaluate_noise_free(config)
    if not t_slow.failed and not t_fast.failed:
        assert t_fast.throughput_tps >= t_slow.throughput_tps * 0.999


@given(
    seed=st.integers(min_value=0, max_value=2000),
    sigma=st.floats(min_value=0.0, max_value=0.3),
)
@settings(max_examples=25, deadline=None)
def test_noise_preserves_failure_and_nonnegativity(seed, sigma):
    from repro.storm.noise import GaussianNoise

    topo = random_topology(seed, n_vertices=6, n_layers=2, imbalance=0.0, contention=0.0)
    config = random_config(seed, CLUSTER.total_workers, topo)
    model = AnalyticPerformanceModel(
        topo, CLUSTER, noise=GaussianNoise(sigma), seed=seed
    )
    run = model.evaluate(config)
    assert run.throughput_tps >= 0.0
    if run.failed:
        assert run.throughput_tps == 0.0


@given(seed=st.integers(min_value=0, max_value=500))
@settings(max_examples=10, deadline=None)
def test_des_agrees_with_analytic_on_random_feasible_configs(seed):
    """Random (feasible, away-from-cliff) configs: engines within 50%."""
    cal = CalibrationParams(batch_timeout_ms=1e12)
    topo = random_topology(seed, n_vertices=7, n_layers=3, imbalance=1.0, contention=0.0)
    config = TopologyConfig(
        parallelism_hints={n: 3 for n in topo},
        batch_size=60,
        batch_parallelism=6,
        ackers=2,
        num_workers=6,
    )
    analytic = AnalyticPerformanceModel(topo, CLUSTER, cal).evaluate_noise_free(config)
    des = DiscreteEventSimulator(
        topo, CLUSTER, cal, max_batches=40, warmup_batches=2
    ).evaluate_noise_free(config)
    if analytic.failed or des.failed:
        return  # cliff configs are covered by the failure tests
    assert des.throughput_tps == pytest.approx(analytic.throughput_tps, rel=0.5)
