"""Grouping strategies: load splits and network behaviour."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storm.grouping import (
    Grouping,
    effective_parallelism,
    load_fractions,
    remote_fraction,
    replication_factor,
)


class TestLoadFractions:
    def test_shuffle_even(self):
        fractions = load_fractions(Grouping.SHUFFLE, 4)
        assert np.allclose(fractions, 0.25)

    def test_local_or_shuffle_even(self):
        fractions = load_fractions(Grouping.LOCAL_OR_SHUFFLE, 5)
        assert np.allclose(fractions, 0.2)

    def test_global_pins_first_task(self):
        fractions = load_fractions(Grouping.GLOBAL, 4)
        assert fractions[0] == 1.0
        assert np.allclose(fractions[1:], 0.0)

    def test_all_replicates(self):
        fractions = load_fractions(Grouping.ALL, 3)
        assert np.allclose(fractions, 1.0)

    def test_fields_skewed_but_normalized(self):
        fractions = load_fractions(Grouping.FIELDS, 6)
        assert fractions.sum() == pytest.approx(1.0)
        assert fractions[0] > fractions[-1]  # hottest partition first

    def test_fields_skew_parameter(self):
        mild = load_fractions(Grouping.FIELDS, 8, skew=0.1)
        harsh = load_fractions(Grouping.FIELDS, 8, skew=1.5)
        assert harsh[0] > mild[0]

    def test_single_task_trivial(self):
        for g in Grouping:
            assert load_fractions(g, 1)[0] == pytest.approx(1.0)

    def test_invalid_task_count(self):
        with pytest.raises(ValueError):
            load_fractions(Grouping.SHUFFLE, 0)


class TestEffectiveParallelism:
    def test_shuffle_is_task_count(self):
        assert effective_parallelism(Grouping.SHUFFLE, 7) == pytest.approx(7.0)

    def test_global_is_one(self):
        assert effective_parallelism(Grouping.GLOBAL, 7) == pytest.approx(1.0)

    def test_all_is_one(self):
        assert effective_parallelism(Grouping.ALL, 7) == pytest.approx(1.0)

    def test_fields_between_one_and_n(self):
        p = effective_parallelism(Grouping.FIELDS, 8)
        assert 1.0 < p < 8.0

    @given(st.integers(min_value=1, max_value=64))
    @settings(max_examples=30)
    def test_property_bounded_by_task_count(self, n):
        for g in (Grouping.SHUFFLE, Grouping.FIELDS, Grouping.GLOBAL):
            assert 1.0 <= effective_parallelism(g, n) <= n + 1e-9


class TestReplication:
    def test_all_replicates_n_fold(self):
        assert replication_factor(Grouping.ALL, 5) == 5.0

    def test_others_do_not_replicate(self):
        for g in (Grouping.SHUFFLE, Grouping.FIELDS, Grouping.GLOBAL):
            assert replication_factor(g, 5) == 1.0


class TestRemoteFraction:
    def test_single_machine_is_local(self):
        assert remote_fraction(Grouping.SHUFFLE, 1) == 0.0

    def test_shuffle_many_machines(self):
        assert remote_fraction(Grouping.SHUFFLE, 80) == pytest.approx(79 / 80)

    def test_local_or_shuffle_reduces_traffic(self):
        shuffle = remote_fraction(Grouping.SHUFFLE, 10)
        local = remote_fraction(Grouping.LOCAL_OR_SHUFFLE, 10)
        assert local < shuffle

    def test_colocated_share_bounds(self):
        with pytest.raises(ValueError):
            remote_fraction(Grouping.LOCAL_OR_SHUFFLE, 4, colocated_share=1.5)

    def test_invalid_machine_count(self):
        with pytest.raises(ValueError):
            remote_fraction(Grouping.SHUFFLE, 0)

    @given(st.integers(min_value=2, max_value=200))
    @settings(max_examples=30)
    def test_property_fraction_in_unit_interval(self, m):
        for g in Grouping:
            f = remote_fraction(g, m)
            assert 0.0 <= f < 1.0
