"""Evaluation executors: backends, the objective contract, determinism.

Covers the three backends behind :class:`~repro.core.executor.
EvaluationExecutor` (inline serial, thread pool, process pool), the
duck-typed objective call, and the headline guarantee of the batch
refactor: with a loop seed, a concurrent run observes the *same*
(config, value) set as the serial run, in any completion order.
"""

from __future__ import annotations

import pickle
import threading
import time

import pytest

from repro.core.executor import (
    EvaluationOutcome,
    ProcessPoolExecutor,
    SerialExecutor,
    ThreadPoolExecutor,
    call_objective,
    make_executor,
)
from repro.core.loop import TuningLoop
from repro.experiments.presets import SYNTHETIC_BASE_CONFIG, default_cluster
from repro.experiments.runner import make_synthetic_optimizer
from repro.storm.noise import GaussianNoise
from repro.storm.objective import StormObjective
from repro.topology_gen.suite import make_topology


def _plain(params):
    """A bare-callable objective: value encodes the submitted knob."""
    return float(params["x"]) * 10.0


class _RecordingObjective:
    """measure()-style objective that logs calls and their seeds."""

    def __init__(self) -> None:
        self.calls: list[tuple[float, int | None]] = []

    def measure(self, params, *, seed=None):
        self.calls.append((float(params["x"]), seed))

        class Run:
            throughput_tps = float(params["x"]) * 10.0

        return Run()


def _storm_objective(noise=None, seed=None) -> StormObjective:
    topology = make_topology("small")
    cluster = default_cluster()
    _, codec = make_synthetic_optimizer(
        "pla", topology, cluster, SYNTHETIC_BASE_CONFIG, 8, seed=0
    )
    return StormObjective(
        topology, cluster, codec, fidelity="analytic", noise=noise, seed=seed
    )


class TestCallObjective:
    def test_plain_callable(self):
        value, run, seconds = call_objective(_plain, {"x": 3}, seed=123)
        assert value == 30.0
        assert run is None
        assert seconds >= 0.0

    def test_measure_with_seed(self):
        objective = _RecordingObjective()
        value, run, _ = call_objective(objective, {"x": 2}, seed=77)
        assert value == 20.0
        assert run is not None
        assert objective.calls == [(2.0, 77)]

    def test_measure_without_seed(self):
        objective = _RecordingObjective()
        call_objective(objective, {"x": 2}, seed=None)
        assert objective.calls == [(2.0, None)]


class TestSerialExecutor:
    def test_fifo_inline(self):
        with SerialExecutor(_plain) as executor:
            executor.submit(0, {"x": 1})
            executor.submit(1, {"x": 2})
            assert executor.n_pending == 2
            first = executor.wait_one()
            second = executor.wait_one()
        assert (first.eval_id, first.value) == (0, 10.0)
        assert (second.eval_id, second.value) == (1, 20.0)
        assert first.turnaround_seconds >= first.seconds

    def test_wait_without_pending_raises(self):
        with SerialExecutor(_plain) as executor:
            with pytest.raises(RuntimeError, match="no pending"):
                executor.wait_one()

    def test_cancel_pending(self):
        with SerialExecutor(_plain) as executor:
            executor.submit(0, {"x": 1})
            executor.submit(1, {"x": 2})
            assert executor.cancel_pending() == 2
            assert executor.n_pending == 0

    def test_forces_single_worker(self):
        assert SerialExecutor(_plain, max_workers=8).max_workers == 1


class TestThreadPoolExecutor:
    def test_collects_all_outcomes(self):
        with ThreadPoolExecutor(_plain, max_workers=4) as executor:
            for i in range(6):
                executor.submit(i, {"x": i})
            outcomes = [executor.wait_one() for _ in range(6)]
        assert executor.n_pending == 0
        assert {o.eval_id for o in outcomes} == set(range(6))
        for outcome in outcomes:
            assert outcome.value == outcome.config["x"] * 10.0

    def test_overlaps_gil_releasing_waits(self):
        """Four sleeping evaluations finish in ~one window, not four."""

        def sleepy(params):
            time.sleep(0.1)
            return 1.0

        with ThreadPoolExecutor(sleepy, max_workers=4) as executor:
            t0 = time.perf_counter()
            for i in range(4):
                executor.submit(i, {"x": i})
            for _ in range(4):
                executor.wait_one()
            wall = time.perf_counter() - t0
        assert wall < 0.35, f"4 x 100ms sleeps took {wall:.2f}s at q=4"

    def test_worker_exception_reraised(self):
        def broken(params):
            raise ZeroDivisionError("engine blew up")

        with ThreadPoolExecutor(broken, max_workers=2) as executor:
            executor.submit(0, {"x": 1})
            with pytest.raises(ZeroDivisionError, match="engine blew up"):
                executor.wait_one()

    def test_seed_threaded_through(self):
        objective = _RecordingObjective()
        with ThreadPoolExecutor(objective, max_workers=2) as executor:
            executor.submit(0, {"x": 5}, seed=42)
            outcome = executor.wait_one()
        assert outcome.seed == 42
        assert objective.calls == [(5.0, 42)]

    def test_thread_safe_storm_objective(self):
        """Concurrent cache hits/misses keep counters consistent."""
        objective = _storm_objective()
        configs = [
            {"uniform_hint": 1 + (i % 3)} for i in range(12)
        ]
        with ThreadPoolExecutor(objective, max_workers=4) as executor:
            for i, params in enumerate(configs):
                executor.submit(i, params)
            outcomes = [executor.wait_one() for _ in range(len(configs))]
        info = objective.cache_info()
        assert info["hits"] + info["misses"] == 12
        by_hint: dict[object, set[float]] = {}
        for outcome in outcomes:
            by_hint.setdefault(outcome.config["uniform_hint"], set()).add(
                outcome.value
            )
        for values in by_hint.values():
            assert len(values) == 1, "same config measured differently"


class TestProcessPoolExecutor:
    def test_storm_objective_round_trip(self):
        objective = _storm_objective()
        with ProcessPoolExecutor(objective, max_workers=2) as executor:
            executor.submit(0, {"uniform_hint": 1})
            executor.submit(1, {"uniform_hint": 2})
            outcomes = sorted(
                (executor.wait_one() for _ in range(2)),
                key=lambda o: o.eval_id,
            )
        assert [o.eval_id for o in outcomes] == [0, 1]
        for outcome in outcomes:
            assert outcome.value > 0.0
            assert outcome.run is not None
        # Workers hold private copies; parent-side counters untouched.
        parent_info = objective.cache_info()
        assert parent_info["hits"] == 0 and parent_info["misses"] == 0

    def test_matches_serial_values(self):
        serial = _storm_objective()
        expected = {
            hint: serial.measure({"uniform_hint": hint}).throughput_tps
            for hint in (1, 2, 3)
        }
        with ProcessPoolExecutor(_storm_objective(), max_workers=2) as executor:
            for i, hint in enumerate((1, 2, 3)):
                executor.submit(i, {"uniform_hint": hint})
            got = {
                o.config["uniform_hint"]: o.value
                for o in (executor.wait_one() for _ in range(3))
            }
        assert got == expected


class TestStormObjectivePickling:
    def test_lock_survives_round_trip(self):
        objective = _storm_objective(noise=GaussianNoise(0.05), seed=3)
        clone = pickle.loads(pickle.dumps(objective))
        assert isinstance(clone._lock, type(threading.Lock()))
        assert clone.measure({"uniform_hint": 2}).throughput_tps > 0.0


class TestMakeExecutor:
    @pytest.mark.parametrize(
        ("kind", "cls"),
        [
            ("serial", SerialExecutor),
            ("thread", ThreadPoolExecutor),
            ("process", ProcessPoolExecutor),
        ],
    )
    def test_known_kinds(self, kind, cls):
        executor = make_executor(kind, _plain, max_workers=2)
        try:
            assert isinstance(executor, cls)
            assert executor.kind == kind
        finally:
            executor.close()

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown executor kind"):
            make_executor("gpu", _plain)


class TestSeedDeterminism:
    """Satellite: same loop seed => same observations, serial or q=4."""

    def _observations(self, *, workers: int) -> set[tuple[tuple, float]]:
        objective = _storm_objective(noise=GaussianNoise(0.1), seed=11)
        topology = objective.topology
        cluster = objective.cluster
        optimizer, _ = make_synthetic_optimizer(
            "pla", topology, cluster, SYNTHETIC_BASE_CONFIG, 8, seed=0
        )
        executor = (
            ThreadPoolExecutor(objective, max_workers=workers)
            if workers > 1
            else None
        )
        try:
            loop = TuningLoop(
                objective,
                optimizer,
                max_steps=8,
                executor=executor,
                batch_size=workers if workers > 1 else None,
                seed=2024,
            )
            result = loop.run()
        finally:
            if executor is not None:
                executor.close()
        return {
            (tuple(sorted(o.config.items())), o.value)
            for o in result.observations
        }

    def test_serial_and_concurrent_observe_identically(self):
        serial = self._observations(workers=1)
        concurrent = self._observations(workers=4)
        assert serial == concurrent

    def test_noise_actually_varies_across_eval_indices(self):
        """Guard against the trivial pass where seeds are ignored."""
        objective = _storm_objective(noise=GaussianNoise(0.1), seed=11)
        values = {
            objective.measure({"uniform_hint": 2}, seed=seed).throughput_tps
            for seed in range(4)
        }
        assert len(values) > 1


def test_outcome_is_frozen():
    outcome = EvaluationOutcome(
        eval_id=0,
        config={"x": 1},
        value=1.0,
        run=None,
        seconds=0.0,
        turnaround_seconds=0.0,
    )
    with pytest.raises(AttributeError):
        outcome.value = 2.0
