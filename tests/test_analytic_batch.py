"""Batch analytic engine: bit-equivalence, faults, and the memo cache.

The vectorized :class:`~repro.storm.analytic_batch.AnalyticBatchModel`
is required to be *bit-compatible* with the scalar engine — equal
:class:`MeasuredRun` dataclasses, not just close throughputs — across
every bundled topology, contention condition, and failure regime.
These tests pin that contract (hypothesis-style over random
configurations), the fault/noise identity of
:meth:`StormObjective.measure_batch`, and the bounded LRU memo cache.
"""

from __future__ import annotations

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.presets import SYNTHETIC_BASE_CONFIG, default_cluster
from repro.experiments.runner import make_synthetic_optimizer
from repro.storm.analytic import AnalyticPerformanceModel, CalibrationParams
from repro.storm.analytic_batch import AnalyticBatchModel, make_analytic_screener
from repro.storm.cluster import paper_cluster, small_test_cluster
from repro.storm.config import TopologyConfig
from repro.storm.faults import FaultPlan, FaultSpec
from repro.storm.noise import GaussianNoise
from repro.storm.objective import StormObjective
from repro.sundog import sundog_topology
from repro.topology_gen.suite import CONDITIONS, make_topology


def random_config(topology, rng, *, n_workers: int, hint_max: int = 33):
    """One rng-driven configuration spanning feasible and infeasible."""
    return TopologyConfig(
        parallelism_hints={
            name: int(rng.integers(1, hint_max)) for name in topology
        },
        max_tasks=(
            int(rng.integers(len(list(topology)), 400))
            if rng.random() < 0.3
            else None
        ),
        batch_size=int(rng.integers(10, 50_001)),
        batch_parallelism=int(rng.integers(1, 65)),
        worker_threads=int(rng.integers(1, 17)),
        receiver_threads=int(rng.integers(1, 9)),
        ackers=int(rng.integers(0, 17)),
        num_workers=n_workers,
    )


#: (label, topology, cluster, calibration) cases covering every bundled
#: topology size, the contention/imbalance condition flags, and the
#: memory-cap edge regime (a huge batch timeout so memory failures are
#: not shadowed by latency failures on the tiny cluster).
MEMORY_EDGE_CAL = CalibrationParams(
    batch_timeout_ms=1e12, per_task_memory_mb=64.0
)


def _equivalence_cases():
    cases = []
    for size in ("small", "medium", "large"):
        for condition in CONDITIONS:
            cases.append(
                (
                    f"{size}/{condition.label}",
                    make_topology(size, condition),
                    paper_cluster(),
                    None,
                )
            )
    cases.append(("sundog", sundog_topology(), paper_cluster(), None))
    cases.append(
        (
            "small/memory-edge",
            make_topology("small"),
            small_test_cluster(),
            MEMORY_EDGE_CAL,
        )
    )
    cases.append(
        (
            "medium/contended/memory-edge",
            make_topology("medium", CONDITIONS[3]),
            small_test_cluster(),
            MEMORY_EDGE_CAL,
        )
    )
    return cases


EQUIVALENCE_CASES = _equivalence_cases()


class TestBatchScalarEquivalence:
    """Satellite (c): batch == scalar, as full dataclass equality."""

    @pytest.mark.parametrize(
        "label, topology, cluster, calibration",
        EQUIVALENCE_CASES,
        ids=[case[0] for case in EQUIVALENCE_CASES],
    )
    def test_runs_are_bit_identical(self, label, topology, cluster, calibration):
        model = AnalyticPerformanceModel(topology, cluster, calibration=calibration)
        rng = np.random.default_rng(hash(label) % 2**32)
        configs = [
            random_config(topology, rng, n_workers=cluster.n_machines)
            for _ in range(40)
        ]
        scalar = [model.evaluate_noise_free(c) for c in configs]
        batched = model.evaluate_noise_free_batch(configs)
        assert scalar == batched
        # Throughputs bit-identical, not merely approximately equal.
        batch = model.batch_model.evaluate(configs)
        for i, run in enumerate(scalar):
            assert run.throughput_tps == float(batch.throughput_tps[i])
            assert run.failed == bool(batch.failed[i])

    def test_failure_regimes_actually_exercised(self):
        """The sweep must cover ok + capacity/latency/memory failures,
        or the equivalence claim is weaker than it reads."""
        reasons: set[str] = set()
        ok = 0
        for label, topology, cluster, calibration in EQUIVALENCE_CASES:
            model = AnalyticPerformanceModel(
                topology, cluster, calibration=calibration
            )
            rng = np.random.default_rng(hash(label) % 2**32)
            configs = [
                random_config(topology, rng, n_workers=cluster.n_machines)
                for _ in range(40)
            ]
            for run in model.evaluate_noise_free_batch(configs):
                if run.failed:
                    reasons.add(run.failure_reason.split(":")[0])
                else:
                    ok += 1
        assert ok > 0
        assert any("memory" in r for r in reasons), reasons
        assert len(reasons) >= 2, reasons

    @given(seed=st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=50, deadline=None)
    def test_property_random_configs_match(self, seed):
        """Hypothesis sweep on the contended medium topology."""
        topology, cluster = _PROPERTY_CASE
        model = _property_model()
        rng = np.random.default_rng(seed)
        config = random_config(topology, rng, n_workers=cluster.n_machines)
        scalar = model.evaluate_noise_free(config)
        (batched,) = model.evaluate_noise_free_batch([config])
        assert scalar == batched

    def test_empty_batch(self):
        model = _property_model()
        assert model.evaluate_noise_free_batch([]) == []
        batch = model.batch_model.evaluate([])
        assert batch.runs() == []


_PROPERTY_CASE = (make_topology("medium", CONDITIONS[3]), paper_cluster())
_PROPERTY_MODEL: list[AnalyticPerformanceModel] = []


def _property_model() -> AnalyticPerformanceModel:
    """One shared model so hypothesis examples reuse hoisted structures."""
    if not _PROPERTY_MODEL:
        _PROPERTY_MODEL.append(
            AnalyticPerformanceModel(_PROPERTY_CASE[0], _PROPERTY_CASE[1])
        )
    return _PROPERTY_MODEL[0]


def _objective(**kwargs) -> StormObjective:
    topology = make_topology("small")
    cluster = default_cluster()
    _, codec = make_synthetic_optimizer(
        "pla", topology, cluster, SYNTHETIC_BASE_CONFIG, 8, seed=0
    )
    return StormObjective(topology, cluster, codec, fidelity="analytic", **kwargs)


class TestMeasureBatch:
    """measure_batch == a serial loop of measure, by construction."""

    def test_matches_serial_measures(self):
        params = [{"uniform_hint": h} for h in range(1, 9)]
        serial = [_objective().measure(p) for p in params]
        batched = _objective().measure_batch(params)
        assert serial == batched

    def test_noise_and_seeds_replay_identically(self):
        params = [{"uniform_hint": h} for h in (2, 3, 2, 5)]
        seeds = [11, 22, 11, 44]
        a = _objective(noise=GaussianNoise(0.1), seed=5)
        b = _objective(noise=GaussianNoise(0.1), seed=5)
        serial = [a.measure(p, seed=s) for p, s in zip(params, seeds)]
        batched = b.measure_batch(params, seeds=seeds)
        assert serial == batched

    def test_fault_plan_respects_per_evaluation_identity(self):
        """Satellite (c): batch fault decisions replay the serial ones.

        Under an active :class:`FaultPlan` each evaluation's fault
        decision is a pure function of (plan seed, config, eval seed);
        a batch must reproduce the serial decisions row for row.
        """
        faults = FaultSpec.chaos(0.6, seed=3)
        params = [{"uniform_hint": h} for h in range(1, 11)]
        seeds = list(range(100, 110))
        a = _objective(faults=FaultPlan(faults), seed=9)
        b = _objective(faults=FaultPlan(faults), seed=9)
        serial = [a.measure(p, seed=s) for p, s in zip(params, seeds)]
        batched = b.measure_batch(params, seeds=seeds)
        assert serial == batched
        labels = {r.failure_reason for r in serial if r.failed}
        assert labels, "chaos plan at 0.6 should fault at least once"

    def test_duplicates_counted_as_serial_loop_would(self):
        objective = _objective()
        params = [{"uniform_hint": 2}] * 3 + [{"uniform_hint": 4}]
        runs = objective.measure_batch(params)
        assert runs[0] == runs[1] == runs[2]
        info = objective.cache_info()
        assert info["hits"] == 2 and info["misses"] == 2
        assert objective.n_engine_evaluations == 2

    def test_seed_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="seeds"):
            _objective().measure_batch([{"uniform_hint": 2}], seeds=[1, 2])

    def test_empty_batch(self):
        assert _objective().measure_batch([]) == []


class TestBoundedMemoCache:
    """Satellite (a): the memo cache is a bounded LRU."""

    def test_size_bound_and_eviction_count(self):
        objective = _objective(cache_max_entries=4)
        for h in range(1, 9):
            objective.measure({"uniform_hint": h})
        info = objective.cache_info()
        assert info["size"] == 4
        assert info["evictions"] == 4
        assert info["max_entries"] == 4

    def test_lru_order_keeps_recently_used(self):
        objective = _objective(cache_max_entries=2)
        objective.measure({"uniform_hint": 1})
        objective.measure({"uniform_hint": 2})
        objective.measure({"uniform_hint": 1})  # refresh 1
        objective.measure({"uniform_hint": 3})  # evicts 2, not 1
        hits_before = objective.cache_info()["hits"]
        objective.measure({"uniform_hint": 1})
        assert objective.cache_info()["hits"] == hits_before + 1
        assert objective.cache_info()["size"] == 2

    def test_unbounded_when_none(self):
        objective = _objective(cache_max_entries=None)
        for h in range(1, 9):
            objective.measure({"uniform_hint": h})
        info = objective.cache_info()
        assert info["size"] == 8
        assert info["evictions"] == 0
        assert info["max_entries"] is None

    @pytest.mark.parametrize("bad", [0, -1])
    def test_validation(self, bad):
        with pytest.raises(ValueError, match="cache_max_entries"):
            _objective(cache_max_entries=bad)

    def test_batch_path_shares_the_bound(self):
        objective = _objective(cache_max_entries=3)
        objective.measure_batch([{"uniform_hint": h} for h in range(1, 7)])
        info = objective.cache_info()
        assert info["size"] == 3
        assert info["evictions"] == 3

    def test_legacy_pickle_upgrades_in_place(self):
        """Checkpoints written before the bounded cache still load."""
        objective = _objective()
        state = objective.__getstate__()
        state["_cache"] = dict(state["_cache"])
        state.pop("cache_max_entries")
        state.pop("cache_evictions")
        revived = StormObjective.__new__(StormObjective)
        revived.__setstate__(state)
        assert revived.cache_max_entries == 50_000
        assert revived.cache_evictions == 0
        revived.measure({"uniform_hint": 2})  # cache still functions

    def test_round_trips_through_pickle(self):
        objective = _objective(cache_max_entries=7)
        objective.measure({"uniform_hint": 2})
        revived = pickle.loads(pickle.dumps(objective))
        assert revived.cache_max_entries == 7
        assert revived.cache_info()["size"] == 1


class TestAnalyticScreener:
    """The BO candidate screener built on the batch model."""

    def test_mask_matches_scalar_feasibility(self):
        topology = make_topology("small")
        cluster = default_cluster()
        _, codec = make_synthetic_optimizer(
            "bo", topology, cluster, SYNTHETIC_BASE_CONFIG, 8, seed=0
        )
        screen = make_analytic_screener(codec, topology, cluster)
        model = AnalyticPerformanceModel(topology, cluster)
        rng = np.random.default_rng(0)
        candidates = rng.random((32, codec.space.dim))
        mask = screen(candidates)
        assert mask.shape == (32,) and mask.dtype == bool
        for row, keep in zip(candidates, mask):
            config = codec.decode(codec.space.decode(row))
            assert keep == (not model.evaluate_noise_free(config).failed)

    def test_wired_into_runner_bo_strategies(self):
        topology = make_topology("small")
        cluster = default_cluster()
        for strategy in ("bo", "ibo"):
            opt, _ = make_synthetic_optimizer(
                strategy,
                topology,
                cluster,
                SYNTHETIC_BASE_CONFIG,
                8,
                seed=0,
                fidelity="analytic",
            )
            assert opt.acq.screen is not None
            opt_plain, _ = make_synthetic_optimizer(
                strategy, topology, cluster, SYNTHETIC_BASE_CONFIG, 8, seed=0
            )
            assert opt_plain.acq.screen is None


class TestBatchModelDirect:
    """Shape/label contract of the array-valued pass."""

    def test_batch_evaluation_arrays(self):
        topology = make_topology("small")
        model = AnalyticBatchModel(topology, paper_cluster())
        rng = np.random.default_rng(7)
        configs = [
            random_config(topology, rng, n_workers=80) for _ in range(16)
        ]
        batch = model.evaluate(configs)
        assert batch.throughput_tps.shape == (16,)
        assert batch.failed.shape == (16,)
        assert np.all(batch.throughput_tps[batch.failed] == 0.0)
        scalar = AnalyticPerformanceModel(topology, paper_cluster())
        for i, config in enumerate(configs):
            run = scalar.evaluate_noise_free(config)
            if not run.failed:
                assert (
                    run.details["limiting_cap"] == batch.limiting_cap[i]
                )
