"""Regression tests for the suggest fast path and tuning-loop fixes.

Covers the bugfix PR: patience accounting in :class:`TuningLoop`,
stable per-cell seeding in the experiment runner, PSD-safe posterior
sampling, the rank-1 incremental GP update (equivalence with a full
refactorization), and evaluation memoization in
:class:`StormObjective`.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.baselines import Optimizer
from repro.core.gp import GaussianProcess
from repro.core.loop import TuningLoop
from repro.core.optimizer import BayesianOptimizer
from repro.core.parameters import (
    FloatParameter,
    IntParameter,
    ParameterSpace,
)
from repro.experiments.presets import SYNTHETIC_BASE_CONFIG
from repro.experiments.runner import cell_seed
from repro.storm.cluster import paper_cluster
from repro.storm.noise import GaussianNoise
from repro.storm.objective import StormObjective
from repro.storm.spaces import ParallelismCodec
from repro.topology_gen.suite import make_topology


class _Scripted(Optimizer):
    """Plays back a fixed value sequence; config carries the step index."""

    def __init__(self, n: int) -> None:
        self.i = 0
        self.n = n
        self.told: list[float] = []

    def ask(self) -> dict[str, object]:
        return {"step": self.i}

    def tell(self, config, value) -> None:
        self.told.append(float(value))
        self.i += 1

    @property
    def done(self) -> bool:
        return self.i >= self.n

    def best(self):
        best = int(np.argmax(self.told))
        return {"step": best}, self.told[best]


def _run_patience(values, patience, min_improvement):
    optimizer = _Scripted(len(values))
    loop = TuningLoop(
        lambda config: values[config["step"]],
        optimizer,
        max_steps=len(values),
        patience=patience,
        min_improvement=min_improvement,
    )
    return loop.run()


class TestPatienceAccounting:
    def test_subthreshold_gains_do_not_reset_patience(self):
        # Each step gains < 10%, so the run is stale from step 1 on and
        # must stop after `patience` stale steps.  The pre-fix loop left
        # best_seen at 100, so the cumulative drift eventually cleared
        # the threshold and wrongly reset the counter.
        values = [100.0, 105.0, 110.0, 116.0, 130.0, 140.0]
        result = _run_patience(values, patience=3, min_improvement=0.1)
        assert result.n_steps == 4
        assert result.metadata["stopped_early"] is True
        # best_value still tracks the true running max, not the last
        # above-threshold jump.
        assert result.best_value == 116.0

    def test_real_improvement_resets_patience(self):
        values = [100.0, 90.0, 95.0, 180.0, 100.0, 101.0, 102.0, 103.0]
        result = _run_patience(values, patience=3, min_improvement=0.1)
        assert result.n_steps == 7
        assert result.best_value == 180.0

    def test_no_patience_runs_full_budget(self):
        values = [5.0, 4.0, 3.0, 2.0, 1.0]
        result = _run_patience(values, patience=None, min_improvement=0.1)
        assert result.n_steps == 5
        assert result.best_value == 5.0


class TestCellSeed:
    def test_deterministic_and_pinned(self):
        # blake2b-based, so stable across processes and PYTHONHASHSEED.
        assert cell_seed(0, "baseline", "small", "bo") == 10476002521655852643
        assert cell_seed(7, "sine", "large", "pla") == 16222665189167647651

    def test_distinct_across_grid_and_passes(self):
        conditions = ["baseline", "sine", "spike"]
        sizes = ["small", "large"]
        strategies = ["bo", "ibo", "pla", "ipla"]
        seeds = set()
        for condition in conditions:
            for size in sizes:
                for strategy in strategies:
                    base = cell_seed(0, condition, size, strategy)
                    for pass_idx in range(2):
                        seeds.add(base + pass_idx)
        assert len(seeds) == len(conditions) * len(sizes) * len(strategies) * 2

    def test_base_seed_separates_repetitions(self):
        assert cell_seed(0, "baseline", "small", "bo") != cell_seed(
            1, "baseline", "small", "bo"
        )


class TestGaussianProcessFastPath:
    def _toy_data(self, n=14, dim=3, seed=0):
        rng = np.random.default_rng(seed)
        X = rng.random((n, dim))
        y = np.sin(3.0 * X[:, 0]) + X[:, 1] ** 2 + 0.1 * X[:, 2]
        return X, y

    def test_incremental_update_matches_full_refactorization(self):
        X, y = self._toy_data()
        gp = GaussianProcess("matern52", 3)
        gp.fit(X[:9], y[:9], optimize_hyperparams=True)
        for i in range(9, len(y)):
            gp.update(X[i], y[i])
        assert gp.n_incremental_updates == len(y) - 9
        assert gp.n_observations == len(y)

        reference = GaussianProcess(gp.kernel.clone(), normalize_y=False)
        reference._log_noise = gp._log_noise
        reference._y_mean, reference._y_std = gp._y_mean, gp._y_std
        reference._refresh_posterior(X, (y - gp._y_mean) / gp._y_std)

        probes = np.random.default_rng(1).random((32, 3))
        mean_inc, std_inc = gp.predict(probes)
        mean_ref, std_ref = reference.predict(probes)
        np.testing.assert_allclose(mean_inc, mean_ref, atol=1e-8, rtol=0)
        np.testing.assert_allclose(std_inc, std_ref, atol=1e-8, rtol=0)

    def test_update_on_unfitted_gp_falls_back_to_fit(self):
        gp = GaussianProcess("rbf", 2)
        gp.update(np.array([0.5, 0.5]), 1.0)
        assert gp.is_fitted
        assert gp.n_observations == 1

    def test_update_with_duplicate_point_stays_finite(self):
        X, y = self._toy_data(n=8, dim=3)
        gp = GaussianProcess("matern52", 3)
        gp.fit(X, y, optimize_hyperparams=False)
        gp.update(X[0], y[0])  # exact duplicate: degenerate extension
        mean, std = gp.predict(X)
        assert np.all(np.isfinite(mean)) and np.all(np.isfinite(std))
        assert gp.n_observations == len(y) + 1

    def test_predict_mean_only(self):
        X, y = self._toy_data(n=10, dim=3)
        gp = GaussianProcess("matern52", 3)
        gp.fit(X, y, optimize_hyperparams=False)
        probes = np.random.default_rng(2).random((5, 3))
        mean_only = gp.predict(probes, return_std=False)
        mean, _ = gp.predict(probes)
        assert isinstance(mean_only, np.ndarray)
        np.testing.assert_allclose(mean_only, mean)

    def test_predict_mean_only_unfitted(self):
        gp = GaussianProcess("rbf", 2)
        mean = gp.predict(np.zeros((3, 2)), return_std=False)
        assert mean.shape == (3,)

    def test_sample_posterior_near_duplicate_inputs(self):
        # Near-duplicate rows push the conditional covariance slightly
        # indefinite; sampling must clamp instead of raising.
        X = np.array([[0.5, 0.5], [0.5, 0.5 + 1e-12], [0.2, 0.8]])
        y = np.array([1.0, 1.0, 2.0])
        gp = GaussianProcess("rbf", 2)
        gp.fit(X, y, optimize_hyperparams=False)
        probes = np.vstack([X, X])
        samples = gp.sample_posterior(probes, 16, np.random.default_rng(0))
        assert samples.shape == (16, 6)
        assert np.all(np.isfinite(samples))


class TestOptimizerRefitSchedule:
    def _space(self):
        return ParameterSpace(
            [
                IntParameter("a", 1, 32),
                FloatParameter("b", 0.0, 1.0),
                IntParameter("c", 1, 8),
            ]
        )

    @staticmethod
    def _value(config) -> float:
        return float(config["a"]) - (config["b"] - 0.3) ** 2 + config["c"]

    def test_schedule_mixes_refits_and_updates(self):
        optimizer = BayesianOptimizer(
            self._space(), seed=0, init_points=4, refit_every=4
        )
        for _ in range(16):
            config = optimizer.ask()
            optimizer.tell(config, self._value(config))
        telemetry = optimizer.telemetry
        assert telemetry["gp_incremental_updates"] > 0
        assert telemetry["gp_full_refits"] > 0
        assert optimizer.gp.n_observations == optimizer.n_observed
        assert telemetry["acq_pool_size_last"] > 0

    def test_refit_every_one_never_updates_incrementally(self):
        optimizer = BayesianOptimizer(
            self._space(), seed=0, init_points=4, refit_every=1
        )
        for _ in range(10):
            config = optimizer.ask()
            optimizer.tell(config, self._value(config))
        assert optimizer.telemetry["gp_incremental_updates"] == 0

    def test_resume_mid_cycle_is_deterministic(self):
        def advance(opt, steps):
            configs = []
            for _ in range(steps):
                config = opt.ask()
                opt.tell(config, self._value(config))
                configs.append(config)
            return configs

        optimizer = BayesianOptimizer(
            self._space(), seed=3, init_points=4, refit_every=5
        )
        advance(optimizer, 12)  # stop mid refit cycle
        state = optimizer.state_dict()
        resumed = BayesianOptimizer.from_state_dict(state)
        assert advance(optimizer, 4) == advance(resumed, 4)


class TestObjectiveMemoization:
    def _objective(self, **kwargs):
        topology = make_topology("small")
        cluster = paper_cluster()
        codec = ParallelismCodec(topology, cluster, SYNTHETIC_BASE_CONFIG)
        return StormObjective(topology, cluster, codec, **kwargs), codec

    def test_deterministic_objective_memoizes(self):
        objective, codec = self._objective()
        assert objective.memoize
        params = codec.space.decode(
            codec.space.latin_hypercube(1, np.random.default_rng(0))[0]
        )
        first = objective(params)
        second = objective(params)
        assert first == second
        assert objective.n_evaluations == 2
        assert objective.n_engine_evaluations == 1
        info = objective.cache_info()
        assert info == {
            "enabled": True,
            "hits": 1,
            "misses": 1,
            "size": 1,
            "evictions": 0,
            "max_entries": 50_000,
        }

    def test_noisy_objective_does_not_memoize(self):
        objective, codec = self._objective(noise=GaussianNoise(0.05), seed=1)
        assert not objective.memoize
        params = codec.space.decode(
            codec.space.latin_hypercube(1, np.random.default_rng(0))[0]
        )
        objective(params)
        objective(params)
        assert objective.n_engine_evaluations == 2
        assert objective.cache_info()["enabled"] is False

    def test_explicit_override_wins(self):
        objective, _ = self._objective(noise=GaussianNoise(0.05), memoize=True)
        assert objective.memoize
        objective, _ = self._objective(memoize=False)
        assert not objective.memoize

    def test_measure_config_bypasses_cache(self):
        objective, codec = self._objective()
        params = codec.space.decode(
            codec.space.latin_hypercube(1, np.random.default_rng(0))[0]
        )
        objective(params)
        config = codec.decode(params)
        objective.measure_config(config)
        objective.measure_config(config)
        assert objective.n_engine_evaluations == 3
        assert objective.cache_info()["size"] == 1

    def test_loop_threads_telemetry_into_metadata(self):
        objective, codec = self._objective()
        optimizer = BayesianOptimizer(codec.space, seed=0, init_points=4)
        result = TuningLoop(
            objective, optimizer, max_steps=8, repeat_best=2
        ).run()
        telemetry = result.metadata["optimizer_telemetry"]
        assert telemetry["gp_full_refits"] > 0
        cache = result.metadata["objective_cache"]
        assert cache["enabled"] is True
        assert cache["misses"] >= result.n_steps


@pytest.mark.parametrize("kernel", ["rbf", "matern32", "matern52"])
@pytest.mark.parametrize("ard", [True, False])
def test_grad_dot_matches_materialized_gradients(kernel, ard):
    """The fused inner-product path equals sum(W * dK) per hyperparameter."""
    from repro.core.kernels import make_kernel

    rng = np.random.default_rng(4)
    X = rng.random((11, 4))
    W = rng.standard_normal((11, 11))
    k = make_kernel(kernel, 4, ard=ard)
    k.theta = rng.normal(0.0, 0.3, size=k.n_hyperparameters)
    _, grads = k.value_and_grads(X)
    expected = np.array([float(np.sum(W * g)) for g in grads])
    np.testing.assert_allclose(k.grad_dot(X, W), expected, atol=1e-10)
