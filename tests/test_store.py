"""Study-store contract, backends, migration, and the store CLI.

The shared contract suite runs against both backends: whatever one can
persist and enumerate, the other must too, byte-identically under
:func:`repro.core.checkpoint.canonical_history`.  Backend-specific
classes pin the JSONL layout compatibility (legacy stems, the
collision-proof digest suffix, index versioning) and the SQLite schema
machinery (migration runner, future-version refusal, torn-row
diagnostics).
"""

from __future__ import annotations

import json
import sqlite3

import pytest

from repro.cli import main as cli_main
from repro.core.checkpoint import (
    TuningCheckpoint,
    canonical_history,
    histories_match,
)
from repro.core.history import Observation, TuningResult
from repro.core.loop import TuningLoop
from repro.core.optimizer import BayesianOptimizer
from repro.core.parameters import IntParameter, ParameterSpace
from repro.store import (
    JsonlStudyStore,
    SchemaVersionError,
    SqliteStudyStore,
    cell_stem,
    migrate_store,
    open_store,
    sanitize_label,
)
from repro.store.jsonl import INDEX_NAME, INDEX_VERSION
from repro.store.sqlite import MIGRATIONS, SCHEMA_VERSION


def _objective(params):
    return float((int(params["x"]) * 7) % 13)


def _space():
    return ParameterSpace([IntParameter("x", 1, 32)])


def _observations(n=3):
    return [
        Observation(step=i, config={"x": i + 1}, value=float(i * 10))
        for i in range(n)
    ]


def _checkpoint(n=3, state=None):
    return TuningCheckpoint(
        strategy="bo",
        seed=7,
        max_steps=10,
        observations=_observations(n),
        optimizer_state=state,
    )


def _results():
    result = TuningResult(strategy="bo")
    result.observations.extend(_observations(2))
    result.metadata["pass"] = 0
    return [result]


@pytest.fixture(params=["jsonl", "sqlite"])
def store(request, tmp_path):
    if request.param == "jsonl":
        backend = JsonlStudyStore(tmp_path / "store-dir")
    else:
        backend = SqliteStudyStore(tmp_path / "store.db")
    with backend:
        yield backend


class TestStoreContract:
    """Both backends must satisfy every test in this class."""

    def test_checkpoint_round_trip(self, store):
        ckpt = _checkpoint(state={"kind": "test", "n": 3})
        store.save_checkpoint("synthetic", "a/b", "pass0", ckpt)
        loaded = store.load_checkpoint("synthetic", "a/b", "pass0")
        assert loaded is not None
        assert loaded.strategy == "bo"
        assert loaded.seed == 7
        assert loaded.max_steps == 10
        assert loaded.optimizer_state == {"kind": "test", "n": 3}
        assert canonical_history(loaded.observations) == canonical_history(
            ckpt.observations
        )

    def test_derived_seed_beyond_64_bits_round_trips(self, store):
        # derive_seed routinely exceeds SQLite's signed INTEGER range;
        # both backends must round-trip it losslessly.
        from repro.core.seeding import derive_seed

        big = derive_seed(123456789, "cell", "bo")
        assert big > 2**63
        ckpt = _checkpoint(1)
        ckpt.seed = big
        store.save_checkpoint("s", "c", "r", ckpt)
        assert store.load_checkpoint("s", "c", "r").seed == big

    def test_missing_documents_are_none(self, store):
        assert store.load_checkpoint("s", "c", "pass0") is None
        assert store.load_results("s", "c") is None
        assert store.load_state("s", "c", "sidecar") is None
        assert not store.has_results("s", "c")

    def test_checkpoint_rewrite_replaces_whole_state(self, store):
        store.save_checkpoint("s", "c", "r", _checkpoint(5))
        store.save_checkpoint("s", "c", "r", _checkpoint(2))
        loaded = store.load_checkpoint("s", "c", "r")
        assert loaded.completed == 2

    def test_results_round_trip(self, store):
        results = _results()
        store.save_results("synthetic", "a/b", results)
        assert store.has_results("synthetic", "a/b")
        loaded = store.load_results("synthetic", "a/b")
        assert loaded is not None
        assert len(loaded) == 1
        assert loaded[0].strategy == "bo"
        assert loaded[0].metadata["pass"] == 0
        assert histories_match(
            loaded[0].observations, results[0].observations
        )

    def test_state_round_trip(self, store):
        data = {"version": 1, "mode": "continuous", "epochs_completed": 2}
        store.save_state("drift", "diurnal/cold", "continuous", data)
        assert store.load_state("drift", "diurnal/cold", "continuous") == data

    def test_empty_cell_label_is_a_valid_address(self, store):
        store.save_checkpoint("continuous", "", "epoch-0000", _checkpoint())
        store.save_state("continuous", "", "continuous", {"version": 1})
        assert store.load_checkpoint("continuous", "", "epoch-0000") is not None
        assert store.runs("continuous", "") == ["epoch-0000"]
        assert store.state_names("continuous", "") == ["continuous"]

    def test_enumeration(self, store):
        store.save_checkpoint("synthetic", "a", "pass0", _checkpoint(2))
        store.save_checkpoint("synthetic", "a", "pass1", _checkpoint(3))
        store.save_checkpoint("synthetic", "b", "pass0", _checkpoint(1))
        store.save_results("synthetic", "b", _results())
        store.save_state("sundog", "arm", "notes", {"k": 1})
        assert store.studies() == ["sundog", "synthetic"]
        assert store.cells("synthetic") == ["a", "b"]
        assert store.runs("synthetic", "a") == ["pass0", "pass1"]
        assert store.state_names("sundog", "arm") == ["notes"]
        assert store.observation_count("synthetic", "a") == 5
        assert store.has_results("synthetic", "b")
        assert not store.has_results("synthetic", "a")

    def test_checkpoint_slot_is_loop_compatible(self, store, tmp_path):
        slot = store.checkpoint_slot("synthetic", "cell", "pass0")
        assert "synthetic" in slot.describe()
        result = TuningLoop(
            _objective,
            BayesianOptimizer(_space(), seed=3),
            max_steps=4,
            seed=11,
            checkpoint=slot,
        ).run()
        loaded = slot.load()
        assert loaded.completed == 4
        assert histories_match(loaded.observations, result.observations)

    def test_schema_version_reports_current(self, store):
        assert store.schema_version() >= 1

    def test_vacuum_is_safe_on_live_store(self, store):
        store.save_checkpoint("s", "c", "r", _checkpoint())
        store.vacuum()
        assert store.load_checkpoint("s", "c", "r") is not None


class TestLabelCollisions:
    """The satellite-1 regression: sanitize-only stems collide."""

    def test_sanitized_labels_collide_without_digest(self):
        assert sanitize_label("a/b") == sanitize_label("a b") == "a_b"
        assert cell_stem("a/b") != cell_stem("a b")
        for label in ("a/b", "a b"):
            assert cell_stem(label).startswith("a_b-")

    @pytest.mark.parametrize("backend", ["jsonl", "sqlite"])
    def test_colliding_labels_do_not_clobber(self, tmp_path, backend):
        store = (
            JsonlStudyStore(tmp_path)
            if backend == "jsonl"
            else SqliteStudyStore(tmp_path / "s.db")
        )
        with store:
            store.save_checkpoint("s", "a/b", "pass0", _checkpoint(2))
            store.save_checkpoint("s", "a b", "pass0", _checkpoint(5))
            assert store.load_checkpoint("s", "a/b", "pass0").completed == 2
            assert store.load_checkpoint("s", "a b", "pass0").completed == 5


class TestJsonlBackend:
    def test_layout_is_bit_compatible_with_pre_store_names(self, tmp_path):
        store = JsonlStudyStore(tmp_path)
        store.save_checkpoint("synthetic", "a/b", "pass0", _checkpoint())
        store.save_results("synthetic", "a/b", _results())
        store.save_state("continuous", "", "continuous", {"version": 1})
        names = {p.name for p in tmp_path.iterdir()}
        stem = cell_stem("a/b")
        assert f"{stem}.pass0.jsonl" in names
        assert f"{stem}.done.json" in names
        # Empty cell → bare document names: the continuous-tuning
        # sidecar stays the literal continuous.json.
        assert "continuous.json" in names

    def test_legacy_digestless_files_still_load(self, tmp_path):
        store = JsonlStudyStore(tmp_path)
        store.save_checkpoint("s", "a/b", "pass0", _checkpoint(4))
        store.save_results("s", "a/b", _results())
        stem = cell_stem("a/b")
        legacy = sanitize_label("a/b")
        for suffix in ("pass0.jsonl", "done.json"):
            (tmp_path / f"{stem}.{suffix}").rename(
                tmp_path / f"{legacy}.{suffix}"
            )
        assert store.load_checkpoint("s", "a/b", "pass0").completed == 4
        assert store.load_results("s", "a/b") is not None
        assert store.has_results("s", "a/b")

    def test_index_version_mismatch_raises(self, tmp_path):
        (tmp_path / INDEX_NAME).write_text(
            json.dumps({"version": INDEX_VERSION + 1, "cells": {}})
        )
        store = JsonlStudyStore(tmp_path)
        with pytest.raises(SchemaVersionError):
            store.save_checkpoint("s", "c", "r", _checkpoint())

    def test_vacuum_removes_crash_leftovers(self, tmp_path):
        store = JsonlStudyStore(tmp_path)
        store.save_checkpoint("s", "c", "r", _checkpoint())
        (tmp_path / "run.jsonl.abc123.tmp").write_text("torn")
        store.vacuum()
        assert not list(tmp_path.glob("*.tmp"))
        assert store.load_checkpoint("s", "c", "r") is not None


class TestSqliteBackend:
    def test_schema_version_is_current_after_open(self, tmp_path):
        with SqliteStudyStore(tmp_path / "s.db") as store:
            assert store.schema_version() == SCHEMA_VERSION

    def test_future_schema_version_is_refused(self, tmp_path):
        path = tmp_path / "future.db"
        conn = sqlite3.connect(path)
        with conn:
            conn.execute(
                "CREATE TABLE schema_version (version INTEGER NOT NULL)"
            )
            conn.execute(
                "INSERT INTO schema_version (version) VALUES (?)",
                (SCHEMA_VERSION + 1,),
            )
        conn.close()
        with pytest.raises(SchemaVersionError, match="refusing"):
            SqliteStudyStore(path)

    def test_migration_runner_upgrades_old_databases(self, tmp_path):
        # Build a database as a v1-era build would have left it, then
        # reopen: the runner must apply exactly the missing migrations.
        path = tmp_path / "old.db"
        conn = sqlite3.connect(path)
        with conn:
            conn.execute(
                "CREATE TABLE schema_version (version INTEGER NOT NULL)"
            )
            for statement in MIGRATIONS[1]:
                conn.execute(statement)
            conn.execute("INSERT INTO schema_version (version) VALUES (1)")
        conn.close()
        with SqliteStudyStore(path) as store:
            assert store.schema_version() == SCHEMA_VERSION
            store.save_checkpoint("s", "c", "r", _checkpoint())
            assert store.load_checkpoint("s", "c", "r").completed == 3

    def test_malformed_row_warning_names_the_rowid(self, tmp_path):
        path = tmp_path / "s.db"
        store = SqliteStudyStore(path)
        store.save_checkpoint("s", "c", "r", _checkpoint(3))
        conn = sqlite3.connect(path)
        row = conn.execute(
            "SELECT rowid FROM observations WHERE step = 2"
        ).fetchone()
        with conn:
            conn.execute(
                "UPDATE observations SET payload = '{torn' WHERE rowid = ?",
                (row[0],),
            )
        conn.close()
        with pytest.warns(RuntimeWarning) as caught:
            loaded = store.load_checkpoint("s", "c", "r")
        message = str(caught[0].message)
        assert str(path) in message
        assert f"rowid {row[0]}" in message
        # The trusted prefix before the torn row survives.
        assert loaded.completed == 2
        store.close()

    def test_two_connections_share_one_database(self, tmp_path):
        path = tmp_path / "shared.db"
        writer = SqliteStudyStore(path)
        reader = SqliteStudyStore(path)
        writer.save_checkpoint("s", "c", "r", _checkpoint(4))
        assert reader.load_checkpoint("s", "c", "r").completed == 4
        writer.close()
        reader.close()


class TestSqliteBusyRetry:
    """SQLITE_BUSY surfaces as bounded retry-with-jitter, never a raw
    OperationalError (the multi-worker fleet hammers one .db)."""

    def _store(self, tmp_path):
        store = SqliteStudyStore(tmp_path / "busy.db")
        store._jitter.seed(0)
        return store

    def test_busy_errors_retry_with_backoff_until_success(self, tmp_path):
        store = self._store(tmp_path)
        sleeps = []
        store._sleep = sleeps.append
        attempts = {"n": 0}

        def flaky():
            attempts["n"] += 1
            if attempts["n"] <= 3:
                raise sqlite3.OperationalError("database is locked")
            return "done"

        assert store._retry(flaky) == "done"
        assert attempts["n"] == 4
        assert len(sleeps) == 3
        # Exponential backoff: each (jittered) delay at least doubles
        # the base of the previous one.
        assert sleeps[0] < sleeps[1] < sleeps[2]
        store.close()

    def test_busy_exhaustion_raises_store_error(self, tmp_path):
        from repro.store import StoreError
        from repro.store.sqlite import _BUSY_RETRIES

        store = self._store(tmp_path)
        store._sleep = lambda _s: None
        calls = {"n": 0}

        def always_locked():
            calls["n"] += 1
            raise sqlite3.OperationalError("database is locked")

        with pytest.raises(StoreError, match="stayed locked"):
            store._retry(always_locked)
        assert calls["n"] == _BUSY_RETRIES
        store.close()

    def test_non_busy_operational_errors_propagate_immediately(
        self, tmp_path
    ):
        store = self._store(tmp_path)
        sleeps = []
        store._sleep = sleeps.append

        def broken():
            raise sqlite3.OperationalError("no such table: nope")

        with pytest.raises(sqlite3.OperationalError, match="no such table"):
            store._retry(broken)
        assert sleeps == []  # not a contention error: no retry
        store.close()

    def test_two_threads_hammering_one_database(self, tmp_path):
        """Regression: concurrent writers on one .db must all land."""
        import threading

        path = tmp_path / "hammer.db"
        SqliteStudyStore(path).close()  # migrate once up front
        errors = []
        rounds = 25

        def hammer(worker):
            store = SqliteStudyStore(path)
            try:
                for i in range(rounds):
                    cell = f"w{worker}-c{i}"
                    store.save_checkpoint("s", cell, "r", _checkpoint(2))
                    lease = store.acquire_lease("s", cell, f"w{worker}", 30.0)
                    store.save_results("s", cell, _results())
                    store.commit_lease(lease)
            except Exception as exc:  # noqa: BLE001 - reported below
                errors.append(exc)
            finally:
                store.close()

        threads = [
            threading.Thread(target=hammer, args=(w,)) for w in range(2)
        ]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert errors == []
        with SqliteStudyStore(path) as store:
            cells = store.cells("s")
            assert len(cells) == 2 * rounds
            assert all(store.has_results("s", cell) for cell in cells)
            assert all(
                lease.status == "committed" for lease in store.leases("s")
            )


class TestOpenStore:
    def test_routing_by_suffix(self, tmp_path):
        assert isinstance(open_store(tmp_path / "x.db"), SqliteStudyStore)
        assert isinstance(open_store(tmp_path / "x.sqlite3"), SqliteStudyStore)
        assert isinstance(open_store(tmp_path / "ckpts"), JsonlStudyStore)

    def test_store_passes_through(self, tmp_path):
        store = JsonlStudyStore(tmp_path)
        assert open_store(store) is store


class TestMigration:
    def test_round_trip_is_byte_identical_for_a_seeded_bo_run(self, tmp_path):
        """The acceptance criterion: JSONL → SQLite → JSONL preserves a
        seeded 30-step BO run's history byte-for-byte."""
        source = JsonlStudyStore(tmp_path / "src")
        slot = source.checkpoint_slot("synthetic", "cell/a", "pass0")
        result = TuningLoop(
            _objective,
            BayesianOptimizer(_space(), seed=3),
            max_steps=30,
            seed=11,
            checkpoint=slot,
        ).run()
        source.save_results("synthetic", "cell/a", [result])
        source.save_state("synthetic", "cell/a", "notes", {"k": 1})

        db = SqliteStudyStore(tmp_path / "mid.db")
        report = migrate_store(source, db)
        assert report.checkpoints == 1
        assert report.observations == 30
        assert report.results == 1
        assert report.states == 1

        back = JsonlStudyStore(tmp_path / "dst")
        migrate_store(db, back)
        db.close()
        loaded = back.load_checkpoint("synthetic", "cell/a", "pass0")
        assert canonical_history(loaded.observations) == canonical_history(
            result.observations
        )
        assert back.load_state("synthetic", "cell/a", "notes") == {"k": 1}
        migrated_results = back.load_results("synthetic", "cell/a")
        assert histories_match(
            migrated_results[0].observations, result.observations
        )

    def test_resume_through_sqlite_matches_uninterrupted(self, tmp_path):
        """Kill-free variant of the resume criterion: a run cut at 15
        steps and resumed from the SQLite store must reproduce the
        uninterrupted 30-step history byte-identically."""

        def run(max_steps, slot):
            return TuningLoop(
                _objective,
                BayesianOptimizer(_space(), seed=3),
                max_steps=max_steps,
                seed=11,
                checkpoint=slot,
            ).run()

        full_store = SqliteStudyStore(tmp_path / "full.db")
        full = run(30, full_store.checkpoint_slot("s", "c", "r"))
        cut_store = SqliteStudyStore(tmp_path / "cut.db")
        run(15, cut_store.checkpoint_slot("s", "c", "r"))
        resumed = run(30, cut_store.checkpoint_slot("s", "c", "r"))
        assert resumed.metadata["resumed_steps"] == 15
        assert canonical_history(resumed.observations) == canonical_history(
            full.observations
        )
        full_store.close()
        cut_store.close()


class TestStoreCli:
    def _seed_store(self, spec):
        with open_store(spec) as store:
            store.save_checkpoint("synthetic", "a/b", "pass0", _checkpoint(3))
            store.save_results("synthetic", "a/b", _results())

    def test_ls_lists_studies_and_counts(self, tmp_path, capsys):
        self._seed_store(tmp_path / "dir")
        assert cli_main(["store", "ls", str(tmp_path / "dir")]) == 0
        out = capsys.readouterr().out
        assert "'synthetic'" in out
        assert "3 observation(s)" in out
        assert "done" in out

    def test_migrate_reports_counts(self, tmp_path, capsys):
        self._seed_store(tmp_path / "dir")
        dst = tmp_path / "out.db"
        code = cli_main(["store", "migrate", str(tmp_path / "dir"), str(dst)])
        assert code == 0
        out = capsys.readouterr().out
        assert "1 checkpoints" in out
        assert "3 observations" in out
        with open_store(dst) as store:
            assert store.load_checkpoint("synthetic", "a/b", "pass0") is not None

    def test_vacuum_exits_zero(self, tmp_path, capsys):
        self._seed_store(tmp_path / "s.db")
        assert cli_main(["store", "vacuum", str(tmp_path / "s.db")]) == 0
        assert "vacuumed" in capsys.readouterr().out

    def test_schema_mismatch_exits_two(self, tmp_path, capsys):
        path = tmp_path / "future.db"
        conn = sqlite3.connect(path)
        with conn:
            conn.execute(
                "CREATE TABLE schema_version (version INTEGER NOT NULL)"
            )
            conn.execute(
                "INSERT INTO schema_version (version) VALUES (?)",
                (SCHEMA_VERSION + 1,),
            )
        conn.close()
        assert cli_main(["store", "ls", str(path)]) == 2
        assert "SCHEMA VERSION MISMATCH" in capsys.readouterr().out

    def test_jsonl_index_mismatch_exits_two(self, tmp_path, capsys):
        root = tmp_path / "dir"
        root.mkdir()
        (root / INDEX_NAME).write_text(
            json.dumps({"version": INDEX_VERSION + 1, "cells": {}})
        )
        (root / "run.jsonl").write_text("")
        assert cli_main(["store", "ls", str(root)]) == 2
