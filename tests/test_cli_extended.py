"""Extended CLI behaviour: csv export, save/load, sensitivity, claims."""

from __future__ import annotations

import csv
from pathlib import Path

import pytest

from repro.cli import main
from repro.experiments.figures import table2_topologies
from repro.experiments.report import write_csv


class TestWriteCsv:
    def test_rows_csv(self, tmp_path):
        data = table2_topologies()
        paths = write_csv(data, tmp_path)
        assert len(paths) == 1
        with paths[0].open() as handle:
            rows = list(csv.DictReader(handle))
        assert len(rows) == 3
        assert rows[0]["Name"] == "small"

    def test_series_csv(self, tmp_path):
        from repro.experiments.figures import FigureData

        data = FigureData("Figure X", "test", series={"a": ([1.0, 2.0], [3.0, 4.0])})
        paths = write_csv(data, tmp_path)
        assert paths[0].name == "figure_x_series.csv"
        content = paths[0].read_text().splitlines()
        assert content[0] == "series,x,y"
        assert len(content) == 3

    def test_empty_exhibit(self, tmp_path):
        from repro.experiments.figures import FigureData

        assert write_csv(FigureData("Figure Y", "empty"), tmp_path) == []


class TestCliCsv:
    def test_table_with_csv_flag(self, tmp_path, capsys):
        assert main(["table2", "--csv", str(tmp_path / "out")]) == 0
        out = capsys.readouterr().out
        assert "wrote" in out
        assert (tmp_path / "out" / "table_ii.csv").exists()

    def test_fig3_with_csv(self, tmp_path, capsys):
        assert main(["fig3", "--csv", str(tmp_path)]) == 0
        assert (tmp_path / "figure_3.csv").exists()


class TestCliSensitivity:
    def test_sensitivity_report(self, capsys):
        assert main(["sensitivity"]) == 0
        out = capsys.readouterr().out
        assert "batch_size" in out
        assert "interaction factor" in out


@pytest.mark.slow
class TestCliStudies:
    def test_fig5_save_then_load(self, tmp_path, capsys, monkeypatch):
        """Run a study once with --save, re-render with --load."""
        import repro.cli as cli
        from repro.experiments import presets

        tiny = presets.Budget(
            steps=4, steps_extended=5, baseline_steps=6, passes=1, repeat_best=2
        )
        monkeypatch.setattr(presets, "default_budget", lambda: tiny)
        monkeypatch.setattr(cli, "default_budget", lambda: tiny)

        out_dir = str(tmp_path / "runs")
        assert main(["fig5", "--save", out_dir]) == 0
        first = capsys.readouterr().out
        assert "Figure 5" in first
        assert Path(out_dir, "synthetic.json").exists()

        assert main(["fig5", "--load", out_dir]) == 0
        second = capsys.readouterr().out
        assert "Figure 5" in second
        # Same rows re-rendered from the export.
        assert first.splitlines()[2:] == second.splitlines()[2:]
