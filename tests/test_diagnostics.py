"""Online BO model-quality diagnostics: tracker, emission, loop wiring."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro import obs
from repro.core.diagnostics import Z_95, DiagnosticsTracker, StepDiagnostics
from repro.core.loop import TuningLoop
from repro.core.optimizer import BayesianOptimizer
from repro.core.parameters import IntParameter, ParameterSpace
from repro.experiments.presets import SYNTHETIC_BASE_CONFIG
from repro.obs.diagnostics import DIAG_EVENT, extract_diagnostics
from repro.storm.cluster import paper_cluster
from repro.storm.objective import StormObjective
from repro.storm.spaces import ParallelismCodec
from repro.topology_gen.suite import make_topology


class _FixedPredictor:
    """An 'optimizer' whose predictive distribution is scripted."""

    maximize = True

    def __init__(self, predictions):
        self._predictions = iter(predictions)
        self.last_acquisition_value = None

    def predict_config(self, config, *, include_noise=False):
        return next(self._predictions)


# ----------------------------------------------------------------------
# Tracker arithmetic against hand-computed values
# ----------------------------------------------------------------------
class TestTrackerScoring:
    def test_residual_coverage_and_nlpd_match_formulas(self):
        # (mu, sd) scripted so z = 1.0, 3.0, 0.0 for values 11, 13, 10.
        predictor = _FixedPredictor([(10.0, 1.0), (10.0, 1.0), (10.0, 2.0)])
        tracker = DiagnosticsTracker(predictor)
        d1 = tracker.observe(step=0, config={"p": 1}, value=11.0)
        d2 = tracker.observe(step=1, config={"p": 2}, value=13.0)
        d3 = tracker.observe(step=2, config={"p": 3}, value=10.0)
        assert d1.residual_z == pytest.approx(1.0)
        assert d2.residual_z == pytest.approx(3.0)
        assert d3.residual_z == pytest.approx(0.0)
        assert d1.in_interval_95 and d3.in_interval_95
        assert not d2.in_interval_95  # |z|=3 > 1.96
        # Running coverage after each tell: 1/1, 1/2, 2/3.
        assert d1.coverage_95 == pytest.approx(1.0)
        assert d2.coverage_95 == pytest.approx(0.5)
        assert d3.coverage_95 == pytest.approx(2.0 / 3.0)
        # NLPD = 0.5 (log 2 pi sd^2 + z^2), checked on the first tell.
        assert d1.nlpd == pytest.approx(
            0.5 * (math.log(2.0 * math.pi * 1.0) + 1.0)
        )
        summary = tracker.summary()
        assert summary["n_tells"] == 3
        assert summary["n_scored"] == 3
        assert summary["coverage_95"] == pytest.approx(2.0 / 3.0)
        assert summary["residual_z_mean"] == pytest.approx(4.0 / 3.0)
        assert summary["best_value"] == 13.0

    def test_z95_is_the_normal_quantile(self):
        # 95% two-sided: Phi(1.959964) - Phi(-1.959964) ~= 0.95.
        assert Z_95 == pytest.approx(1.959964, abs=1e-6)

    def test_unfitted_or_failed_tells_are_counted_not_scored(self):
        predictor = _FixedPredictor([None, (5.0, 1.0)])
        tracker = DiagnosticsTracker(predictor)
        d1 = tracker.observe(step=0, config={}, value=1.0)  # no prediction
        d2 = tracker.observe(step=1, config={}, value=2.0, failed=True)
        assert d1.residual_z is None and d2.residual_z is None
        assert tracker.n_tells == 2
        assert tracker.n_scored == 0
        assert tracker.coverage_95 is None
        assert "coverage_95" not in tracker.summary()

    def test_failed_value_never_becomes_best(self):
        tracker = DiagnosticsTracker(_FixedPredictor([None, None]))
        tracker.observe(step=0, config={}, value=-1e9, failed=True)
        diag = tracker.observe(step=1, config={}, value=5.0)
        assert diag.best_value == 5.0

    def test_minimize_direction_tracks_lowest(self):
        predictor = _FixedPredictor([None, None])
        predictor.maximize = False
        tracker = DiagnosticsTracker(predictor)
        tracker.observe(step=0, config={}, value=4.0)
        diag = tracker.observe(step=1, config={}, value=2.0)
        assert diag.best_value == 2.0

    def test_acquisition_decay_first_vs_last(self):
        predictor = _FixedPredictor([None, None, None])
        tracker = DiagnosticsTracker(predictor)
        for step, acq in enumerate((8.0, 4.0, 2.0)):
            predictor.last_acquisition_value = acq
            tracker.observe(step=step, config={}, value=float(step))
        summary = tracker.summary()
        assert summary["acquisition_first"] == 8.0
        assert summary["acquisition_last"] == 2.0
        assert summary["acquisition_decay"] == pytest.approx(0.75)

    def test_as_attrs_drops_none_fields(self):
        diag = StepDiagnostics(step=3, value=1.0, best_value=1.0)
        attrs = diag.as_attrs()
        assert attrs == {
            "step": 3,
            "value": 1.0,
            "best_value": 1.0,
            "failed": False,
        }


# ----------------------------------------------------------------------
# Noise-free analytic reference / incumbent regret
# ----------------------------------------------------------------------
class TestAnalyticReference:
    @pytest.fixture(scope="class")
    def storm(self):
        topology = make_topology("small")
        cluster = paper_cluster()
        codec = ParallelismCodec(topology, cluster, SYNTHETIC_BASE_CONFIG)
        objective = StormObjective(topology, cluster, codec)
        return codec, objective

    def test_regret_against_reference_pool(self, storm):
        codec, objective = storm
        optimizer = BayesianOptimizer(codec.space, seed=0)
        tracker = DiagnosticsTracker(
            optimizer, objective=objective, reference_pool=64
        )
        config = optimizer.ask()
        diag = tracker.observe(
            step=0, config=config, value=objective(config)
        )
        assert diag.reference_optimum is not None
        assert diag.incumbent_noise_free is not None
        assert diag.incumbent_regret is not None
        # The pool optimum dominates any single sampled incumbent often,
        # but never by construction — regret can be slightly negative
        # when BO's first point beats the 64-point pool.  It is still a
        # finite relative gap.
        assert math.isfinite(diag.incumbent_regret)
        gap = diag.reference_optimum - diag.incumbent_noise_free
        assert diag.incumbent_regret == pytest.approx(
            gap / abs(diag.reference_optimum)
        )

    def test_incumbent_score_cached_between_non_improving_tells(self, storm):
        codec, objective = storm
        optimizer = BayesianOptimizer(codec.space, seed=1)
        tracker = DiagnosticsTracker(
            optimizer, objective=objective, reference_pool=32
        )
        config = optimizer.ask()
        value = objective(config)
        tracker.observe(step=0, config=config, value=value)
        calls = {"n": 0}
        original = objective.engine.evaluate_noise_free

        def counting(*a, **kw):
            calls["n"] += 1
            return original(*a, **kw)

        objective.engine.evaluate_noise_free = counting
        try:
            # A strictly worse tell must not touch the analytic engine.
            tracker.observe(step=1, config=config, value=value - 1.0)
            assert calls["n"] == 0
            # An improving tell re-scores the new incumbent once.
            tracker.observe(step=2, config=config, value=value + 1.0)
            assert calls["n"] == 1
        finally:
            objective.engine.evaluate_noise_free = original

    def test_plain_callable_objective_degrades_gracefully(self):
        space = ParameterSpace([IntParameter("p", 1, 8)])
        optimizer = BayesianOptimizer(space, seed=0)
        tracker = DiagnosticsTracker(
            optimizer, objective=lambda cfg: float(cfg["p"])
        )
        diag = tracker.observe(step=0, config={"p": 3}, value=3.0)
        assert diag.reference_optimum is None
        assert diag.incumbent_regret is None
        assert "incumbent_regret" not in tracker.summary()


# ----------------------------------------------------------------------
# Optimizer predict_config surface
# ----------------------------------------------------------------------
class TestPredictConfig:
    def test_unfitted_and_invalid_configs_return_none(self):
        space = ParameterSpace([IntParameter("p", 1, 8)])
        optimizer = BayesianOptimizer(space, seed=0)
        assert optimizer.predict_config({"p": 3}) is None  # unfitted
        for _ in range(4):
            config = optimizer.ask()
            optimizer.tell(config, float(config["p"]))
        assert optimizer.predict_config({"nope": 1}) is None
        assert optimizer.predict_config({"p": 99}) is None

    def test_noise_widens_predictive_std(self):
        space = ParameterSpace([IntParameter("p", 1, 8)])
        optimizer = BayesianOptimizer(space, seed=0)
        for _ in range(5):
            config = optimizer.ask()
            optimizer.tell(config, float(config["p"]))
        mu_l, sd_latent = optimizer.predict_config({"p": 4})
        mu_n, sd_noisy = optimizer.predict_config({"p": 4}, include_noise=True)
        assert mu_l == mu_n
        assert sd_noisy >= sd_latent
        assert sd_noisy == pytest.approx(
            math.hypot(sd_latent, optimizer.gp.observation_noise_std)
        )

    def test_minimize_sign_round_trips(self):
        space = ParameterSpace([IntParameter("p", 1, 8)])
        optimizer = BayesianOptimizer(space, seed=0, maximize=False)
        for _ in range(5):
            config = optimizer.ask()
            optimizer.tell(config, float(config["p"]))
        mu, sd = optimizer.predict_config({"p": 2})
        # Means come back in objective units: near the observed scale,
        # not its negation.
        assert 0.0 < mu < 10.0
        assert sd > 0.0


# ----------------------------------------------------------------------
# TuningLoop wiring: gating, emission, metadata
# ----------------------------------------------------------------------
class TestLoopWiring:
    def _loop(self, diagnostics, steps=6):
        topology = make_topology("small")
        cluster = paper_cluster()
        codec = ParallelismCodec(topology, cluster, SYNTHETIC_BASE_CONFIG)
        objective = StormObjective(topology, cluster, codec)
        optimizer = BayesianOptimizer(codec.space, seed=3)
        return TuningLoop(
            objective,
            optimizer,
            max_steps=steps,
            seed=3,
            diagnostics=diagnostics,
        )

    def test_no_session_emits_no_diagnostics(self):
        result = self._loop(diagnostics=None).run()
        assert "diagnostics" not in result.metadata

    def test_session_emits_diag_events_and_metadata(self):
        with obs.session(memory=True) as ctx:
            result = self._loop(diagnostics=None).run()
            events = list(ctx.sinks[0].events)
        diags = extract_diagnostics(events)
        assert len(diags) == 6
        assert all(d["step"] >= 0 for d in diags)
        # Once the GP is fitted, tells carry calibration fields.
        scored = [d for d in diags if "residual_z" in d]
        assert scored, "no tell was scored against the surrogate"
        assert {"predicted_mean", "predicted_std", "nlpd"} <= set(scored[-1])
        summary = result.metadata["diagnostics"]
        assert summary["n_tells"] == 6
        assert summary["n_scored"] == len(scored)
        # diag.* metrics landed in the registry.
        assert ctx.metrics.counter("diag.tells").value == 6
        names = {e.get("name") for e in events if e.get("type") == "event"}
        assert DIAG_EVENT in names

    def test_forced_on_without_session_fills_metadata_only(self):
        result = self._loop(diagnostics=True).run()
        summary = result.metadata["diagnostics"]
        assert summary["n_tells"] == 6
        assert "reference_optimum" in summary

    def test_forced_off_inside_session_suppresses_diagnostics(self):
        with obs.session(memory=True) as ctx:
            result = self._loop(diagnostics=False).run()
            events = list(ctx.sinks[0].events)
        assert "diagnostics" not in result.metadata
        assert not extract_diagnostics(events)

    def test_residuals_are_out_of_sample(self):
        """Scores come from the pre-tell posterior: a GP that has already
        absorbed the point would report |z| ~= 0 everywhere."""
        with obs.session(memory=True) as ctx:
            self._loop(diagnostics=None, steps=10).run()
            events = list(ctx.sinks[0].events)
        zs = [
            abs(d["residual_z"])
            for d in extract_diagnostics(events)
            if "residual_z" in d
        ]
        assert max(zs) > 1e-3, f"implausibly perfect one-step residuals: {zs}"


def test_diag_attrs_survive_jsonl_round_trip(tmp_path):
    """diag.* event payloads are plain JSON after the sink's coercion."""
    path = tmp_path / "run.jsonl"
    topology = make_topology("small")
    cluster = paper_cluster()
    codec = ParallelismCodec(topology, cluster, SYNTHETIC_BASE_CONFIG)
    objective = StormObjective(topology, cluster, codec)
    optimizer = BayesianOptimizer(codec.space, seed=5)
    with obs.session(jsonl_path=path):
        TuningLoop(
            objective, optimizer, max_steps=5, seed=5, diagnostics=None
        ).run()
    diags = extract_diagnostics(obs.read_jsonl(path))
    assert len(diags) == 5
    for diag in diags:
        for value in diag.values():
            assert isinstance(value, (int, float, bool, str))
            if isinstance(value, float):
                assert math.isfinite(value)
    assert isinstance(np.float64(1.0), float)  # sanity on the coercion claim
