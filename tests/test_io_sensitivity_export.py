"""Topology I/O, sensitivity analysis, and study export."""

from __future__ import annotations

import pytest

from repro.experiments.export import (
    load_study,
    save_study,
    sundog_study_from_dict,
    synthetic_study_from_dict,
)
from repro.experiments.presets import Budget
from repro.experiments.runner import SundogStudy, SyntheticStudy
from repro.storm.cluster import small_test_cluster
from repro.storm.config import TopologyConfig
from repro.storm.sensitivity import (
    SensitivityAnalyzer,
    default_sweep_values,
)
from repro.storm.topology_io import (
    load_topology,
    save_topology,
    topology_from_dict,
    topology_to_dict,
)
from repro.sundog import sundog_topology
from repro.topology_gen.suite import CONDITIONS, make_topology


class TestTopologyIO:
    def test_roundtrip_generated_topology(self, tmp_path):
        topo = make_topology("small", CONDITIONS[3])
        path = tmp_path / "topo.json"
        save_topology(topo, path)
        again = load_topology(path)
        assert again.name == topo.name
        assert again.topological_order() == topo.topological_order()
        assert again.edges == topo.edges
        for name in topo:
            a, b = topo.operator(name), again.operator(name)
            assert a.cost == b.cost
            assert a.contentious == b.contentious
            assert a.selectivity == b.selectivity

    def test_roundtrip_sundog(self):
        topo = sundog_topology()
        again = topology_from_dict(topology_to_dict(topo))
        assert again.volumes() == topo.volumes()
        assert again.total_compute_units_per_tuple() == pytest.approx(
            topo.total_compute_units_per_tuple()
        )

    def test_loaded_topology_is_validated(self):
        data = topology_to_dict(sundog_topology())
        data["edges"].append({"src": "R1", "dst": "HDFS1"})  # type: ignore[union-attr]
        with pytest.raises(Exception):
            topology_from_dict(data)

    def test_defaults_applied_for_missing_fields(self):
        data = {
            "name": "tiny",
            "operators": [
                {"name": "s", "kind": "spout"},
                {"name": "b", "kind": "bolt"},
            ],
            "edges": [{"src": "s", "dst": "b"}],
        }
        topo = topology_from_dict(data)
        assert topo.operator("b").cost == 20.0
        assert topo.operator("b").selectivity == 1.0


class TestSensitivity:
    @pytest.fixture
    def analyzer(self):
        cluster = small_test_cluster()
        topo = make_topology("small")
        base = TopologyConfig(
            parallelism_hints={n: 4 for n in topo},
            batch_size=100,
            batch_parallelism=8,
            ackers=4,
            num_workers=4,
        )
        return SensitivityAnalyzer(topo, cluster, base)

    def test_sweep_records_all_points(self, analyzer):
        sweep = analyzer.sweep("batch_parallelism", [1, 2, 4, 8])
        assert [p.value for p in sweep.points] == [1, 2, 4, 8]
        assert sweep.base_value == 8
        assert all(p.throughput_tps >= 0 for p in sweep.points)

    def test_batch_parallelism_is_monotone_here(self, analyzer):
        sweep = analyzer.sweep("batch_parallelism", [1, 4, 16])
        values = [p.throughput_tps for p in sweep.points]
        assert values == sorted(values)

    def test_uniform_hint_sweep(self, analyzer):
        sweep = analyzer.sweep("uniform_hint", [1, 4])
        assert sweep.points[1].throughput_tps > sweep.points[0].throughput_tps

    def test_unknown_parameter_rejected(self, analyzer):
        with pytest.raises(ValueError):
            analyzer.sweep("warp_factor", [1, 2])

    def test_dynamic_range(self, analyzer):
        # On the 16-core test cluster the CPU cap limits the spread, but
        # bp=1 is clearly pipeline-starved relative to bp=16.
        sweep = analyzer.sweep("batch_parallelism", [1, 16])
        assert sweep.dynamic_range() > 1.1
        assert sweep.best().value == 16

    def test_interaction_detects_dependence(self):
        cluster = small_test_cluster()
        topo = sundog_topology()
        base = TopologyConfig(
            parallelism_hints={n: 4 for n in topo},
            batch_size=5_000,
            batch_parallelism=2,
            ackers=4,
            num_workers=4,
        )
        analyzer = SensitivityAnalyzer(topo, cluster, base)
        factor = analyzer.interaction(
            "batch_size", 50_000, "batch_parallelism", 8
        )
        assert factor != pytest.approx(1.0, abs=0.02)

    def test_default_sweep_values_cover_table1(self):
        values = default_sweep_values(small_test_cluster())
        assert set(values) == {
            "uniform_hint",
            "batch_size",
            "batch_parallelism",
            "worker_threads",
            "receiver_threads",
            "ackers",
        }

    def test_tornado_ranking(self, analyzer):
        ranked = analyzer.tornado(
            {"batch_parallelism": [1, 16], "receiver_threads": [1, 2]}
        )
        assert ranked[0][0] == "batch_parallelism"
        assert ranked[0][1] >= ranked[1][1]


@pytest.fixture(scope="module")
def tiny_budget():
    return Budget(
        steps=4, steps_extended=5, baseline_steps=6, passes=1, repeat_best=2
    )


class TestStudyExport:
    def test_synthetic_roundtrip(self, tmp_path, tiny_budget):
        study = SyntheticStudy(
            tiny_budget,
            conditions=[CONDITIONS[0]],
            sizes=["small"],
            strategies=["pla", "bo"],
        ).run()
        path = tmp_path / "synthetic.json"
        save_study(study, path)
        again = load_study(path)
        assert isinstance(again, SyntheticStudy)
        assert set(again.results) == set(study.results)
        for key in study.results:
            a = study.results[key][0]
            b = again.results[key][0]
            assert a.values() == b.values()
            assert a.best_rerun_values == b.best_rerun_values

    def test_sundog_roundtrip(self, tmp_path, tiny_budget):
        study = SundogStudy(tiny_budget, arms=[("pla", "h")]).run()
        path = tmp_path / "sundog.json"
        save_study(study, path)
        again = load_study(path)
        assert isinstance(again, SundogStudy)
        assert again.passes("pla", "h")[0].best_value == study.passes(
            "pla", "h"
        )[0].best_value

    def test_loaded_study_renders_figures(self, tmp_path, tiny_budget):
        from repro.experiments.figures import figure4_throughput

        study = SyntheticStudy(
            tiny_budget,
            conditions=[CONDITIONS[0]],
            sizes=["small"],
            strategies=["pla"],
        ).run()
        path = tmp_path / "s.json"
        save_study(study, path)
        again = load_study(path)
        data = figure4_throughput(again)  # type: ignore[arg-type]
        assert len(data.rows) == 1

    def test_kind_mismatch_rejected(self):
        with pytest.raises(ValueError):
            synthetic_study_from_dict({"kind": "sundog"})
        with pytest.raises(ValueError):
            sundog_study_from_dict({"kind": "synthetic"})

    def test_unknown_kind_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text('{"kind": "mystery"}')
        with pytest.raises(ValueError):
            load_study(path)
