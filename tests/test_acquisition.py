"""Acquisition functions and acquisition optimization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core.acquisition import (
    AcquisitionOptimizer,
    expected_improvement,
    probability_of_improvement,
    upper_confidence_bound,
)
from repro.core.gp import GaussianProcess
from repro.core.parameters import FloatParameter, IntParameter, ParameterSpace


class TestExpectedImprovement:
    def test_nonnegative(self, rng):
        mean = rng.normal(size=100)
        std = rng.random(100)
        ei = expected_improvement(mean, std, best=0.5)
        assert (ei >= 0).all()

    def test_zero_std_uses_plain_improvement(self):
        ei = expected_improvement(
            np.array([2.0, 0.0]), np.array([0.0, 0.0]), best=1.0
        )
        assert ei[0] == pytest.approx(1.0)
        assert ei[1] == pytest.approx(0.0)

    def test_increases_with_mean(self):
        std = np.array([1.0, 1.0])
        ei = expected_improvement(np.array([0.0, 2.0]), std, best=1.0)
        assert ei[1] > ei[0]

    def test_increases_with_std_at_equal_mean(self):
        mean = np.array([1.0, 1.0])
        ei = expected_improvement(mean, np.array([0.1, 2.0]), best=1.0)
        assert ei[1] > ei[0]

    def test_known_value_at_mean_equals_best(self):
        # improvement = 0, z = 0: EI = sigma * phi(0) = sigma / sqrt(2 pi)
        ei = expected_improvement(np.array([1.0]), np.array([2.0]), best=1.0)
        assert ei[0] == pytest.approx(2.0 / np.sqrt(2 * np.pi))

    def test_xi_shifts_threshold(self):
        ei_lo = expected_improvement(np.array([1.5]), np.array([1.0]), 1.0, xi=0.0)
        ei_hi = expected_improvement(np.array([1.5]), np.array([1.0]), 1.0, xi=1.0)
        assert ei_hi[0] < ei_lo[0]


class TestProbabilityOfImprovement:
    def test_bounds(self, rng):
        pi = probability_of_improvement(
            rng.normal(size=50), rng.random(50) + 0.01, best=0.0
        )
        assert ((pi >= 0) & (pi <= 1)).all()

    def test_half_at_mean_equals_best(self):
        pi = probability_of_improvement(np.array([1.0]), np.array([1.0]), best=1.0)
        assert pi[0] == pytest.approx(0.5)

    def test_zero_std(self):
        pi = probability_of_improvement(
            np.array([2.0, 0.5]), np.array([0.0, 0.0]), best=1.0
        )
        assert pi[0] == 1.0 and pi[1] == 0.0


class TestUCB:
    def test_linear_in_std(self):
        ucb = upper_confidence_bound(np.array([1.0]), np.array([2.0]), kappa=2.0)
        assert ucb[0] == pytest.approx(5.0)


class TestAcquisitionOptimizer:
    def fitted_gp(self, rng, dim=2):
        X = rng.random((15, dim))
        y = -np.sum((X - 0.7) ** 2, axis=1)  # peak at 0.7
        gp = GaussianProcess("matern52", dim=dim, noise=1e-4, fit_noise=False)
        gp.fit(X, y, rng=rng)
        return gp, X, y

    def test_unknown_acquisition_raises(self):
        with pytest.raises(ValueError):
            AcquisitionOptimizer(acquisition="magic")

    def test_proposal_in_unit_cube(self, rng):
        gp, X, y = self.fitted_gp(rng)
        space = ParameterSpace(
            [FloatParameter("a", 0, 1), FloatParameter("b", 0, 1)]
        )
        opt = AcquisitionOptimizer(n_candidates=128)
        prop = opt.propose(gp, space, X[np.argmax(y)], float(y.max()), rng)
        assert prop.x.shape == (2,)
        assert ((prop.x >= 0) & (prop.x <= 1)).all()
        assert prop.acquisition_value >= 0

    def test_proposal_snaps_to_integer_grid(self, rng):
        gp, X, y = self.fitted_gp(rng)
        space = ParameterSpace([IntParameter("a", 1, 5), IntParameter("b", 1, 5)])
        opt = AcquisitionOptimizer(n_candidates=64)
        prop = opt.propose(gp, space, None, float(y.max()), rng)
        decoded = space.decode(prop.x)
        assert decoded["a"] in range(1, 6)
        assert decoded["b"] in range(1, 6)

    def test_proposes_near_optimum_when_confident(self, rng):
        """With dense data on a smooth bowl, EI proposes near the peak."""
        X = rng.random((120, 2))
        y = -np.sum((X - 0.7) ** 2, axis=1)
        gp = GaussianProcess("rbf", dim=2, noise=1e-5, fit_noise=False)
        gp.fit(X, y, rng=rng)
        space = ParameterSpace(
            [FloatParameter("a", 0, 1), FloatParameter("b", 0, 1)]
        )
        opt = AcquisitionOptimizer(n_candidates=512, n_refine=3)
        prop = opt.propose(gp, space, X[np.argmax(y)], float(y.max()), rng)
        assert np.linalg.norm(prop.x - 0.7) < 0.35

    def test_neighbourhood_moves_are_valid_grid_points(self, rng):
        space = ParameterSpace([IntParameter("a", 1, 9), IntParameter("b", 1, 9)])
        opt = AcquisitionOptimizer()
        best = space.encode({"a": 5, "b": 5})
        moves = opt._neighbourhood(space, best, rng)
        for row in moves:
            decoded = space.decode(row)
            assert 1 <= decoded["a"] <= 9
            assert 1 <= decoded["b"] <= 9
        # The +/- 1 coordinate moves must be present.
        decoded_set = {tuple(space.decode(r).values()) for r in moves}
        assert (4, 5) in decoded_set and (6, 5) in decoded_set
        assert (5, 4) in decoded_set and (5, 6) in decoded_set

    def test_score_matches_direct_computation(self, rng):
        gp, X, y = self.fitted_gp(rng)
        opt = AcquisitionOptimizer(acquisition="ei")
        pts = rng.random((10, 2))
        scores = opt.score(gp, pts, float(y.max()))
        mean, std = gp.predict(pts)
        expected = expected_improvement(mean, std, float(y.max()))
        assert np.allclose(scores, expected)
