"""The repro.obs subsystem: tracer, metrics, sinks, summary, CLI."""

from __future__ import annotations

import dataclasses
import io
import json
import time

import numpy as np
import pytest

from repro import obs
from repro.core.history import Observation
from repro.core.loop import TuningLoop, _coerce_telemetry
from repro.core.optimizer import BayesianOptimizer
from repro.experiments.presets import SYNTHETIC_BASE_CONFIG
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.sinks import VERBOSE, ProgressSink
from repro.obs.tracer import NOOP_SPAN, NoopTracer, Tracer
from repro.storm.cluster import paper_cluster
from repro.storm.objective import StormObjective
from repro.storm.spaces import ParallelismCodec
from repro.topology_gen.suite import make_topology


# ----------------------------------------------------------------------
# Tracer: span nesting invariants
# ----------------------------------------------------------------------
class TestTracer:
    def test_span_nesting_invariants(self):
        sink = obs.InMemorySink()
        tracer = Tracer((sink,))
        with tracer.span("outer", a=1) as outer:
            with tracer.span("inner"):
                tracer.event("ping", n=7)
            with tracer.span("inner2") as inner2:
                inner2.set_attribute("late", True)
        spans = [e for e in sink.events if e["type"] == "span"]
        by_name = {s["name"]: s for s in spans}
        # Children close (and therefore emit) before their parent.
        assert [s["name"] for s in spans] == ["inner", "inner2", "outer"]
        assert by_name["inner"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["inner2"]["parent_id"] == by_name["outer"]["span_id"]
        assert by_name["outer"]["parent_id"] is None
        assert by_name["outer"]["depth"] == 0
        assert by_name["inner"]["depth"] == 1
        assert by_name["inner2"]["attrs"]["late"] is True
        assert by_name["outer"]["attrs"] == {"a": 1}
        # The point event is tied to the span that was open at the time.
        (event,) = [e for e in sink.events if e["type"] == "event"]
        assert event["span_id"] == by_name["inner"]["span_id"]
        # Stack fully unwound.
        assert tracer.current_depth == 0
        assert outer.duration_s >= by_name["inner"]["duration_s"]

    def test_span_timing_is_monotonic_and_contained(self):
        sink = obs.InMemorySink()
        tracer = Tracer((sink,))
        with tracer.span("parent"):
            time.sleep(0.01)
            with tracer.span("child"):
                time.sleep(0.01)
        child, parent = (e for e in sink.events if e["type"] == "span")
        assert child["t_start"] >= parent["t_start"]
        assert child["duration_s"] <= parent["duration_s"]
        assert parent["duration_s"] >= 0.02

    def test_exception_marks_span_status(self):
        sink = obs.InMemorySink()
        tracer = Tracer((sink,))
        with pytest.raises(ValueError):
            with tracer.span("boom"):
                raise ValueError("nope")
        (span,) = sink.events
        assert span["status"] == "error"
        assert span["attrs"]["exception"] == "ValueError"
        assert tracer.current_depth == 0

    def test_noop_tracer_is_allocation_free_and_fast(self):
        tracer = NoopTracer()
        assert tracer.span("anything") is NOOP_SPAN
        assert tracer.span("other", k=1) is NOOP_SPAN
        # Overhead bar: 50k disabled spans must be far below a
        # millisecond-scale budget (the <2% suggest-path criterion).
        n = 50_000
        t0 = time.perf_counter()
        for _ in range(n):
            with tracer.span("hot"):
                pass
        elapsed = time.perf_counter() - t0
        assert elapsed < 0.5, f"{elapsed:.3f}s for {n} no-op spans"


# ----------------------------------------------------------------------
# Metrics: histogram accuracy and registry merge
# ----------------------------------------------------------------------
class TestHistogram:
    def test_quantile_accuracy_lognormal(self):
        rng = np.random.default_rng(0)
        values = np.exp(rng.normal(0.0, 1.0, size=20_000))
        hist = Histogram()
        for v in values:
            hist.record(float(v))
        for q in (0.50, 0.95, 0.99):
            exact = float(np.quantile(values, q))
            approx = hist.quantile(q)
            assert approx == pytest.approx(exact, rel=0.10), q

    def test_min_max_mean_exact(self):
        hist = Histogram()
        for v in (3.0, 1.0, 2.0):
            hist.record(v)
        assert hist.min == 1.0
        assert hist.max == 3.0
        assert hist.mean == pytest.approx(2.0)
        assert hist.quantile(0.0) >= 1.0
        assert hist.quantile(1.0) == pytest.approx(3.0, rel=0.05)
        assert hist.quantile(1.0) <= hist.max

    def test_zero_and_negative_values_counted(self):
        hist = Histogram()
        for v in (0.0, -1.0, 5.0):
            hist.record(v)
        assert hist.count == 3
        assert hist.zeros == 2
        assert hist.quantile(0.99) <= 5.0

    def test_roundtrip_and_merge_equivalence(self):
        rng = np.random.default_rng(1)
        a, b, combined = Histogram(), Histogram(), Histogram()
        for i, v in enumerate(rng.exponential(2.0, size=5_000)):
            (a if i % 2 else b).record(float(v))
            combined.record(float(v))
        restored = Histogram.from_dict(json.loads(json.dumps(a.as_dict())))
        restored.merge(b)
        assert restored.count == combined.count
        assert restored.total == pytest.approx(combined.total)
        for q in (0.5, 0.95, 0.99):
            assert restored.quantile(q) == pytest.approx(combined.quantile(q))


class TestRegistryMerge:
    def test_merge_across_cells(self):
        """Two 'cells' record independently; the merged registry agrees
        with one registry that saw everything."""
        cells = [MetricsRegistry() for _ in range(2)]
        reference = MetricsRegistry()
        rng = np.random.default_rng(2)
        for i, cell in enumerate(cells):
            for v in rng.gamma(2.0, 1.0, size=1000):
                cell.histogram("suggest_seconds").record(float(v))
                reference.histogram("suggest_seconds").record(float(v))
            cell.counter("steps").inc(100 + i)
            reference.counter("steps").inc(100 + i)
            cell.gauge("pool_size").set(512 + i)
            reference.gauge("pool_size").set(512 + i)
        merged = MetricsRegistry()
        for cell in cells:
            # Snapshots cross process boundaries as JSON.
            merged.merge_snapshot(json.loads(json.dumps(cell.snapshot())))
        assert merged.counter("steps").value == reference.counter("steps").value
        assert merged.gauge("pool_size").value == 513
        got = merged.histogram("suggest_seconds")
        want = reference.histogram("suggest_seconds")
        assert got.count == want.count
        for q in (0.5, 0.95, 0.99):
            assert got.quantile(q) == pytest.approx(want.quantile(q))

    def test_snapshot_is_json_serializable(self):
        registry = MetricsRegistry()
        registry.histogram("h").record(1.5)
        registry.counter("c").inc()
        registry.gauge("g").set(2.0)
        snap = json.loads(json.dumps(registry.snapshot()))
        assert snap["counters"]["c"] == 1
        assert snap["histograms"]["h"]["count"] == 1


# ----------------------------------------------------------------------
# Session + JSONL round trip
# ----------------------------------------------------------------------
class TestSessionJsonl:
    def test_events_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with obs.session(jsonl_path=path, manifest={"seed": 7}) as ctx:
            with ctx.tracer.span("tuning.run"):
                with ctx.tracer.span("tuning.suggest", step=0):
                    pass
            ctx.tracer.event("cell_finish", cell="a", seconds=1.0)
            ctx.metrics.counter("tuning.steps").inc(3)
        events = obs.read_jsonl(path)
        kinds = [e["type"] for e in events]
        assert kinds[0] == "manifest"
        assert kinds[-1] == "metrics"
        assert events[0]["attrs"] == {"seed": 7}
        spans = [e for e in events if e["type"] == "span"]
        assert {s["name"] for s in spans} == {"tuning.run", "tuning.suggest"}
        assert events[-1]["snapshot"]["counters"] == {"tuning.steps": 3}
        # Every line is independently parseable JSON (the JSONL contract).
        for line in path.read_text().splitlines():
            assert json.loads(line)

    def test_torn_tail_line_is_dropped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"type": "event", "name": "a"}\n{"type": "ev')
        events = obs.read_jsonl(path)
        assert len(events) == 1

    def test_session_restores_previous_context(self, tmp_path):
        before = obs.current()
        with obs.session(jsonl_path=tmp_path / "t.jsonl"):
            assert obs.current().enabled
        assert obs.current() is before
        assert not obs.current().enabled


# ----------------------------------------------------------------------
# Instrumented tuning loop
# ----------------------------------------------------------------------
def _tiny_setup(seed=0, **objective_kwargs):
    topology = make_topology("small")
    cluster = paper_cluster()
    codec = ParallelismCodec(topology, cluster, SYNTHETIC_BASE_CONFIG)
    objective = StormObjective(
        topology, cluster, codec, seed=seed, **objective_kwargs
    )
    optimizer = BayesianOptimizer(codec.space, seed=seed, acq_candidates=32)
    return objective, optimizer


class TestInstrumentedLoop:
    def test_phase_spans_cover_wall_clock(self, tmp_path):
        objective, optimizer = _tiny_setup()
        path = tmp_path / "run.jsonl"
        with obs.session(jsonl_path=path):
            TuningLoop(objective, optimizer, max_steps=6, repeat_best=2).run()
        summary = obs.summarize_trace(obs.read_jsonl(path))
        assert summary.n_runs == 1
        assert summary.n_steps == 6
        assert summary.wall_seconds > 0
        # Acceptance bar: phase totals sum to within 10% of wall-clock.
        assert summary.coverage == pytest.approx(1.0, abs=0.10)
        # repeat_best re-runs show up as extra evaluate spans.
        assert summary.spans["tuning.evaluate"].count == 8
        assert summary.spans["gp.refit"].count > 0

    def test_metadata_keys_backward_compatible(self):
        objective, optimizer = _tiny_setup()
        result = TuningLoop(objective, optimizer, max_steps=5).run()
        telemetry = result.metadata["optimizer_telemetry"]
        assert telemetry["n_proposals"] >= 0
        assert "gp_fit_seconds_total" in telemetry
        assert result.metadata["objective_cache"]["enabled"] is True
        snap = result.metadata["obs_metrics"]
        assert snap["counters"]["tuning.steps"] == 5
        assert snap["histograms"]["tuning.suggest_seconds"]["count"] == 5

    def test_failure_reason_propagates_to_history(self):
        """A config the engine rejects is diagnosable from the history."""
        from repro.storm.metrics import MeasuredRun

        objective, optimizer = _tiny_setup()
        objective.engine._evaluate_mechanics = (
            lambda config, point=None: MeasuredRun.failure(
                "640 executors exceed cluster capacity 200"
            )
        )
        result = TuningLoop(objective, optimizer, max_steps=1).run()
        (observation,) = result.observations
        assert observation.value == 0.0
        assert observation.failed
        assert "exceed" in observation.failure_reason
        # Round-trips through serialization.
        restored = Observation.from_dict(
            json.loads(json.dumps(observation.as_dict()))
        )
        assert restored.failed
        assert restored.failure_reason == observation.failure_reason

    def test_bottleneck_detail_recorded_on_success(self):
        objective, optimizer = _tiny_setup()
        result = TuningLoop(objective, optimizer, max_steps=3).run()
        for observation in result.observations:
            assert not observation.failed
            assert observation.bottleneck  # an operator name

    def test_telemetry_dataclass_is_coerced_not_dropped(self):
        @dataclasses.dataclass
        class Telemetry:
            fits: int = 4
            pool: float = 2.5

        class DataclassTelemetryOptimizer(BayesianOptimizer):
            @property
            def telemetry(self):  # type: ignore[override]
                return Telemetry()

        objective, _ = _tiny_setup()
        codec_space = DataclassTelemetryOptimizer(
            ParallelismCodec(
                make_topology("small"), paper_cluster(), SYNTHETIC_BASE_CONFIG
            ).space,
            seed=0,
            acq_candidates=16,
        )
        result = TuningLoop(objective, codec_space, max_steps=3).run()
        assert result.metadata["optimizer_telemetry"] == {
            "fits": 4,
            "pool": 2.5,
        }

    def test_coerce_telemetry_variants(self):
        assert _coerce_telemetry(None) is None
        assert _coerce_telemetry({"a": 1}) == {"a": 1}

        class Bag:
            def __init__(self):
                self.x = 1

        assert _coerce_telemetry(Bag()) == {"x": 1}
        assert _coerce_telemetry(42) is None  # no dict view at all

    def test_failure_events_in_trace(self, tmp_path):
        """An infeasible measurement emits failure events with a reason."""
        from repro.storm.metrics import MeasuredRun

        objective, _ = _tiny_setup()
        objective.engine._evaluate_mechanics = (
            lambda config, point=None: MeasuredRun.failure(
                "640 executors exceed cluster capacity 200"
            )
        )
        params = objective.codec.space.decode(
            np.full(objective.codec.space.dim, 0.5)
        )
        path = tmp_path / "run.jsonl"
        with obs.session(jsonl_path=path):
            assert objective(params) == 0.0
        events = obs.read_jsonl(path)
        names = [e.get("name") for e in events if e["type"] == "event"]
        assert "engine.failure" in names
        assert "objective.failure" in names
        failure = next(
            e for e in events if e.get("name") == "objective.failure"
        )
        assert "exceed" in failure["attrs"]["reason"]


# ----------------------------------------------------------------------
# Progress sink
# ----------------------------------------------------------------------
class TestProgressSink:
    def _events(self, sink):
        sink(
            {
                "type": "event",
                "name": "study_start",
                "attrs": {"study": "synthetic", "n_cells": 4},
            }
        )
        for i in range(2):
            sink(
                {
                    "type": "event",
                    "name": "cell_finish",
                    "attrs": {"study": "synthetic", "cell": f"c{i}", "seconds": 2.0},
                }
            )

    def test_eta_from_completed_cells(self):
        err = io.StringIO()
        sink = ProgressSink(err=err, out=io.StringIO())
        self._events(sink)
        assert sink.eta_seconds("synthetic") == pytest.approx(4.0)
        text = err.getvalue()
        assert "2/4 cells" in text
        assert "eta 4s" in text

    def test_quiet_suppresses_info_and_progress(self):
        out, err = io.StringIO(), io.StringIO()
        sink = ProgressSink(0, out=out, err=err)
        self._events(sink)
        sink.info("informational")
        sink.result("the exhibit")
        assert err.getvalue() == ""
        assert out.getvalue() == "the exhibit\n"

    def test_verbose_shows_detail(self):
        out = io.StringIO()
        sink = ProgressSink(VERBOSE, out=out, err=io.StringIO())
        sink.detail("fine-grained")
        assert "fine-grained" in out.getvalue()


# ----------------------------------------------------------------------
# CLI integration
# ----------------------------------------------------------------------
class TestObsCli:
    def _write_trace(self, tmp_path):
        objective, optimizer = _tiny_setup()
        path = tmp_path / "run.jsonl"
        with obs.session(jsonl_path=path, manifest={"seed": 0}):
            TuningLoop(objective, optimizer, max_steps=5).run()
        return path

    def test_obs_summary(self, tmp_path, capsys):
        from repro.cli import main

        path = self._write_trace(tmp_path)
        assert main(["obs", "summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "Obs Summary" in out
        assert "tuning.suggest" in out
        assert "tuning.evaluate" in out
        assert "tuning.tell" in out
        assert "share_of_wall" in out

    def test_obs_tail(self, tmp_path, capsys):
        from repro.cli import main

        path = self._write_trace(tmp_path)
        assert main(["obs", "tail", str(path), "-n", "5"]) == 0
        out = capsys.readouterr().out
        assert len(out.strip().splitlines()) == 5
        assert "metrics snapshot" in out

    def test_obs_export_output_is_written_durably(self, tmp_path, monkeypatch):
        """Regression: the .prom export must go through the fsyncing
        atomic writer, not a bare temp-file rename a crash can lose."""
        import repro.core.checkpoint as checkpoint
        from repro.cli import main

        path = self._write_trace(tmp_path)
        target = tmp_path / "metrics.prom"
        calls = []
        real_write = checkpoint.atomic_write_text

        def spying_write(p, text):
            calls.append(str(p))
            real_write(p, text)

        monkeypatch.setattr(checkpoint, "atomic_write_text", spying_write)
        assert main(["obs", "export", str(path), "--output", str(target)]) == 0
        assert calls == [str(target)]
        assert target.read_text(encoding="utf-8").endswith("# EOF\n")
        assert not list(tmp_path.glob("*.tmp"))

    def test_exhibit_with_trace_flag(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "cli.jsonl"
        assert main(["table1", "--trace", str(path)]) == 0
        events = obs.read_jsonl(path)
        assert events[0]["type"] == "manifest"
        assert events[-1]["type"] == "metrics"

    def test_quiet_flag_still_prints_exhibit(self, capsys):
        from repro.cli import main

        assert main(["table1", "--quiet"]) == 0
        out = capsys.readouterr().out
        assert "Table I" in out

    def test_verbose_and_quiet_mutually_exclusive(self):
        from repro.cli import main

        with pytest.raises(SystemExit):
            main(["table1", "-v", "-q"])


class TestStudyEvents:
    @pytest.mark.slow
    def test_synthetic_study_emits_cell_events(self, tmp_path):
        from repro.experiments.presets import Budget
        from repro.experiments.runner import SyntheticStudy
        from repro.topology_gen.suite import CONDITIONS

        tiny = Budget(
            steps=3, steps_extended=4, baseline_steps=5, passes=1, repeat_best=2
        )
        path = tmp_path / "study.jsonl"
        with obs.session(jsonl_path=path) as ctx:
            SyntheticStudy(
                tiny,
                conditions=CONDITIONS[:1],
                sizes=("small",),
                strategies=("pla", "bo"),
            ).run()
            merged = ctx.metrics.snapshot()
        events = obs.read_jsonl(path)
        names = [e.get("name") for e in events if e["type"] == "event"]
        assert names.count("cell_start") == 2
        assert names.count("cell_finish") == 2
        assert "study_start" in names and "study_finish" in names
        starts = [e for e in events if e.get("name") == "cell_start"]
        assert all("seed" in e["attrs"] for e in starts)
        study_start = next(e for e in events if e.get("name") == "study_start")
        assert study_start["attrs"]["budget"]["steps"] == 3
        # Session registry aggregated both cells' tuning steps:
        # pla runs baseline_steps, bo runs steps.
        assert merged["counters"]["tuning.steps"] == 5 + 3


# ----------------------------------------------------------------------
# Registry merge edge cases (cross-process snapshot/merge paths)
# ----------------------------------------------------------------------
class TestRegistryMergeEdgeCases:
    def test_empty_registry_merges_are_identity(self):
        empty = MetricsRegistry()
        populated = MetricsRegistry()
        populated.counter("c").inc(3)
        populated.gauge("g").set(7.0)
        populated.histogram("h").record(0.25)
        before = json.loads(json.dumps(populated.snapshot()))
        # empty <- populated carries everything over ...
        empty.merge_snapshot(populated.snapshot())
        assert json.loads(json.dumps(empty.snapshot())) == before
        # ... and populated <- empty changes nothing.
        populated.merge_snapshot(MetricsRegistry().snapshot())
        assert json.loads(json.dumps(populated.snapshot())) == before

    def test_histogram_bucket_union_disjoint_ranges(self):
        """Merging histograms whose buckets don't overlap keeps every
        bucket: counts, totals, and extreme quantiles all survive."""
        lows, highs = MetricsRegistry(), MetricsRegistry()
        for v in (1e-6, 2e-6, 5e-6):
            lows.histogram("h").record(v)
        for v in (10.0, 20.0, 50.0):
            highs.histogram("h").record(v)
        merged = MetricsRegistry()
        merged.merge_snapshot(json.loads(json.dumps(lows.snapshot())))
        merged.merge_snapshot(json.loads(json.dumps(highs.snapshot())))
        hist = merged.histogram("h")
        assert hist.count == 6
        assert hist.min == 1e-6
        assert hist.max == 50.0
        assert hist.total == pytest.approx(8e-6 + 80.0)
        assert hist.quantile(0.01) < 1e-4 < 1.0 < hist.quantile(0.99)

    def test_gauge_merge_is_last_write_wins(self):
        merged = MetricsRegistry()
        first, second = MetricsRegistry(), MetricsRegistry()
        first.gauge("pool").set(100.0)
        second.gauge("pool").set(42.0)
        merged.merge_snapshot(first.snapshot())
        merged.merge_snapshot(second.snapshot())
        assert merged.gauge("pool").value == 42.0
        # Counters, by contrast, accumulate.
        first.counter("n").inc(2)
        second.counter("n").inc(3)
        merged.merge_snapshot(first.snapshot())
        merged.merge_snapshot(second.snapshot())
        assert merged.counter("n").value == 5


# ----------------------------------------------------------------------
# JSONL coercion and tolerant reads
# ----------------------------------------------------------------------
class TestJsonlRobustness:
    def test_numpy_scalars_and_arrays_round_trip(self, tmp_path):
        """Every numpy type the loop's attrs can carry must serialize to
        plain JSON, not repr() strings."""
        path = tmp_path / "np.jsonl"
        with obs.JsonlSink(path) as sink:
            sink(
                {
                    "f64": np.float64(1.5),
                    "f32": np.float32(0.25),
                    "i64": np.int64(7),
                    "i32": np.int32(-3),
                    "bool": np.bool_(True),
                    "arr": np.arange(3),
                    "arr2d": np.ones((2, 2)),
                }
            )
        (record,) = obs.read_jsonl(path)
        assert record == {
            "f64": 1.5,
            "f32": 0.25,
            "i64": 7,
            "i32": -3,
            "bool": True,
            "arr": [0, 1, 2],
            "arr2d": [[1.0, 1.0], [1.0, 1.0]],
        }
        assert isinstance(record["i64"], int)
        assert isinstance(record["bool"], bool)

    def test_mid_file_torn_line_strict_raises_lenient_skips(self, tmp_path):
        path = tmp_path / "crashed.jsonl"
        path.write_text(
            '{"type": "event", "name": "a"}\n'
            '{"type": "ev'  # torn mid-file: writer crashed, file reopened
            "\n"
            '{"type": "event", "name": "b"}\n'
        )
        with pytest.raises(ValueError, match="line|invalid|:2"):
            obs.read_jsonl(path)
        events = obs.read_jsonl(path, strict=False)
        assert [e["name"] for e in events] == ["a", "b"]

    def test_torn_tail_tolerated_in_both_modes(self, tmp_path):
        path = tmp_path / "live.jsonl"
        path.write_text('{"type": "event", "name": "a"}\n{"type": "ev')
        assert len(obs.read_jsonl(path)) == 1
        assert len(obs.read_jsonl(path, strict=False)) == 1


# ----------------------------------------------------------------------
# OpenMetrics exposition
# ----------------------------------------------------------------------
class TestOpenMetrics:
    def _snapshot(self):
        registry = MetricsRegistry()
        registry.counter("tuning.steps").inc(12)
        registry.gauge("drift.epochs_completed").set(3.0)
        for v in (0.1, 0.2, 0.4):
            registry.histogram("tuning.suggest_seconds").record(v)
        return json.loads(json.dumps(registry.snapshot()))

    def test_exposition_format(self):
        from repro.obs.openmetrics import render_openmetrics

        text = render_openmetrics(self._snapshot())
        assert text.endswith("# EOF\n")
        assert "repro_tuning_steps_total 12" in text
        assert "# TYPE repro_tuning_steps counter" in text
        assert "repro_drift_epochs_completed 3.0" in text
        assert "# TYPE repro_tuning_suggest_seconds summary" in text
        assert 'quantile="0.95"' in text
        assert "repro_tuning_suggest_seconds_count 3" in text
        assert "repro_tuning_suggest_seconds_sum" in text
        # One metadata block per family, no duplicate TYPE lines.
        type_lines = [
            line for line in text.splitlines() if line.startswith("# TYPE")
        ]
        assert len(type_lines) == len(set(type_lines)) == 3

    def test_latest_snapshot_takes_the_newest(self):
        from repro.obs.openmetrics import latest_snapshot

        events = [
            {"type": "metrics", "snapshot": {"counters": {"a": 1}}},
            {"type": "event", "name": "x"},
            {"type": "metrics", "snapshot": {"counters": {"a": 5}}},
        ]
        assert latest_snapshot(events)["counters"]["a"] == 5
        assert latest_snapshot([{"type": "event", "name": "x"}]) is None

    def test_metric_name_sanitization(self):
        from repro.obs.openmetrics import metric_name

        assert metric_name("tuning.tell_seconds") == "repro_tuning_tell_seconds"
        assert metric_name("weird-name with spaces!") == (
            "repro_weird_name_with_spaces_"
        )
