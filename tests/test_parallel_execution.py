"""Process-parallel study execution (cells must be picklable)."""

from __future__ import annotations


from repro.experiments.presets import Budget
from repro.experiments.runner import SundogStudy, SyntheticStudy
from repro.topology_gen.suite import CONDITIONS


TINY = Budget(steps=4, steps_extended=5, baseline_steps=6, passes=1, repeat_best=2)


def test_synthetic_study_with_process_pool():
    serial = SyntheticStudy(
        TINY,
        conditions=[CONDITIONS[0]],
        sizes=["small"],
        strategies=["pla", "bo"],
        n_jobs=1,
    ).run()
    parallel = SyntheticStudy(
        TINY,
        conditions=[CONDITIONS[0]],
        sizes=["small"],
        strategies=["pla", "bo"],
        n_jobs=2,
    ).run()
    assert set(parallel.results) == set(serial.results)
    for key in serial.results:
        # Same seeds, same deterministic cells -> identical trajectories.
        assert parallel.results[key][0].values() == serial.results[key][0].values()


def test_sundog_study_with_process_pool():
    study = SundogStudy(TINY, arms=[("pla", "h"), ("bo", "h")], n_jobs=2).run()
    assert set(study.results) == {("pla", "h"), ("bo", "h")}
    for results in study.results.values():
        assert results[0].n_steps >= 1


def test_n_jobs_floor():
    study = SyntheticStudy(TINY, n_jobs=0)
    assert study.n_jobs == 1
