"""Crash-safe checkpointing and resume.

The acceptance criterion: a campaign killed with ``SIGKILL`` mid-run
and resumed from its checkpoint produces a byte-identical observation
history (:func:`repro.core.checkpoint.canonical_history`) to the
uninterrupted run.
"""

from __future__ import annotations

import json
import os
import stat
import subprocess
import sys
import textwrap
import time
from pathlib import Path

import pytest

from repro.core.baselines import GridAscentOptimizer
from repro.core.checkpoint import (
    TuningCheckpoint,
    atomic_write_text,
    canonical_history,
    histories_match,
    load_checkpoint,
    save_checkpoint,
)
from repro.core.continuous import SIDECAR_NAME, ContinuousTuningLoop
from repro.core.history import Observation
from repro.core.loop import TuningLoop
from repro.core.optimizer import BayesianOptimizer
from repro.core.parameters import IntParameter, ParameterSpace
from repro.experiments.presets import Budget
from repro.experiments.runner import (
    StudyError,
    SyntheticCellSpec,
    SyntheticStudy,
    evaluation_failure_rows,
    run_synthetic_cell,
)
from repro.topology_gen.suite import CONDITIONS


def _objective(params):
    return float((int(params["x"]) * 7) % 13)


def _space():
    return ParameterSpace([IntParameter("x", 1, 32)])


def _observations(n=3):
    return [
        Observation(step=i, config={"x": i + 1}, value=float(i * 10))
        for i in range(n)
    ]


class TestCheckpointFile:
    def test_round_trip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        ckpt = TuningCheckpoint(
            strategy="bo",
            seed=7,
            max_steps=10,
            observations=_observations(),
            optimizer_state={"kind": "test"},
        )
        save_checkpoint(path, ckpt)
        loaded = load_checkpoint(path)
        assert loaded is not None
        assert loaded.strategy == "bo"
        assert loaded.seed == 7
        assert loaded.max_steps == 10
        assert loaded.completed == 3
        assert loaded.optimizer_state == {"kind": "test"}
        assert histories_match(loaded.observations, ckpt.observations)

    def test_missing_file(self, tmp_path):
        assert load_checkpoint(tmp_path / "absent.jsonl") is None

    def test_torn_tail_is_dropped(self, tmp_path):
        path = tmp_path / "run.jsonl"
        save_checkpoint(
            path, TuningCheckpoint(strategy="bo", observations=_observations())
        )
        text = path.read_text().rstrip("\n")
        path.write_text(text[: len(text) - 20])  # simulate a torn write
        with pytest.warns(RuntimeWarning) as caught:
            loaded = load_checkpoint(path)
        assert loaded is not None
        assert loaded.completed == 2  # last record was torn, rest kept
        # The warning must name the exact rejected record — which file
        # and which line — so a post-hoc resume diagnosis can find it.
        message = str(caught[0].message)
        assert str(path) in message
        assert "line 4" in message
        assert "keeping the 2 observation(s)" in message

    def test_no_meta_means_no_checkpoint(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text(json.dumps({"type": "observation", "step": 0}) + "\n")
        assert load_checkpoint(path) is None

    def test_atomic_write_creates_parents(self, tmp_path):
        path = tmp_path / "a" / "b" / "file.txt"
        atomic_write_text(path, "hello")
        assert path.read_text() == "hello"
        assert not list(path.parent.glob("*.tmp"))

    def test_canonical_history_ignores_timings(self):
        a = Observation(
            step=0, config={"x": 1}, value=5.0, suggest_seconds=0.1,
            evaluate_seconds=0.2,
        )
        b = Observation(
            step=0, config={"x": 1}, value=5.0, suggest_seconds=9.9,
            evaluate_seconds=9.9,
        )
        assert canonical_history([a]) == canonical_history([b])

    def test_canonical_history_sees_failures(self):
        ok = Observation(step=0, config={"x": 1}, value=0.0)
        bad = Observation(
            step=0, config={"x": 1}, value=0.0, failed=True,
            failure_reason="worker_crash: x",
        )
        assert canonical_history([ok]) != canonical_history([bad])

    def test_version_mismatch_is_rejected_with_warning(self, tmp_path):
        """A checkpoint written by a different format version must not
        be silently parsed into garbage — warn and start fresh."""
        path = tmp_path / "run.jsonl"
        save_checkpoint(
            path, TuningCheckpoint(strategy="bo", observations=_observations())
        )
        lines = path.read_text().splitlines()
        meta = json.loads(lines[0])
        meta["version"] = 999
        lines[0] = json.dumps(meta)
        path.write_text("\n".join(lines) + "\n")
        with pytest.warns(RuntimeWarning, match="version"):
            assert load_checkpoint(path) is None

    def test_atomic_write_fsyncs_the_directory(self, tmp_path, monkeypatch):
        """os.replace lives in directory metadata; without a directory
        fsync a power cut can forget the rename after the data synced."""
        synced_kinds = []
        real_fsync = os.fsync

        def recording(fd):
            synced_kinds.append(stat.S_ISDIR(os.fstat(fd).st_mode))
            real_fsync(fd)

        monkeypatch.setattr(os, "fsync", recording)
        atomic_write_text(tmp_path / "file.txt", "payload")
        assert False in synced_kinds  # the temp file's data
        assert True in synced_kinds  # the rename, in directory metadata


class TestLoopCheckpointing:
    def test_checkpoint_written_after_every_tell(self, tmp_path):
        path = tmp_path / "run.jsonl"
        opt = BayesianOptimizer(_space(), seed=0)
        result = TuningLoop(
            _objective, opt, max_steps=4, seed=1, checkpoint_path=path
        ).run()
        loaded = load_checkpoint(path)
        assert loaded is not None
        assert loaded.completed == 4
        assert loaded.optimizer_state is not None
        assert histories_match(loaded.observations, result.observations)

    def test_exact_resume_matches_uninterrupted(self, tmp_path):
        def run(max_steps, path):
            opt = BayesianOptimizer(_space(), seed=3)
            return TuningLoop(
                _objective, opt, max_steps=max_steps, seed=11,
                checkpoint_path=path,
            ).run()

        full = run(6, tmp_path / "full.jsonl")
        run(3, tmp_path / "cut.jsonl")  # the "crashed" half-run
        resumed = run(6, tmp_path / "cut.jsonl")
        assert resumed.metadata["resumed_steps"] == 3
        assert histories_match(resumed.observations, full.observations)
        assert canonical_history(resumed.observations) == canonical_history(
            full.observations
        )

    def test_replay_resume_for_stateless_optimizer(self, tmp_path):
        configs = [{"x": v} for v in (1, 2, 3, 4, 5, 6)]

        def run(max_steps, path):
            opt = GridAscentOptimizer(configs)
            return TuningLoop(
                _objective, opt, max_steps=max_steps, seed=2,
                checkpoint_path=path, strategy_name="grid",
            ).run()

        full = run(6, tmp_path / "full.jsonl")
        run(2, tmp_path / "cut.jsonl")
        resumed = run(6, tmp_path / "cut.jsonl")
        assert resumed.metadata["resumed_steps"] == 2
        assert histories_match(resumed.observations, full.observations)

    def test_completed_checkpoint_short_circuits_the_loop(self, tmp_path):
        path = tmp_path / "run.jsonl"
        calls = []

        def counting(params):
            calls.append(1)
            return _objective(params)

        opt = BayesianOptimizer(_space(), seed=0)
        TuningLoop(
            counting, opt, max_steps=3, seed=1, checkpoint_path=path
        ).run()
        n_first = len(calls)
        opt2 = BayesianOptimizer(_space(), seed=0)
        result = TuningLoop(
            counting, opt2, max_steps=3, seed=1, checkpoint_path=path
        ).run()
        assert len(calls) == n_first  # nothing re-evaluated
        assert result.metadata["resumed_steps"] == 3


@pytest.mark.slow
class TestKillMidRun:
    def test_sigkill_then_resume_is_byte_identical(self, tmp_path):
        """kill -9 a checkpointing run; resume reproduces the history."""
        ckpt = tmp_path / "killed.jsonl"
        script = tmp_path / "child.py"
        script.write_text(
            textwrap.dedent(
                """
                import sys, time
                from repro.core.loop import TuningLoop
                from repro.core.optimizer import BayesianOptimizer
                from repro.core.parameters import IntParameter, ParameterSpace

                def objective(params):
                    time.sleep(0.1)  # slow enough to die mid-run
                    return float((int(params["x"]) * 7) % 13)

                space = ParameterSpace([IntParameter("x", 1, 32)])
                opt = BayesianOptimizer(space, seed=3)
                TuningLoop(
                    objective, opt, max_steps=16, seed=11,
                    checkpoint_path=sys.argv[1],
                ).run()
                """
            )
        )
        proc = subprocess.Popen(
            [sys.executable, str(script), str(ckpt)],
            cwd="/root/repo",
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        try:
            deadline = time.time() + 60
            while time.time() < deadline:
                loaded = load_checkpoint(ckpt)
                if loaded is not None and loaded.completed >= 2:
                    break
                if proc.poll() is not None:
                    break
                time.sleep(0.05)
            proc.kill()  # SIGKILL: no atexit, no cleanup
        finally:
            proc.wait()
        killed = load_checkpoint(ckpt)
        assert killed is not None
        assert 0 < killed.completed < 16, "child died mid-run as intended"

        reference = TuningLoop(
            _objective,
            BayesianOptimizer(_space(), seed=3),
            max_steps=16,
            seed=11,
        ).run()
        resumed = TuningLoop(
            _objective,
            BayesianOptimizer(_space(), seed=3),
            max_steps=16,
            seed=11,
            checkpoint_path=ckpt,
        ).run()
        assert resumed.metadata["resumed_steps"] == killed.completed
        assert canonical_history(resumed.observations) == canonical_history(
            reference.observations
        )


class _DriftingParabola:
    """Deterministic grid objective whose ceiling collapses at t >= 1000s.

    Integer grid on purpose: byte-identity requires proposals that
    survive the optimizer-state round-trip of a resume, and rounding
    absorbs the ~1e-14 posterior difference continuous coordinates
    would expose.
    """

    def __init__(self):
        self.t = 0.0

    def set_workload_time(self, t_s):
        self.t = float(t_s)

    def __call__(self, params):
        scale = 100.0 if self.t < 1000.0 else 40.0
        x = float(params["x"]) / 100.0
        y = float(params["y"]) / 100.0
        return scale * (1.0 - (x - 0.5) ** 2 - (y - 0.5) ** 2)


def _drift_loop(objective, checkpoint_dir):
    space = ParameterSpace(
        [IntParameter("x", 0, 100), IntParameter("y", 0, 100)]
    )
    return ContinuousTuningLoop(
        objective,
        lambda seed: BayesianOptimizer(space, seed=seed, init_points=3),
        epochs=4,
        epoch_duration_s=600.0,
        steps_per_epoch=4,
        initial_steps=6,
        mode="continuous",
        seed=5,
        checkpoint_dir=checkpoint_dir,
    )


@pytest.mark.slow
class TestKillMidDrift:
    def test_sigkill_across_drift_event_resumes_byte_identical(
        self, tmp_path
    ):
        """kill -9 a continuous-tuning campaign mid-epoch *after* its
        drift detection; the resumed run reproduces the uninterrupted
        history byte-identically, detections included."""
        ckpt_dir = tmp_path / "drift"
        script = tmp_path / "child.py"
        script.write_text(
            textwrap.dedent(
                """
                import sys, time
                from repro.core.continuous import ContinuousTuningLoop
                from repro.core.optimizer import BayesianOptimizer
                from repro.core.parameters import IntParameter, ParameterSpace

                class DriftingParabola:
                    def __init__(self):
                        self.t = 0.0
                    def set_workload_time(self, t_s):
                        self.t = float(t_s)
                    def __call__(self, params):
                        time.sleep(0.1)  # slow enough to die mid-epoch
                        scale = 100.0 if self.t < 1000.0 else 40.0
                        x = float(params["x"]) / 100.0
                        y = float(params["y"]) / 100.0
                        return scale * (1.0 - (x - 0.5) ** 2 - (y - 0.5) ** 2)

                space = ParameterSpace(
                    [IntParameter("x", 0, 100), IntParameter("y", 0, 100)]
                )
                ContinuousTuningLoop(
                    DriftingParabola(),
                    lambda seed: BayesianOptimizer(space, seed=seed, init_points=3),
                    epochs=4, epoch_duration_s=600.0, steps_per_epoch=4,
                    initial_steps=6, mode="continuous", seed=5,
                    checkpoint_dir=sys.argv[1],
                ).run()
                """
            )
        )

        def past_detection():
            sidecar = ckpt_dir / SIDECAR_NAME
            if not sidecar.is_file():
                return False
            try:
                data = json.loads(sidecar.read_text())
            except (OSError, json.JSONDecodeError):
                return False
            if not data.get("detections"):
                return False
            completed = int(data.get("epochs_completed", 0))
            if completed >= 4:
                return False
            partial = load_checkpoint(ckpt_dir / f"epoch-{completed:04d}.jsonl")
            return partial is not None and partial.completed >= 1

        proc = subprocess.Popen(
            [sys.executable, str(script), str(ckpt_dir)],
            cwd="/root/repo",
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        killed_mid_run = False
        try:
            deadline = time.time() + 120
            while time.time() < deadline:
                if past_detection():
                    killed_mid_run = True
                    break
                if proc.poll() is not None:
                    break
                time.sleep(0.05)
            proc.kill()  # SIGKILL: no atexit, no cleanup
        finally:
            proc.wait()
        assert killed_mid_run, "child died mid-epoch past its detection"

        reference = _drift_loop(_DriftingParabola(), None).run()
        resumed = _drift_loop(_DriftingParabola(), ckpt_dir).run()
        assert resumed.metadata["resumed_epochs"] >= 3
        assert resumed.detections == reference.detections
        assert canonical_history(resumed.observations) == canonical_history(
            reference.observations
        )


def _tiny_budget():
    return Budget(
        steps=3, steps_extended=3, baseline_steps=3, passes=1, repeat_best=2
    )


class TestStudyCheckpointing:
    def _spec(self, tmp_path):
        return SyntheticCellSpec(
            size="small",
            condition=CONDITIONS[0],
            strategy="pla",
            budget=_tiny_budget(),
            seed=0,
            checkpoint_dir=str(tmp_path),
        )

    def test_cell_writes_pass_and_done_files(self, tmp_path):
        results = run_synthetic_cell(self._spec(tmp_path))
        files = {p.name for p in Path(tmp_path).iterdir()}
        assert any(name.endswith(".pass0.jsonl") for name in files)
        assert any(name.endswith(".done.json") for name in files)
        assert results[0].observations

    def test_done_cell_is_not_rerun(self, tmp_path):
        first = run_synthetic_cell(self._spec(tmp_path))
        again = run_synthetic_cell(self._spec(tmp_path))
        assert histories_match(
            first[0].observations, again[0].observations
        )
        assert again[0].metadata["pass"] == 0

    def test_study_plumbs_checkpoint_dir(self, tmp_path):
        study = SyntheticStudy(
            _tiny_budget(),
            conditions=[CONDITIONS[0]],
            sizes=["small"],
            strategies=["pla"],
            checkpoint_dir=str(tmp_path),
        )
        assert study.specs()[0].checkpoint_dir == str(tmp_path)
        study.run()
        assert any(
            p.name.endswith(".done.json") for p in Path(tmp_path).iterdir()
        )


class TestStudyErrorAggregation:
    def test_bad_cell_raises_study_error_with_label(self):
        study = SyntheticStudy(
            _tiny_budget(),
            conditions=[CONDITIONS[0]],
            sizes=["small"],
            strategies=["pla", "nope"],
        )
        with pytest.raises(StudyError) as info:
            study.run()
        failures = dict(info.value.failures)
        assert list(failures) == [f"{CONDITIONS[0].label}/small/nope"]
        assert "unknown synthetic strategy" in failures[
            f"{CONDITIONS[0].label}/small/nope"
        ]
        # The good cell's results were still computed and stored? No —
        # run() raises before storing, but its compute wasn't wasted:
        # all cells were attempted (one failure listed, not two).
        assert len(info.value.failures) == 1

    def test_evaluation_failure_rows(self):
        from repro.core.history import TuningResult

        class FakeStudy:
            results = {
                (CONDITIONS[0], "small", "bo"): [
                    TuningResult(
                        strategy="bo",
                        observations=[
                            Observation(
                                step=0, config={}, value=0.0, failed=True,
                                failure_reason="worker_crash: x",
                            )
                        ],
                        metadata={"pass": 0},
                    )
                ],
                ("bo", "h"): [
                    TuningResult(
                        strategy="bo",
                        observations=[
                            Observation(step=0, config={}, value=5.0)
                        ],
                    )
                ],
            }

        rows = evaluation_failure_rows(FakeStudy())
        assert len(rows) == 1
        assert rows[0]["cell"].endswith("/small/bo")
        assert rows[0]["last_reason"].startswith("worker_crash")


@pytest.mark.slow
class TestCliResume:
    def _tiny(self, monkeypatch):
        import repro.cli as cli
        from repro.experiments import presets

        tiny = presets.Budget(
            steps=3, steps_extended=4, baseline_steps=4, passes=1,
            repeat_best=2,
        )
        monkeypatch.setattr(presets, "default_budget", lambda: tiny)
        monkeypatch.setattr(cli, "default_budget", lambda: tiny)

    def test_resume_flag_checkpoints_and_reuses(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.cli import main

        self._tiny(monkeypatch)
        resume_dir = tmp_path / "ckpt"
        assert main(["fig5", "--resume", str(resume_dir)]) == 0
        first = capsys.readouterr().out
        assert "Figure 5" in first
        done_files = list(resume_dir.glob("*.done.json"))
        assert done_files

        # Second invocation resumes from the done files: same exhibit.
        assert main(["fig5", "--resume", str(resume_dir)]) == 0
        second = capsys.readouterr().out
        assert first.splitlines()[-5:] == second.splitlines()[-5:]
