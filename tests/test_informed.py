"""Base parallelism weights and the informed codec (paper §V-A)."""

from __future__ import annotations

import pytest

from repro.core.informed import (
    InformedParallelismCodec,
    base_parallelism_weights,
    informed_hint_table,
)
from repro.storm.topology import TopologyBuilder, linear_topology


def test_spouts_have_weight_one(fan_topology):
    weights = base_parallelism_weights(fan_topology)
    assert weights["src"] == 1.0


def test_chain_weights_stay_constant():
    topo = linear_topology("chain", 4)
    weights = base_parallelism_weights(topo)
    assert all(w == 1.0 for w in weights.values())


def test_bolt_weight_is_sum_of_parents(diamond):
    # S -> B1, S -> B2, B1 -> B2
    weights = base_parallelism_weights(diamond)
    assert weights["S"] == 1.0
    assert weights["B1"] == 1.0
    assert weights["B2"] == 2.0


def test_multi_source_join():
    builder = TopologyBuilder("join")
    builder.spout("s1")
    builder.spout("s2")
    builder.spout("s3")
    builder.bolt("join", inputs=["s1", "s2", "s3"])
    builder.bolt("post", inputs=["join"])
    topo = builder.build()
    weights = base_parallelism_weights(topo)
    assert weights["join"] == 3.0
    assert weights["post"] == 3.0


def test_weights_grow_along_converging_paths():
    builder = TopologyBuilder("deep")
    builder.spout("s")
    builder.bolt("a", inputs=["s"])
    builder.bolt("b", inputs=["s"])
    builder.bolt("c", inputs=["a", "b"])
    builder.bolt("d", inputs=["c", "a"])
    topo = builder.build()
    weights = base_parallelism_weights(topo)
    assert weights["c"] == 2.0
    assert weights["d"] == 3.0


class TestInformedCodec:
    def test_hints_scale_with_multiplier(self, diamond):
        codec = InformedParallelismCodec(diamond)
        hints = codec.hints_for(3.0)
        assert hints == {"S": 3, "B1": 3, "B2": 6}

    def test_hints_floor_at_one(self, diamond):
        codec = InformedParallelismCodec(diamond)
        hints = codec.hints_for(0.1)
        assert all(h >= 1 for h in hints.values())

    def test_multiplier_must_be_positive(self, diamond):
        codec = InformedParallelismCodec(diamond)
        with pytest.raises(ValueError):
            codec.hints_for(0.0)

    def test_multiplier_step_adds_about_one_task_per_op(self, diamond):
        codec = InformedParallelismCodec(diamond)
        step = codec.multiplier_step()
        # total weight = 4, ops = 3 -> step = 0.75
        assert step == pytest.approx(3 / 4)

    def test_multiplier_for_total_tasks(self, diamond):
        codec = InformedParallelismCodec(diamond)
        m = codec.multiplier_for_total_tasks(40)
        hints = codec.hints_for(m)
        assert sum(hints.values()) == pytest.approx(40, abs=2)

    def test_multiplier_for_total_tasks_validates(self, diamond):
        codec = InformedParallelismCodec(diamond)
        with pytest.raises(ValueError):
            codec.multiplier_for_total_tasks(2)

    def test_informed_hint_table(self, diamond):
        table = informed_hint_table(diamond, [1.0, 2.0])
        assert set(table) == {1.0, 2.0}
        assert table[2.0]["B2"] == 4
