"""Figure-builder edge cases and helpers."""

from __future__ import annotations

import pytest

from repro.experiments import figures
from repro.experiments.presets import Budget
from repro.experiments.runner import SundogStudy, SyntheticStudy
from repro.topology_gen.suite import CONDITIONS


@pytest.fixture(scope="module")
def bo_only_study():
    """A study without bo180 — figure 6 must fall back to bo traces."""
    budget = Budget(
        steps=6, steps_extended=7, baseline_steps=8, passes=1, repeat_best=2
    )
    return SyntheticStudy(
        budget,
        conditions=[CONDITIONS[0]],
        sizes=["small"],
        strategies=["pla", "bo"],
    ).run()


@pytest.fixture(scope="module")
def partial_sundog():
    budget = Budget(
        steps=6, steps_extended=7, baseline_steps=10, passes=1, repeat_best=2
    )
    return SundogStudy(budget, arms=[("pla", "h"), ("bo", "h")]).run()


class TestFigure6Fallback:
    def test_uses_bo_when_bo180_missing(self, bo_only_study):
        data = figures.figure6_loess_traces(bo_only_study)
        assert len(data.series) == 1
        (xs, ys), = data.series.values()
        assert max(xs) <= bo_only_study.budget.steps


class TestFigure8Partial:
    def test_figure8a_with_partial_arms(self, partial_sundog):
        data = figures.figure8a_sundog_throughput(partial_sundog)
        assert len(data.rows) == 2

    def test_figure8b_skips_missing_traces(self, partial_sundog):
        data = figures.figure8b_sundog_convergence(partial_sundog)
        assert set(data.series) == {"pla.h"}

    def test_t_tests_skip_missing_arms(self, partial_sundog):
        notes = figures.sundog_t_tests(partial_sundog)
        assert all("bs bp" not in note for note in notes)

    def test_speedup_requires_tuned_arm(self, partial_sundog):
        with pytest.raises(ValueError):
            figures.speedup_over_pla(partial_sundog)


class TestConfigSummary:
    def test_summarize_config_picks_interesting_keys(self):
        text = figures._summarize_config(
            {
                "batch_size": 100,
                "hint__a": 3,
                "hint__b": 5,
                "uniform_hint": 7,
            }
        )
        assert "batch_size=100" in text
        assert "hints median=4" in text
        assert "uniform_hint=7" in text

    def test_summarize_config_empty(self):
        assert figures._summarize_config({}) == ""


class TestRepresentativeRun:
    def test_representative_run_picks_best_uniform(self):
        from repro.experiments.presets import SYNTHETIC_BASE_CONFIG
        from repro.topology_gen.suite import base_topology

        topo = base_topology("small")
        run = figures._representative_run(topo, SYNTHETIC_BASE_CONFIG, max_hint=8)
        assert run.throughput_tps > 0
        # Must be at least as good as a mid-range uniform setting.
        from repro.experiments.presets import default_cluster
        from repro.storm.analytic import AnalyticPerformanceModel

        model = AnalyticPerformanceModel(topo, default_cluster())
        mid = model.evaluate_noise_free(
            SYNTHETIC_BASE_CONFIG.replace(
                parallelism_hints={n: 4 for n in topo}
            )
        )
        assert run.throughput_tps >= mid.throughput_tps - 1e-9


def test_module_cli_alias(capsys):
    import subprocess
    import sys

    proc = subprocess.run(
        [sys.executable, "-m", "repro.experiments", "table1"],
        capture_output=True,
        text=True,
        timeout=120,
    )
    assert proc.returncode == 0
    assert "Table I" in proc.stdout
