"""Workload drift: schedules, detection, and continuous tuning.

Covers the drift subsystem end to end (docs/DRIFT.md): time-varying
workload schedules evaluated bit-identically by both analytic engines,
the Page-Hinkley detector over incumbent re-measurements, the
trust-region / stale-observation re-tune machinery on the optimizer,
and the epoch-structured :class:`ContinuousTuningLoop` — including
crash-and-resume determinism across a drift event.
"""

from __future__ import annotations

import json
import math

import numpy as np
import pytest

from repro.core.checkpoint import canonical_history
from repro.core.continuous import (
    SIDECAR_NAME,
    SIDECAR_VERSION,
    ContinuousTuningLoop,
)
from repro.core.drift import PageHinkleyDetector
from repro.core.optimizer import BayesianOptimizer
from repro.core.parameters import (
    FloatParameter,
    IntParameter,
    ParameterSpace,
)
from repro.experiments.presets import SYNTHETIC_BASE_CONFIG, default_cluster
from repro.storm.analytic import AnalyticPerformanceModel
from repro.storm.schedule import (
    ConstantSchedule,
    DiurnalSchedule,
    FlashCrowdSchedule,
    SkewShiftSchedule,
    WorkloadPoint,
)
from repro.storm.spaces import ParallelismCodec
from repro.topology_gen.suite import make_topology


# ----------------------------------------------------------------------
# Schedules
# ----------------------------------------------------------------------
class TestSchedules:
    def test_point_validation(self):
        with pytest.raises(ValueError):
            WorkloadPoint(load=0.0)
        with pytest.raises(ValueError):
            WorkloadPoint(skew=1.0)
        assert WorkloadPoint().is_baseline
        assert not WorkloadPoint(load=1.5).is_baseline

    def test_constant_schedule(self):
        sched = ConstantSchedule(WorkloadPoint(load=1.3, skew=0.2))
        assert sched.at(0.0) == sched.at(9_999.0)
        assert sched.at(5.0).load == 1.3

    def test_diurnal_trough_at_zero_and_period(self):
        sched = DiurnalSchedule(period_s=1_000.0, amplitude=0.4)
        assert sched.at(0.0).load == pytest.approx(0.6)
        assert sched.at(250.0).load == pytest.approx(1.0)
        assert sched.at(500.0).load == pytest.approx(1.4)
        assert sched.at(0.0).load == pytest.approx(sched.at(1_000.0).load)

    def test_flash_step_and_decay(self):
        step = FlashCrowdSchedule(onset_s=100.0, flash_load=1.8)
        assert step.at(99.9).load == 1.0
        assert step.at(100.0).load == 1.8
        assert step.at(1e6).load == 1.8
        decay = FlashCrowdSchedule(onset_s=100.0, flash_load=1.8, decay_s=50.0)
        assert decay.at(100.0).load == pytest.approx(1.8)
        assert 1.0 < decay.at(200.0).load < 1.8
        assert decay.at(1e6).load == pytest.approx(1.0)

    def test_skew_ramp(self):
        sched = SkewShiftSchedule(
            ramp_start_s=100.0, ramp_end_s=300.0, final_skew=0.5
        )
        assert sched.at(0.0).skew == 0.0
        assert sched.at(200.0).skew == pytest.approx(0.25)
        assert sched.at(300.0).skew == 0.5
        assert sched.at(1e9).skew == 0.5

    def test_purity(self):
        """`at` must be a pure function of t (resume determinism)."""
        for sched in (
            DiurnalSchedule(period_s=4_800.0, amplitude=0.5),
            FlashCrowdSchedule(onset_s=1_500.0, flash_load=1.7),
            SkewShiftSchedule(ramp_start_s=1_200.0, ramp_end_s=1_800.0),
        ):
            for t in (0.0, 777.3, 1_500.0, 9_001.0):
                assert sched.at(t) == sched.at(t)


class TestScheduledEnginesBitExact:
    """Scalar and batch engines agree bit-for-bit under schedules."""

    @pytest.mark.parametrize(
        "schedule",
        [
            DiurnalSchedule(period_s=4_800.0, amplitude=0.5),
            FlashCrowdSchedule(onset_s=1_500.0, flash_load=1.7),
            SkewShiftSchedule(
                ramp_start_s=1_200.0, ramp_end_s=1_800.0, final_skew=0.5
            ),
        ],
        ids=["diurnal", "flash", "skew"],
    )
    def test_scalar_vs_batch(self, schedule):
        topology = make_topology("small")
        cluster = default_cluster()
        codec = ParallelismCodec(topology, cluster, SYNTHETIC_BASE_CONFIG)
        model = AnalyticPerformanceModel(topology, cluster, schedule=schedule)
        rng = np.random.default_rng(11)
        points = codec.space.latin_hypercube(12, rng)
        configs = [
            codec.decode(codec.space.decode(np.asarray(p)))
            for p in codec.space.round_trip_batch(points)
        ]
        for t in (0.0, 600.0, 1_500.0, 2_400.0):
            scalar = [
                model.evaluate_noise_free(c, workload_time_s=t)
                for c in configs
            ]
            batched = model.evaluate_noise_free_batch(
                configs, workload_time_s=t
            )
            assert scalar == batched

    def test_schedule_actually_changes_the_surface(self):
        topology = make_topology("small")
        cluster = default_cluster()
        codec = ParallelismCodec(topology, cluster, SYNTHETIC_BASE_CONFIG)
        schedule = FlashCrowdSchedule(onset_s=1_500.0, flash_load=1.7)
        model = AnalyticPerformanceModel(topology, cluster, schedule=schedule)
        rng = np.random.default_rng(3)
        config = codec.decode(
            codec.space.decode(
                np.asarray(codec.space.latin_hypercube(1, rng)[0])
            )
        )
        before = model.evaluate_noise_free(config, workload_time_s=0.0)
        after = model.evaluate_noise_free(config, workload_time_s=2_000.0)
        if not (before.failed or after.failed):
            assert before.throughput_tps != after.throughput_tps


# ----------------------------------------------------------------------
# Page-Hinkley detector
# ----------------------------------------------------------------------
class TestPageHinkley:
    def test_stable_series_never_fires(self):
        det = PageHinkleyDetector()
        assert not any(det.update(100.0) for _ in range(50))

    def test_detects_collapse(self):
        det = PageHinkleyDetector()
        det.update(100.0)
        det.update(100.0)
        assert det.update(60.0)
        assert det.n_detections == 1

    def test_two_sided_detects_surge(self):
        det = PageHinkleyDetector()
        det.update(100.0)
        det.update(100.0)
        assert det.update(150.0)

    def test_min_samples_gate(self):
        det = PageHinkleyDetector(min_samples=3)
        assert not det.update(100.0)
        assert not det.update(0.0)  # would fire, but only 2 samples
        assert det.update(0.0)

    def test_scale_free(self):
        """Relative deviations: same series ×1000 → same statistic."""
        series = [100.0, 104.0, 98.0, 101.0, 80.0, 70.0]
        a = PageHinkleyDetector()
        b = PageHinkleyDetector()
        for v in series:
            a.update(v)
            b.update(v * 1_000.0)
        assert a.statistic == pytest.approx(b.statistic, rel=1e-12)

    def test_non_finite_rejected(self):
        det = PageHinkleyDetector()
        with pytest.raises(ValueError):
            det.update(math.nan)
        with pytest.raises(ValueError):
            det.update(math.inf)

    def test_reset_rearms(self):
        det = PageHinkleyDetector()
        det.update(100.0)
        det.update(100.0)
        assert det.update(50.0)
        det.reset()
        assert det.n_samples == 0
        assert det.statistic == 0.0
        assert not det.update(50.0)  # new series, new reference

    def test_state_roundtrip_mid_stream(self):
        series = [100.0, 103.0, 97.0, 95.0, 70.0, 60.0, 55.0]
        a = PageHinkleyDetector(delta=0.03, threshold=0.3)
        for v in series[:4]:
            a.update(v)
        b = PageHinkleyDetector.from_state_dict(a.state_dict())
        for v in series[4:]:
            assert a.update(v) == b.update(v)
        assert a.statistic == b.statistic
        assert a.n_detections == b.n_detections

    def test_state_is_pure_json(self):
        det = PageHinkleyDetector()
        det.update(10.0)
        det.update(5.0)
        json.dumps(det.state_dict())  # must not raise

    def test_validation(self):
        with pytest.raises(ValueError):
            PageHinkleyDetector(delta=-0.1)
        with pytest.raises(ValueError):
            PageHinkleyDetector(threshold=0.0)
        with pytest.raises(ValueError):
            PageHinkleyDetector(min_samples=0)


# ----------------------------------------------------------------------
# Optimizer re-tune machinery
# ----------------------------------------------------------------------
def _float_space():
    return ParameterSpace(
        [FloatParameter("x", 0.0, 1.0), FloatParameter("y", 0.0, 1.0)]
    )


def _parabola(params):
    x, y = float(params["x"]), float(params["y"])
    return 10.0 - (x - 0.5) ** 2 - (y - 0.5) ** 2


class TestRetuneFromIncumbent:
    def _seeded(self, n=6, seed=0):
        opt = BayesianOptimizer(_float_space(), seed=seed, init_points=3)
        for _ in range(n):
            config = opt.ask()
            opt.tell(config, _parabola(config))
        return opt

    def test_trust_region_confines_proposals(self):
        opt = self._seeded()
        incumbent = {"x": 0.5, "y": 0.5}
        opt.retune_from_incumbent(incumbent, trust_radius=0.1)
        center = opt.space.encode(incumbent)
        for _ in range(4):
            config = opt.ask()
            encoded = opt.space.encode(config)
            assert np.all(np.abs(encoded - center) <= 0.1 + 1e-9)
            opt.tell(config, _parabola(config))

    def test_stale_inflation_marks_old_observations(self):
        opt = self._seeded(n=5)
        opt.retune_from_incumbent({"x": 0.5, "y": 0.5}, stale_inflation=4.0)
        assert all(v == 4.0 for v in opt._stale_var)
        assert opt.telemetry["stale_observations"] == 5
        config = opt.ask()
        opt.tell(config, _parabola(config))
        assert opt._stale_var[-1] == 0.0  # fresh observation, full weight

    def test_repeated_retunes_compound(self):
        opt = self._seeded(n=4)
        opt.retune_from_incumbent({"x": 0.5, "y": 0.5}, stale_inflation=2.0)
        opt.retune_from_incumbent({"x": 0.5, "y": 0.5}, stale_inflation=2.0)
        assert all(v == 4.0 for v in opt._stale_var)

    def test_none_radius_skips_the_box(self):
        opt = self._seeded()
        opt.retune_from_incumbent(
            {"x": 0.5, "y": 0.5}, trust_radius=None, stale_inflation=4.0
        )
        assert opt.acq.trust_region is None
        assert all(v == 4.0 for v in opt._stale_var)

    def test_clear_trust_region(self):
        opt = self._seeded()
        opt.retune_from_incumbent({"x": 0.5, "y": 0.5}, trust_radius=0.1)
        assert opt.acq.trust_region is not None
        opt.clear_trust_region()
        assert opt.acq.trust_region is None
        assert opt.telemetry["trust_radius"] is None

    def test_validation(self):
        opt = self._seeded(n=3)
        with pytest.raises(ValueError):
            opt.retune_from_incumbent({"x": 0.5, "y": 0.5}, trust_radius=0.0)
        with pytest.raises(ValueError):
            opt.retune_from_incumbent(
                {"x": 0.5, "y": 0.5}, stale_inflation=-1.0
            )

    def test_state_roundtrip_preserves_retune(self):
        opt = self._seeded()
        opt.retune_from_incumbent({"x": 0.5, "y": 0.5}, trust_radius=0.12)
        clone = BayesianOptimizer.from_state_dict(opt.state_dict())
        assert clone._stale_var == opt._stale_var
        assert clone.acq.trust_region is not None
        center, radius = clone.acq.trust_region
        assert radius == 0.12
        assert np.array_equal(center, opt.space.encode({"x": 0.5, "y": 0.5}))
        assert clone.ask() == opt.ask()


# ----------------------------------------------------------------------
# Continuous tuning loop
# ----------------------------------------------------------------------
class DriftingParabola:
    """Deterministic 2-D objective whose ceiling collapses at t >= drop_at.

    Plain-callable objective with the ``set_workload_time`` hook the
    loop looks for; no noise, so runs are exactly reproducible.  Lives
    on an integer grid: byte-identity claims need proposals that
    survive an optimizer state round-trip, and integer rounding absorbs
    the ~1e-14 posterior difference between incremental updates and a
    from-scratch refresh that continuous coordinates would expose.
    """

    def __init__(self, drop_at_s: float = 1_000.0):
        self.t = 0.0
        self.drop_at_s = float(drop_at_s)

    def set_workload_time(self, t_s: float) -> None:
        self.t = float(t_s)

    def __call__(self, params):
        scale = 100.0 if self.t < self.drop_at_s else 40.0
        return scale * (1.0 - _dist2(params))


def _dist2(params) -> float:
    x = float(params["x"]) / 100.0
    y = float(params["y"]) / 100.0
    return (x - 0.5) ** 2 + (y - 0.5) ** 2


def _grid_space():
    return ParameterSpace(
        [IntParameter("x", 0, 100), IntParameter("y", 0, 100)]
    )


def _make_optimizer(seed):
    return BayesianOptimizer(_grid_space(), seed=seed, init_points=3)


def _loop(objective, *, mode="continuous", epochs=4, seed=5, **kwargs):
    return ContinuousTuningLoop(
        objective,
        _make_optimizer,
        epochs=epochs,
        epoch_duration_s=600.0,
        steps_per_epoch=4,
        initial_steps=6,
        mode=mode,
        seed=seed,
        **kwargs,
    )


class TestContinuousTuningLoop:
    def test_detects_the_drop_and_retunes(self):
        result = _loop(DriftingParabola(drop_at_s=1_000.0)).run()
        # Monitors run at t=600 (pre-drop) and t=1200/1800 (post-drop):
        # exactly one detection, at epoch 2, answered by a re-tune.
        assert result.detections == [2]
        assert result.epochs[2].retuned
        assert not result.epochs[2].restarted
        assert result.metadata["n_detections"] == 1

    def test_no_detection_without_drift(self):
        result = _loop(DriftingParabola(drop_at_s=1e9)).run()
        assert result.detections == []
        assert all(not rec.drift_detected for rec in result.epochs)

    def test_cold_mode_restarts(self):
        result = _loop(DriftingParabola(drop_at_s=1_000.0), mode="cold").run()
        assert result.detections == [2]
        assert result.epochs[2].restarted
        assert not result.epochs[2].retuned

    def test_observations_renumbered_globally(self):
        result = _loop(DriftingParabola(drop_at_s=1_000.0)).run()
        assert [obs.step for obs in result.observations] == list(
            range(len(result.observations))
        )
        assert result.n_steps == 6 + 3 * 4

    def test_same_seed_is_deterministic(self):
        a = _loop(DriftingParabola()).run()
        b = _loop(DriftingParabola()).run()
        assert canonical_history(a.observations) == canonical_history(
            b.observations
        )
        assert a.detections == b.detections

    def test_mode_validation(self):
        with pytest.raises(ValueError):
            _loop(DriftingParabola(), mode="lukewarm")

    def test_epoch_boundary_resume_is_byte_identical(self, tmp_path):
        full = _loop(
            DriftingParabola(), checkpoint_dir=tmp_path / "a"
        ).run()
        _loop(
            DriftingParabola(), epochs=2, checkpoint_dir=tmp_path / "b"
        ).run()
        resumed = _loop(
            DriftingParabola(), checkpoint_dir=tmp_path / "b"
        ).run()
        assert resumed.metadata["resumed_epochs"] == 2
        assert canonical_history(resumed.observations) == canonical_history(
            full.observations
        )
        assert resumed.detections == full.detections

    def test_mid_epoch_crash_resume_is_byte_identical(self, tmp_path):
        """A crash *after* the drift detection, mid-epoch, resumes
        exactly — the drift-path determinism acceptance criterion."""
        full = _loop(
            DriftingParabola(), checkpoint_dir=tmp_path / "a"
        ).run()

        class Crashing(DriftingParabola):
            def __init__(self):
                super().__init__()
                self.calls = 0

            def __call__(self, params):
                self.calls += 1
                # e0: 6 obs; boundary monitor; e1: 4 obs; monitor
                # (detects at t=1200); crash lands on the 3rd
                # observation of post-drift epoch 2.
                if self.calls > 14:
                    raise RuntimeError("injected mid-epoch crash")
                return super().__call__(params)

        with pytest.raises(RuntimeError, match="injected"):
            _loop(Crashing(), checkpoint_dir=tmp_path / "b").run()
        resumed = _loop(
            DriftingParabola(), checkpoint_dir=tmp_path / "b"
        ).run()
        assert canonical_history(resumed.observations) == canonical_history(
            full.observations
        )
        assert resumed.detections == full.detections

    def test_sidecar_mode_mismatch_raises(self, tmp_path):
        _loop(DriftingParabola(), checkpoint_dir=tmp_path).run()
        with pytest.raises(ValueError, match="mode"):
            _loop(
                DriftingParabola(), mode="cold", checkpoint_dir=tmp_path
            ).run()

    def test_sidecar_version_mismatch_starts_fresh(self, tmp_path):
        _loop(DriftingParabola(), epochs=2, checkpoint_dir=tmp_path).run()
        sidecar = tmp_path / SIDECAR_NAME
        data = json.loads(sidecar.read_text())
        assert data["version"] == SIDECAR_VERSION
        data["version"] = 99
        sidecar.write_text(json.dumps(data))
        resumed = _loop(DriftingParabola(), checkpoint_dir=tmp_path).run()
        assert resumed.metadata["resumed_epochs"] == 0

    def test_sticky_incumbent_ignores_own_improvements(self):
        """Tuning progress (a better incumbent) must not read as drift:
        adoption restarts the monitor series."""
        result = _loop(DriftingParabola(drop_at_s=1e9), epochs=6).run()
        assert result.detections == []
        assert any(rec.adopted for rec in result.epochs)

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            _loop(DriftingParabola(), epochs=0)
        with pytest.raises(ValueError):
            ContinuousTuningLoop(
                DriftingParabola(), _make_optimizer, epoch_duration_s=0.0
            )
        with pytest.raises(ValueError):
            ContinuousTuningLoop(
                DriftingParabola(), _make_optimizer, steps_per_epoch=0
            )
