"""Trident operator fusion and the acker model."""

from __future__ import annotations

import pytest

from repro.storm.acker import AckerModel
from repro.storm.grouping import Grouping
from repro.storm.topology import TopologyBuilder, linear_topology
from repro.storm.trident import fuse_linear_chains, fusion_ratio


class TestFusion:
    def test_chain_fuses_to_single_element(self):
        topo = linear_topology("chain", 4, cost=10.0, spout_cost=10.0)
        result = fuse_linear_chains(topo)
        assert len(result.topology) == 1
        fused = result.topology.operator("spout")
        # Five operators at 10 units each compose to 50.
        assert fused.cost == pytest.approx(50.0)

    def test_fusion_composes_selectivity(self):
        builder = TopologyBuilder("sel")
        builder.spout("s", cost=1.0, selectivity=2.0)
        builder.bolt("f", inputs=["s"], cost=4.0, selectivity=0.5)
        topo = builder.build()
        result = fuse_linear_chains(topo)
        fused = result.topology.operator("s")
        # cost: 1 + 2 * 4 (the bolt sees twice the tuples)
        assert fused.cost == pytest.approx(9.0)
        assert fused.selectivity == pytest.approx(1.0)  # 2.0 * 0.5

    def test_fan_out_not_fused(self, fan_topology):
        result = fuse_linear_chains(fan_topology)
        assert len(result.topology) == 4  # nothing fusable

    def test_join_not_fused(self, diamond):
        result = fuse_linear_chains(diamond)
        assert len(result.topology) == 3

    def test_fields_grouping_blocks_fusion(self):
        builder = TopologyBuilder("fields")
        builder.spout("s")
        builder.bolt("agg", inputs=["s"], grouping=Grouping.FIELDS)
        topo = builder.build()
        result = fuse_linear_chains(topo)
        assert len(result.topology) == 2

    def test_hint_overridden_to_chain_minimum(self):
        builder = TopologyBuilder("hints")
        builder.spout("s", default_hint=4)
        builder.bolt("b", inputs=["s"], default_hint=2)
        topo = builder.build()
        result = fuse_linear_chains(topo)
        assert result.topology.operator("s").default_hint == 2

    def test_contention_propagates(self):
        builder = TopologyBuilder("cont")
        builder.spout("s")
        builder.bolt("db", inputs=["s"], contentious=True)
        topo = builder.build()
        result = fuse_linear_chains(topo)
        assert result.topology.operator("s").contentious

    def test_chain_membership_lookup(self):
        topo = linear_topology("chain", 2)
        result = fuse_linear_chains(topo)
        assert result.fused_name_of("bolt2") == "spout"
        with pytest.raises(KeyError):
            result.fused_name_of("ghost")

    def test_partial_chain_fusion(self):
        """Fusion stops at fan-out points but continues after them."""
        builder = TopologyBuilder("mix")
        builder.spout("s")
        builder.bolt("pre", inputs=["s"])
        builder.bolt("left", inputs=["pre"])
        builder.bolt("right", inputs=["pre"])
        builder.bolt("left2", inputs=["left"])
        topo = builder.build()
        result = fuse_linear_chains(topo)
        # s+pre fuse; left+left2 fuse; right stays.
        assert len(result.topology) == 3
        assert result.chains["s"] == ("s", "pre")
        assert result.chains["left"] == ("left", "left2")

    def test_fusion_ratio(self):
        topo = linear_topology("chain", 4)
        assert fusion_ratio(topo) == pytest.approx(0.8)

    def test_fused_topology_preserves_total_work(self):
        builder = TopologyBuilder("work")
        builder.spout("s", cost=2.0)
        builder.bolt("a", inputs=["s"], cost=3.0)
        builder.bolt("b", inputs=["a"], cost=5.0)
        topo = builder.build()
        fused = fuse_linear_chains(topo).topology
        assert fused.total_compute_units_per_tuple() == pytest.approx(
            topo.total_compute_units_per_tuple()
        )


class TestAckerModel:
    def test_emissions_per_source_tuple(self, diamond):
        model = AckerModel()
        # volumes: S=1 (emits 1), B1=1 (emits 1), B2=2 (emits 2)
        assert model.emissions_per_source_tuple(diamond) == pytest.approx(4.0)

    def test_demand_scales_with_ack_cost(self, diamond):
        cheap = AckerModel(ack_cost_units=0.001)
        pricey = AckerModel(ack_cost_units=0.01)
        assert pricey.demand_units_per_source_tuple(
            diamond
        ) == pytest.approx(10 * cheap.demand_units_per_source_tuple(diamond))

    def test_capacity_linear_in_ackers(self):
        model = AckerModel()
        assert model.capacity_units_per_ms(10) == pytest.approx(
            10 * model.capacity_units_per_ms(1)
        )

    def test_max_throughput_infinite_without_acking(self, diamond):
        model = AckerModel()
        assert model.max_throughput_tps(diamond, 0) == float("inf")

    def test_max_throughput_finite_with_ackers(self, diamond):
        model = AckerModel()
        tps = model.max_throughput_tps(diamond, 4)
        assert 0 < tps < float("inf")
        # Doubling ackers doubles the ceiling.
        assert model.max_throughput_tps(diamond, 8) == pytest.approx(2 * tps)

    def test_validation(self):
        with pytest.raises(ValueError):
            AckerModel(ack_cost_units=0)
        with pytest.raises(ValueError):
            AckerModel().capacity_units_per_ms(-1)
