"""Topology model: construction, validation, derived quantities."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storm.grouping import Grouping
from repro.storm.topology import (
    Edge,
    OperatorKind,
    OperatorSpec,
    Topology,
    TopologyBuilder,
    TopologyError,
    effective_cost,
    linear_topology,
    operator_path_depth,
)


class TestOperatorSpec:
    def test_validation(self):
        with pytest.raises(ValueError):
            OperatorSpec(name="", kind=OperatorKind.BOLT)
        with pytest.raises(ValueError):
            OperatorSpec(name="x", kind=OperatorKind.BOLT, cost=-1)
        with pytest.raises(ValueError):
            OperatorSpec(name="x", kind=OperatorKind.BOLT, selectivity=-0.5)
        with pytest.raises(ValueError):
            OperatorSpec(name="x", kind=OperatorKind.BOLT, default_hint=0)

    def test_is_spout(self):
        assert OperatorSpec(name="s", kind=OperatorKind.SPOUT).is_spout
        assert not OperatorSpec(name="b", kind=OperatorKind.BOLT).is_spout


class TestStructureValidation:
    def test_rejects_cycle(self):
        ops = [
            OperatorSpec("s", OperatorKind.SPOUT),
            OperatorSpec("a", OperatorKind.BOLT),
            OperatorSpec("b", OperatorKind.BOLT),
        ]
        edges = [Edge("s", "a"), Edge("a", "b"), Edge("b", "a")]
        with pytest.raises(TopologyError):
            Topology("cyclic", ops, edges)

    def test_rejects_self_loop(self):
        with pytest.raises(ValueError):
            Edge("a", "a")

    def test_rejects_duplicate_operator(self):
        ops = [
            OperatorSpec("s", OperatorKind.SPOUT),
            OperatorSpec("s", OperatorKind.SPOUT),
        ]
        with pytest.raises(TopologyError):
            Topology("dup", ops, [])

    def test_rejects_duplicate_edge(self):
        ops = [
            OperatorSpec("s", OperatorKind.SPOUT),
            OperatorSpec("b", OperatorKind.BOLT),
        ]
        with pytest.raises(TopologyError):
            Topology("dup", ops, [Edge("s", "b"), Edge("s", "b")])

    def test_rejects_spout_with_inputs(self):
        ops = [
            OperatorSpec("s1", OperatorKind.SPOUT),
            OperatorSpec("s2", OperatorKind.SPOUT),
            OperatorSpec("b", OperatorKind.BOLT),
        ]
        with pytest.raises(TopologyError):
            Topology("bad", ops, [Edge("s1", "s2"), Edge("s2", "b")])

    def test_rejects_bolt_without_inputs(self):
        ops = [
            OperatorSpec("s", OperatorKind.SPOUT),
            OperatorSpec("b", OperatorKind.BOLT),
        ]
        with pytest.raises(TopologyError):
            Topology("bad", ops, [])

    def test_rejects_unknown_edge_endpoint(self):
        ops = [OperatorSpec("s", OperatorKind.SPOUT)]
        with pytest.raises(TopologyError):
            Topology("bad", ops, [Edge("s", "ghost")])

    def test_rejects_topology_without_spouts(self):
        with pytest.raises(TopologyError):
            Topology("empty", [], [])

    def test_builder_bolt_requires_inputs(self):
        builder = TopologyBuilder("x")
        builder.spout("s")
        with pytest.raises(TopologyError):
            builder.bolt("b", inputs=[])


class TestDerivedQuantities:
    def test_layers_by_longest_path(self, diamond):
        # S -> B1 -> B2 and S -> B2
        assert diamond.layer_of("S") == 0
        assert diamond.layer_of("B1") == 1
        assert diamond.layer_of("B2") == 2
        assert diamond.num_layers() == 3
        assert diamond.layers() == [("S",), ("B1",), ("B2",)]

    def test_sources_and_sinks(self, fan_topology):
        assert fan_topology.sources() == ("src",)
        assert set(fan_topology.sinks()) == {"work0", "work1", "work2"}

    def test_topological_order_parents_first(self, diamond):
        order = diamond.topological_order()
        assert order.index("S") < order.index("B1") < order.index("B2")

    def test_volumes_chain(self):
        topo = linear_topology("chain", 3)
        for name in topo:
            assert topo.volume(name) == pytest.approx(1.0)

    def test_volumes_fan_out_duplicates(self, fan_topology):
        # Each downstream bolt receives all emitted tuples.
        for i in range(3):
            assert fan_topology.volume(f"work{i}") == pytest.approx(1.0)

    def test_volumes_join_sums(self, diamond):
        assert diamond.volume("B2") == pytest.approx(2.0)

    def test_volumes_respect_selectivity(self):
        builder = TopologyBuilder("sel")
        builder.spout("s", selectivity=1.0)
        builder.bolt("filter", inputs=["s"], selectivity=0.25)
        builder.bolt("post", inputs=["filter"])
        topo = builder.build()
        assert topo.volume("filter") == pytest.approx(1.0)
        assert topo.volume("post") == pytest.approx(0.25)

    def test_multi_spout_volume_shares(self):
        builder = TopologyBuilder("multi")
        builder.spout("s1")
        builder.spout("s2")
        builder.bolt("join", inputs=["s1", "s2"])
        topo = builder.build()
        assert topo.volume("s1") == pytest.approx(0.5)
        assert topo.volume("join") == pytest.approx(1.0)

    def test_total_compute_units(self):
        topo = linear_topology("chain", 2, cost=20.0, spout_cost=10.0)
        # spout 10 * 1 + two bolts 20 * 1
        assert topo.total_compute_units_per_tuple() == pytest.approx(50.0)

    def test_average_out_degree(self, diamond):
        assert diamond.average_out_degree() == pytest.approx(3 / 3)

    def test_stats_row(self, diamond):
        stats = diamond.stats()
        assert stats.vertices == 3
        assert stats.edges == 3
        assert stats.sources == 1
        assert stats.sinks == 1
        row = stats.as_row()
        assert row["V"] == 3

    def test_operator_path_depth_positive(self, diamond):
        assert 0.0 < operator_path_depth(diamond) <= 2.0


class TestFunctionalUpdates:
    def test_with_operator_updates(self, diamond):
        updated = diamond.with_operator_updates({"B1": {"cost": 99.0}})
        assert updated.operator("B1").cost == 99.0
        assert diamond.operator("B1").cost != 99.0  # original untouched

    def test_unknown_operator_update_raises(self, diamond):
        with pytest.raises(KeyError):
            diamond.with_operator_updates({"ghost": {"cost": 1.0}})

    def test_renamed(self, diamond):
        assert diamond.renamed("other").name == "other"


class TestEffectiveCost:
    def test_non_contentious_constant(self):
        op = OperatorSpec("b", OperatorKind.BOLT, cost=20.0)
        assert effective_cost(op, 1) == 20.0
        assert effective_cost(op, 10) == 20.0

    def test_contentious_scales_with_tasks(self):
        op = OperatorSpec("b", OperatorKind.BOLT, cost=20.0, contentious=True)
        assert effective_cost(op, 1) == 20.0
        assert effective_cost(op, 4) == 80.0

    def test_invalid_task_count(self):
        op = OperatorSpec("b", OperatorKind.BOLT)
        with pytest.raises(ValueError):
            effective_cost(op, 0)

    def test_contention_negates_parallelism(self):
        """Aggregate service rate n / effective_cost stays constant."""
        op = OperatorSpec("b", OperatorKind.BOLT, cost=20.0, contentious=True)
        rates = {n: n / effective_cost(op, n) for n in (1, 2, 8)}
        assert len({round(r, 12) for r in rates.values()}) == 1


class TestAccessors:
    def test_contains_iter_len(self, diamond):
        assert "S" in diamond
        assert "nope" not in diamond
        assert len(diamond) == 3
        assert list(diamond) == list(diamond.topological_order())

    def test_edge_lookup(self, diamond):
        edge = diamond.edge("S", "B1")
        assert edge.grouping is Grouping.SHUFFLE
        with pytest.raises(KeyError):
            diamond.edge("B2", "S")


@given(st.integers(min_value=1, max_value=12))
@settings(max_examples=20)
def test_property_linear_topology_structure(n):
    topo = linear_topology("chain", n)
    assert len(topo) == n + 1
    assert topo.num_layers() == n + 1
    assert topo.sources() == ("spout",)
    assert len(topo.sinks()) == 1
    # Chain volumes are all 1 under unit selectivity.
    assert all(abs(v - 1.0) < 1e-12 for v in topo.volumes().values())
