"""Noise models, codecs, and the Storm objective wrapper."""

from __future__ import annotations

import numpy as np
import pytest

from repro.storm.cluster import small_test_cluster
from repro.storm.config import TopologyConfig
from repro.storm.noise import GaussianNoise, InterferenceNoise, NoNoise
from repro.storm.objective import StormObjective
from repro.storm.spaces import (
    HINT_PREFIX,
    InformedMultiplierCodec,
    ParallelismCodec,
    SundogParameterCodec,
    UniformHintCodec,
    default_max_hint,
)
from repro.storm.topology import linear_topology
from repro.sundog import sundog_default_config, sundog_topology


class TestNoiseModels:
    def test_no_noise_identity(self, rng):
        assert NoNoise()(123.4, rng) == 123.4

    def test_zero_stays_zero(self, rng):
        for model in (NoNoise(), GaussianNoise(0.1), InterferenceNoise()):
            assert model(0.0, rng) == 0.0

    def test_gaussian_centres_on_value(self, rng):
        model = GaussianNoise(0.05)
        samples = [model(100.0, rng) for _ in range(500)]
        assert np.mean(samples) == pytest.approx(100.0, rel=0.02)
        assert np.std(samples) == pytest.approx(5.0, rel=0.3)

    def test_gaussian_never_negative(self, rng):
        model = GaussianNoise(2.0)  # absurd sigma
        assert all(model(1.0, rng) >= 0 for _ in range(200))

    def test_negative_value_rejected(self, rng):
        with pytest.raises(ValueError):
            GaussianNoise(0.1)(-1.0, rng)

    def test_interference_lowers_mean(self, rng):
        plain = GaussianNoise(0.0)
        interfered = InterferenceNoise(
            sigma=0.0, p_interference=0.5, slowdown=0.5
        )
        plain_mean = np.mean([plain(100.0, rng) for _ in range(400)])
        interfered_mean = np.mean([interfered(100.0, rng) for _ in range(400)])
        assert interfered_mean < plain_mean

    def test_validation(self):
        with pytest.raises(ValueError):
            GaussianNoise(-0.1)
        with pytest.raises(ValueError):
            InterferenceNoise(p_interference=1.5)
        with pytest.raises(ValueError):
            InterferenceNoise(slowdown=0.0)


@pytest.fixture
def cluster():
    return small_test_cluster()


@pytest.fixture
def topo():
    return linear_topology("chain", 3)


@pytest.fixture
def base_config():
    """Small batches so the tiny test cluster stays under the timeout."""
    return TopologyConfig(batch_size=100, batch_parallelism=4, num_workers=4)


class TestParallelismCodec:
    def test_space_has_one_hint_per_operator(self, topo, cluster):
        codec = ParallelismCodec(topo, cluster)
        hint_params = [n for n in codec.space.names if n.startswith(HINT_PREFIX)]
        assert len(hint_params) == len(topo)
        assert "max_tasks" in codec.space

    def test_decode_builds_config(self, topo, cluster):
        codec = ParallelismCodec(topo, cluster)
        params = {f"{HINT_PREFIX}{n}": 3 for n in topo}
        params["max_tasks"] = 100
        config = codec.decode(params)
        assert config.normalized_hints(topo) == {n: 3 for n in topo}
        assert config.max_tasks == 100

    def test_without_max_tasks(self, topo, cluster):
        codec = ParallelismCodec(topo, cluster, include_max_tasks=False)
        assert "max_tasks" not in codec.space
        config = codec.decode({f"{HINT_PREFIX}{n}": 2 for n in topo})
        assert config.max_tasks is None

    def test_default_max_hint_bounds(self, topo, cluster):
        assert 8 <= default_max_hint(topo, cluster) <= 64


class TestUniformHintCodec:
    def test_ascent_values(self, topo, cluster):
        codec = UniformHintCodec(topo, cluster, max_hint=10)
        assert codec.ascent_values(60) == list(range(1, 11))
        assert codec.ascent_values(5) == [1, 2, 3, 4, 5]

    def test_decode_uniform(self, topo, cluster):
        codec = UniformHintCodec(topo, cluster)
        config = codec.decode({"uniform_hint": 4})
        assert set(config.normalized_hints(topo).values()) == {4}


class TestInformedMultiplierCodec:
    def test_space_is_single_float(self, topo, cluster):
        codec = InformedMultiplierCodec(topo, cluster)
        assert codec.space.names == ["multiplier"]
        assert not codec.space["multiplier"].is_discrete

    def test_ascent_covers_increasing_totals(self, topo, cluster):
        codec = InformedMultiplierCodec(topo, cluster)
        values = codec.ascent_values(10)
        totals = [
            sum(codec.informed.hints_for(m).values()) for m in values
        ]
        assert totals == sorted(totals)
        assert totals[-1] > totals[0]

    def test_decode(self, topo, cluster):
        codec = InformedMultiplierCodec(topo, cluster)
        config = codec.decode({"multiplier": 2.0})
        hints = config.normalized_hints(topo)
        # chain weights are all 1 -> hints all 2
        assert set(hints.values()) == {2}


class TestSundogCodec:
    def test_param_sets(self, cluster):
        topo = sundog_topology()
        base = sundog_default_config(cluster.total_workers)
        h = SundogParameterCodec(topo, cluster, base, include=("h",))
        assert any(n.startswith(HINT_PREFIX) for n in h.space.names)
        hbsbp = SundogParameterCodec(
            topo, cluster, base, include=("h", "bs", "bp")
        )
        assert "batch_size" in hbsbp.space and "batch_parallelism" in hbsbp.space
        cc = SundogParameterCodec(
            topo, cluster, base, include=("bs", "bp", "cc"), fixed_hint=11
        )
        assert "worker_threads" in cc.space
        assert not any(n.startswith(HINT_PREFIX) for n in cc.space.names)

    def test_fixed_hint_applied_when_h_excluded(self, cluster):
        topo = sundog_topology()
        base = sundog_default_config(cluster.total_workers)
        codec = SundogParameterCodec(
            topo, cluster, base, include=("bs", "bp", "cc"), fixed_hint=11
        )
        params = {
            "batch_size": 100_000,
            "batch_parallelism": 8,
            "worker_threads": 16,
            "receiver_threads": 2,
            "ackers": 40,
        }
        config = codec.decode(params)
        assert set(config.normalized_hints(topo).values()) == {11}
        assert config.batch_size == 100_000
        assert config.worker_threads == 16
        assert config.ackers == 40

    def test_excluded_groups_keep_base_values(self, cluster):
        topo = sundog_topology()
        base = sundog_default_config(cluster.total_workers)
        codec = SundogParameterCodec(topo, cluster, base, include=("h",))
        params = {f"{HINT_PREFIX}{n}": 2 for n in topo}
        params["max_tasks"] = 500
        config = codec.decode(params)
        assert config.batch_size == base.batch_size
        assert config.batch_parallelism == base.batch_parallelism

    def test_unknown_group_rejected(self, cluster):
        topo = sundog_topology()
        base = sundog_default_config(cluster.total_workers)
        with pytest.raises(ValueError):
            SundogParameterCodec(topo, cluster, base, include=("h", "zz"))
        with pytest.raises(ValueError):
            SundogParameterCodec(topo, cluster, base, include=())


class TestStormObjective:
    def test_callable_returns_throughput(self, topo, cluster, base_config):
        codec = UniformHintCodec(topo, cluster, base_config)
        objective = StormObjective(topo, cluster, codec, seed=0)
        value = objective({"uniform_hint": 2})
        assert value > 0
        assert objective.n_evaluations == 1

    def test_measure_returns_run(self, topo, cluster, base_config):
        codec = UniformHintCodec(topo, cluster, base_config)
        objective = StormObjective(topo, cluster, codec, seed=0)
        run = objective.measure({"uniform_hint": 2})
        assert run.throughput_tps > 0
        assert run.total_tasks == 2 * len(topo)

    def test_des_fidelity(self, topo, cluster, base_config):
        codec = UniformHintCodec(topo, cluster, base_config)
        objective = StormObjective(
            topo,
            cluster,
            codec,
            fidelity="des",
            seed=0,
            des_kwargs={"max_batches": 15},
        )
        assert objective({"uniform_hint": 2}) > 0

    def test_unknown_fidelity(self, topo, cluster):
        codec = UniformHintCodec(topo, cluster)
        with pytest.raises(ValueError):
            StormObjective(topo, cluster, codec, fidelity="quantum")

    def test_measure_config_bypasses_codec(self, topo, cluster, base_config):
        codec = UniformHintCodec(topo, cluster, base_config)
        objective = StormObjective(topo, cluster, codec, seed=0)
        config = base_config.replace(
            parallelism_hints={n: 2 for n in topo}
        )
        run = objective.measure_config(config)
        assert run.throughput_tps > 0
