"""Documentation consistency: the docs reference real code and files.

Cheap guards against docs drifting from the implementation: every
module path mentioned in DESIGN.md's inventory imports, every benchmark
file referenced in EXPERIMENTS.md exists, and the README's example
table lists real scripts.
"""

from __future__ import annotations

import importlib
import re
from pathlib import Path


REPO = Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (REPO / name).read_text()


class TestDesignInventory:
    def test_all_referenced_modules_import(self):
        text = read("DESIGN.md")
        modules = set(re.findall(r"`(repro(?:\.\w+)+)`", text))
        assert len(modules) > 15
        for module in sorted(modules):
            try:
                importlib.import_module(module)
            except ModuleNotFoundError:
                # Dotted references may name an attribute of a module
                # (e.g. `repro.experiments.figures.table1_parameters`).
                parent, _, attr = module.rpartition(".")
                resolved = importlib.import_module(parent)
                assert hasattr(resolved, attr), module

    def test_experiment_index_benches_exist(self):
        text = read("DESIGN.md")
        benches = set(re.findall(r"benchmarks/(bench_\w+\.py)", text))
        assert benches
        for bench in benches:
            assert (REPO / "benchmarks" / bench).exists(), bench


class TestExperimentsDoc:
    def test_referenced_benches_exist(self):
        text = read("EXPERIMENTS.md")
        benches = set(re.findall(r"`(bench_\w+\.py)`", text))
        assert len(benches) >= 10
        for bench in benches:
            assert (REPO / "benchmarks" / bench).exists(), bench

    def test_every_bench_file_is_documented(self):
        documented = read("EXPERIMENTS.md") + read("DESIGN.md")
        for bench in (REPO / "benchmarks").glob("bench_*.py"):
            assert bench.name in documented, f"{bench.name} undocumented"


class TestReadme:
    def test_example_table_lists_real_scripts(self):
        text = read("README.md")
        scripts = set(re.findall(r"`(\w+\.py)`", text))
        examples = {p.name for p in (REPO / "examples").glob("*.py")}
        assert scripts <= examples | {"settings.py"}
        # And every example ships documented.
        assert examples <= scripts

    def test_quickstart_snippet_runs(self):
        """The README's code block must execute as written."""
        text = read("README.md")
        match = re.search(r"```python\n(.*?)```", text, re.DOTALL)
        assert match
        code = match.group(1)
        namespace: dict[str, object] = {}
        exec(compile(code, "README-quickstart", "exec"), namespace)  # noqa: S102
        result = namespace["result"]
        assert result.best_value > 0  # type: ignore[union-attr]


class TestDocsFolder:
    def test_model_doc_mentions_all_caps(self):
        text = read("docs/MODEL.md")
        for cap in (
            "pipeline fill",
            "bottleneck stage",
            "CPU saturation",
            "acker",
            "receiver",
            "NIC",
        ):
            assert cap in text

    def test_tutorial_modules_import(self):
        text = read("docs/TUTORIAL.md")
        modules = set(re.findall(r"from (repro(?:\.\w+)*) import", text))
        for module in modules:
            importlib.import_module(module)
