"""Kernel correctness: values, PSD-ness, and analytic gradients."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.kernels import RBF, Matern32, Matern52, make_kernel

ALL_KERNELS = ["rbf", "matern32", "matern52"]


def random_inputs(rng, n=12, dim=3):
    return rng.random((n, dim))


@pytest.mark.parametrize("name", ALL_KERNELS)
class TestKernelBasics:
    def test_diagonal_is_variance(self, name, rng):
        k = make_kernel(name, 3)
        X = random_inputs(rng)
        K = k(X)
        assert np.allclose(np.diag(K), k.variance)
        assert np.allclose(k.diag(X), k.variance)

    def test_symmetry(self, name, rng):
        k = make_kernel(name, 3)
        X = random_inputs(rng)
        K = k(X)
        assert np.allclose(K, K.T)

    def test_positive_semidefinite(self, name, rng):
        k = make_kernel(name, 3)
        X = random_inputs(rng, n=20)
        K = k(X)
        eigvals = np.linalg.eigvalsh(K)
        assert eigvals.min() > -1e-8

    def test_decay_with_distance(self, name):
        k = make_kernel(name, 1)
        x0 = np.array([[0.0]])
        near = np.array([[0.1]])
        far = np.array([[0.9]])
        assert k(x0, near)[0, 0] > k(x0, far)[0, 0]

    def test_cross_covariance_shape(self, name, rng):
        k = make_kernel(name, 2)
        A = rng.random((5, 2))
        B = rng.random((7, 2))
        assert k(A, B).shape == (5, 7)

    def test_dimension_mismatch_raises(self, name, rng):
        k = make_kernel(name, 3)
        with pytest.raises(ValueError):
            k(rng.random((4, 2)))

    def test_theta_roundtrip(self, name):
        k = make_kernel(name, 4, ard=True)
        theta = k.theta + 0.3
        k.theta = theta
        assert np.allclose(k.theta, theta)
        assert k.n_hyperparameters == 5

    def test_isotropic_has_single_lengthscale(self, name):
        k = make_kernel(name, 4, ard=False)
        assert k.n_hyperparameters == 2
        assert len(set(k.lengthscales)) == 1

    def test_clone_is_independent(self, name):
        k = make_kernel(name, 2)
        c = k.clone()
        c.theta = c.theta + 1.0
        assert not np.allclose(c.theta, k.theta)


@pytest.mark.parametrize("name", ALL_KERNELS)
@pytest.mark.parametrize("ard", [True, False])
def test_gradients_match_finite_differences(name, ard, rng):
    """Analytic dK/dtheta agrees with central finite differences."""
    k = make_kernel(name, 3, ard=ard)
    k.theta = k.theta + rng.normal(0, 0.2, size=k.n_hyperparameters)
    X = rng.random((8, 3))
    _, grads = k.value_and_grads(X)
    eps = 1e-6
    for j in range(k.n_hyperparameters):
        theta0 = k.theta.copy()
        theta_hi = theta0.copy()
        theta_hi[j] += eps
        theta_lo = theta0.copy()
        theta_lo[j] -= eps
        k.theta = theta_hi
        K_hi = k(X)
        k.theta = theta_lo
        K_lo = k(X)
        k.theta = theta0
        fd = (K_hi - K_lo) / (2 * eps)
        assert np.allclose(grads[j], fd, atol=1e-5), f"grad {j} mismatch"


def test_rbf_known_value():
    k = RBF(1, ard=False)
    k.theta = np.array([0.0, 0.0])  # variance 1, lengthscale 1
    K = k(np.array([[0.0]]), np.array([[1.0]]))
    assert K[0, 0] == pytest.approx(np.exp(-0.5))


def test_matern52_known_value():
    k = Matern52(1, ard=False)
    k.theta = np.array([0.0, 0.0])
    r = 1.0
    s = np.sqrt(5) * r
    expected = (1 + s + s**2 / 3) * np.exp(-s)
    K = k(np.array([[0.0]]), np.array([[1.0]]))
    assert K[0, 0] == pytest.approx(expected)


def test_matern32_known_value():
    k = Matern32(1, ard=False)
    k.theta = np.array([0.0, 0.0])
    s = np.sqrt(3)
    expected = (1 + s) * np.exp(-s)
    K = k(np.array([[0.0]]), np.array([[1.0]]))
    assert K[0, 0] == pytest.approx(expected)


def test_ard_lengthscales_weight_dimensions(rng):
    """A dimension with a huge lengthscale is effectively ignored."""
    k = make_kernel("rbf", 2, ard=True)
    k.theta = np.array([0.0, np.log(0.1), np.log(100.0)])
    a = np.array([[0.0, 0.0]])
    b_same_d1 = np.array([[0.0, 1.0]])  # differs only in the ignored dim
    b_diff_d0 = np.array([[0.3, 0.0]])
    assert k(a, b_same_d1)[0, 0] > k(a, b_diff_d0)[0, 0]


def test_make_kernel_unknown_name():
    with pytest.raises(ValueError):
        make_kernel("laplace", 2)


@given(st.integers(min_value=0, max_value=2**31 - 1))
@settings(max_examples=25, deadline=None)
def test_property_psd_random_inputs(seed):
    """Gram matrices stay PSD for arbitrary inputs and hyperparameters."""
    rng = np.random.default_rng(seed)
    k = make_kernel("matern52", 2)
    k.theta = rng.normal(0, 0.5, size=k.n_hyperparameters)
    X = rng.random((10, 2))
    eigvals = np.linalg.eigvalsh(k(X))
    assert eigvals.min() > -1e-7
