"""Layer-by-layer graph generation (GGen reimplementation)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.storm.grouping import Grouping
from repro.topology_gen.ggen import (
    LayerByLayerGenerator,
    LayerByLayerParams,
    layer_by_layer,
)
from repro.topology_gen.properties import (
    is_valid_sps_graph,
    longest_path_length,
    to_networkx,
)


class TestParams:
    def test_validation(self):
        with pytest.raises(ValueError):
            LayerByLayerParams(n_vertices=1, n_layers=1, edge_probability=0.5)
        with pytest.raises(ValueError):
            LayerByLayerParams(n_vertices=10, n_layers=11, edge_probability=0.5)
        with pytest.raises(ValueError):
            LayerByLayerParams(n_vertices=10, n_layers=3, edge_probability=0.0)
        with pytest.raises(ValueError):
            LayerByLayerParams(n_vertices=10, n_layers=3, edge_probability=1.5)


class TestGraphStructure:
    def params(self):
        return LayerByLayerParams(n_vertices=20, n_layers=4, edge_probability=0.2)

    def test_layer_partition(self, rng):
        gen = LayerByLayerGenerator(self.params())
        layers, _ = gen.generate_graph(rng)
        all_vertices = [v for layer in layers for v in layer]
        assert sorted(all_vertices) == list(range(20))
        sizes = [len(layer) for layer in layers]
        assert max(sizes) - min(sizes) <= 1

    def test_edges_only_point_forward(self, rng):
        gen = LayerByLayerGenerator(self.params())
        layers, edges = gen.generate_graph(rng)
        layer_of = {v: i for i, layer in enumerate(layers) for v in layer}
        for u, v in edges:
            assert layer_of[u] < layer_of[v]

    def test_no_same_layer_edges(self, rng):
        """The defining layer-by-layer property (paper §IV-B)."""
        gen = LayerByLayerGenerator(self.params())
        layers, edges = gen.generate_graph(rng)
        layer_of = {v: i for i, layer in enumerate(layers) for v in layer}
        assert all(layer_of[u] != layer_of[v] for u, v in edges)

    def test_no_isolated_vertices(self):
        params = LayerByLayerParams(
            n_vertices=30, n_layers=5, edge_probability=0.02
        )
        gen = LayerByLayerGenerator(params)
        for seed in range(10):
            layers, edges = gen.generate_graph(np.random.default_rng(seed))
            touched = {u for u, _ in edges} | {v for _, v in edges}
            assert touched == set(range(30))

    def test_no_duplicate_edges(self, rng):
        gen = LayerByLayerGenerator(self.params())
        _, edges = gen.generate_graph(rng)
        assert len(edges) == len(set(edges))

    def test_edge_count_matches_expectation(self):
        """E[edges] = p * (cross-layer pairs); checked within 4 sigma."""
        params = LayerByLayerParams(
            n_vertices=100, n_layers=10, edge_probability=0.04
        )
        gen = LayerByLayerGenerator(params)
        counts = [
            len(gen.generate_graph(np.random.default_rng(s))[1])
            for s in range(30)
        ]
        pairs = 45 * 100  # C(10,2) layer pairs x 10 x 10 vertex pairs
        expected = pairs * 0.04
        sigma = (pairs * 0.04 * 0.96) ** 0.5
        assert abs(np.mean(counts) - expected) < 4 * sigma / (30**0.5) + 3


class TestTopologyGeneration:
    def test_valid_storm_topology(self, rng):
        gen = LayerByLayerGenerator(
            LayerByLayerParams(n_vertices=15, n_layers=3, edge_probability=0.3)
        )
        topo = gen.generate_topology("t", rng, cost=20.0)
        assert is_valid_sps_graph(topo)
        assert len(topo) == 15
        # Sources become spouts, the rest bolts.
        for name in topo:
            op = topo.operator(name)
            assert op.is_spout == (len(topo.parents(name)) == 0)
            assert op.cost == 20.0

    def test_shuffle_grouping_everywhere(self, rng):
        topo = layer_by_layer("t", 12, 3, 0.3, seed=5)
        for edge in topo.edges:
            assert edge.grouping is Grouping.SHUFFLE

    def test_seed_determinism(self):
        a = layer_by_layer("t", 25, 5, 0.15, seed=7)
        b = layer_by_layer("t", 25, 5, 0.15, seed=7)
        assert a.edges == b.edges
        c = layer_by_layer("t", 25, 5, 0.15, seed=8)
        assert a.edges != c.edges

    def test_longest_path_bounded_by_layers(self, rng):
        topo = layer_by_layer("t", 40, 8, 0.1, seed=3)
        assert longest_path_length(topo) <= 7

    def test_networkx_export(self, rng):
        topo = layer_by_layer("t", 10, 3, 0.4, seed=1)
        graph = to_networkx(topo)
        assert graph.number_of_nodes() == 10
        assert graph.number_of_edges() == len(topo.edges)
        for _, data in graph.nodes(data=True):
            assert data["kind"] in ("spout", "bolt")


@given(
    st.integers(min_value=4, max_value=40),
    st.integers(min_value=2, max_value=8),
    st.floats(min_value=0.05, max_value=0.9),
    st.integers(min_value=0, max_value=1000),
)
@settings(max_examples=40, deadline=None)
def test_property_generated_graphs_are_valid_sps(n, layers, p, seed):
    layers = min(layers, n)
    topo = layer_by_layer("prop", n, layers, p, seed=seed)
    assert is_valid_sps_graph(topo)
    assert len(topo) == n
    # Every vertex connected (paper constraint 1).
    for name in topo:
        assert topo.parents(name) or topo.children(name)
