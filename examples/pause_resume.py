#!/usr/bin/env python
"""Pause and resume an optimization — the Spearmint feature the paper
relied on for its multi-hour cluster evaluations (§III-C).

The optimizer's full state (observations, initial design, RNG state,
GP hyperparameters) serializes to JSON.  A resumed optimizer continues
the *identical* trajectory, so an interrupted tuning session loses no
work — important when each sample costs minutes of cluster time.

Run:  python examples/pause_resume.py
"""

import tempfile
from pathlib import Path

from repro.core import BayesianOptimizer, TuningLoop
from repro.experiments.presets import SYNTHETIC_BASE_CONFIG, default_cluster
from repro.storm import StormObjective
from repro.storm.noise import GaussianNoise
from repro.storm.spaces import ParallelismCodec
from repro.topology_gen.suite import TopologyCondition, make_topology


def main():
    topology = make_topology(
        "small", TopologyCondition(time_imbalance=1.0, contentious_share=0.0)
    )
    cluster = default_cluster()
    codec = ParallelismCodec(topology, cluster, SYNTHETIC_BASE_CONFIG)

    def make_objective():
        # Deterministic so the two halves are comparable.
        return StormObjective(
            topology, cluster, codec, noise=GaussianNoise(0.0), seed=7
        )

    state_path = Path(tempfile.mkdtemp()) / "optimizer-state.json"

    # ----- phase 1: run 10 steps, then "the cluster evaluation window
    # ends" and we save the optimizer state ------------------------------
    optimizer = BayesianOptimizer(codec.space, seed=42)
    objective = make_objective()
    for step in range(10):
        config = optimizer.ask()
        optimizer.tell(config, objective(config))
    optimizer.save(state_path)
    best_before = optimizer.best()[1]
    print(f"paused after 10 steps, best so far {best_before:.1f} tuples/s")
    print(f"state saved to {state_path} ({state_path.stat().st_size} bytes)")

    # ----- phase 2: a new process resumes and continues -----------------
    resumed = BayesianOptimizer.load(state_path)
    assert resumed.n_observed == 10
    objective = make_objective()
    result = TuningLoop(
        objective, resumed, max_steps=15, strategy_name="bo(resumed)"
    ).run()
    print(
        f"resumed optimizer ran {result.n_steps} more steps, "
        f"best now {resumed.best()[1]:.1f} tuples/s"
    )
    assert resumed.best()[1] >= best_before

    # ----- sanity: resume is bit-identical to never pausing -------------
    control = BayesianOptimizer(codec.space, seed=42)
    objective = make_objective()
    for _ in range(10):
        config = control.ask()
        control.tell(config, objective(config))
    eleventh_control = control.ask()
    eleventh_resumed = BayesianOptimizer.load(state_path).ask()
    assert eleventh_control == eleventh_resumed
    print("resume reproduces the exact same 11th proposal as an "
          "uninterrupted run — no work lost")


if __name__ == "__main__":
    main()
