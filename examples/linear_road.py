#!/usr/bin/env python
"""Tune a Linear Road-style tolling topology.

Linear Road (Arasu et al., VLDB 2004) is the classic stream-processing
benchmark the paper's Table III cites twice: vehicles on a simulated
expressway emit position reports; the system computes segment
statistics, detects accidents, and issues dynamic toll notifications.
This example builds a Linear Road-shaped Storm topology — position
ingest fanning into segment-statistics, accident-detection and
account-balance branches that join at toll assessment — and tunes it
with Bayesian Optimization against the parallel linear ascent.

The accident-detection branch queries a shared historical store, making
it contention-limited: the optimizer must learn to starve it of tasks
while feeding the embarrassingly parallel statistics branch.

Run:  python examples/linear_road.py
"""

from repro.core import BayesianOptimizer, ParallelLinearAscent, TuningLoop
from repro.experiments.report import render_table
from repro.storm import StormObjective, TopologyBuilder, TopologyConfig
from repro.storm.cluster import paper_cluster
from repro.storm.noise import GaussianNoise
from repro.storm.spaces import ParallelismCodec, UniformHintCodec


def linear_road_topology():
    builder = TopologyBuilder("linear-road")
    # Position reports: one tuple per vehicle per 30s (L=1 expressway).
    builder.spout("position_reports", cost=0.5, tuple_bytes=64)
    # Dispatch by report type (99% position, 1% account queries).
    builder.bolt("dispatch", inputs=["position_reports"], cost=0.5)
    # Segment statistics: per-segment vehicle counts and average speed.
    builder.bolt("segment_stats", inputs=["dispatch"], cost=6.0, selectivity=1.0)
    # Accident detection needs the last 4 reports of every stopped car —
    # a shared historical table, so parallelism only adds contention.
    builder.bolt(
        "accident_detect",
        inputs=["dispatch"],
        cost=3.0,
        contentious=True,
        selectivity=0.05,
    )
    # Toll calculation joins statistics and accident alerts.
    builder.bolt("toll_calc", inputs=["segment_stats", "accident_detect"], cost=4.0)
    # Balance updates and notifications.
    builder.bolt("balance_update", inputs=["toll_calc"], cost=2.0)
    builder.bolt("notify", inputs=["toll_calc"], cost=1.0, tuple_bytes=128)
    return builder.build()


def main():
    topology = linear_road_topology()
    cluster = paper_cluster()
    base = TopologyConfig(batch_size=2_000, batch_parallelism=8, num_workers=80)

    print(f"topology: {topology.stats()}")
    rows = []

    uniform = UniformHintCodec(topology, cluster, base)
    pla = ParallelLinearAscent("uniform_hint", uniform.ascent_values(60))
    pla_result = TuningLoop(
        StormObjective(topology, cluster, uniform, noise=GaussianNoise(0.05), seed=1),
        pla,
        max_steps=60,
        repeat_best=10,
        strategy_name="pla",
    ).run()
    mean, lo, hi = pla_result.rerun_summary()
    rows.append(
        {"Strategy": "pla", "tuples/s": round(mean), "min": round(lo), "max": round(hi)}
    )

    codec = ParallelismCodec(topology, cluster, base)
    bo = BayesianOptimizer(codec.space, seed=0)
    bo_result = TuningLoop(
        StormObjective(topology, cluster, codec, noise=GaussianNoise(0.05), seed=2),
        bo,
        max_steps=40,
        repeat_best=10,
        strategy_name="bo",
    ).run()
    mean, lo, hi = bo_result.rerun_summary()
    rows.append(
        {"Strategy": "bo", "tuples/s": round(mean), "min": round(lo), "max": round(hi)}
    )

    print(render_table(rows))
    best = codec.decode(bo_result.best_config)
    hints = best.normalized_hints(topology)
    print("\nbo's hints:", hints)

    # Demonstrate §IV-B2 on the tuned deployment: the accident detector
    # is gated on a shared store, so its parallelism is pure waste —
    # collapsing it to one task costs nothing (and saves executors).
    from repro.storm import AnalyticPerformanceModel

    model = AnalyticPerformanceModel(topology, cluster)
    tuned = model.evaluate_noise_free(best).throughput_tps
    starved = model.evaluate_noise_free(
        best.with_hints({"accident_detect": 1})
    ).throughput_tps
    print(
        f"throughput with accident_detect at {hints['accident_detect']} tasks: "
        f"{tuned:.0f} tuples/s; at 1 task: {starved:.0f} tuples/s — "
        f"parallelism on the contended branch buys nothing (paper §IV-B2)"
    )


if __name__ == "__main__":
    main()
