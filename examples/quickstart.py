#!/usr/bin/env python
"""Quickstart: tune a Storm topology's parallelism with Bayesian Optimization.

This is the paper's core loop in ~60 lines:

1. build a stream-processing topology (spouts, bolts, groupings),
2. wrap it in a simulated cluster deployment (the black-box objective),
3. let the Bayesian optimizer choose parallelism hints,
4. compare against the paper's parallel-linear-ascent baseline.

Run:  python examples/quickstart.py
"""

from repro.core import BayesianOptimizer, ParallelLinearAscent, TuningLoop
from repro.storm import StormObjective, TopologyBuilder, TopologyConfig
from repro.storm.cluster import paper_cluster
from repro.storm.noise import GaussianNoise
from repro.storm.spaces import ParallelismCodec, UniformHintCodec


def build_topology():
    """A small ETL pipeline: ingest -> parse -> enrich -> two outputs.

    The enrich bolt calls a shared external service, so adding tasks to
    it only adds contention (paper §IV-B2).
    """
    builder = TopologyBuilder("etl")
    builder.spout("ingest", cost=2.0, tuple_bytes=512)
    builder.bolt("parse", inputs=["ingest"], cost=8.0)
    builder.bolt("enrich", inputs=["parse"], cost=6.0, contentious=True)
    builder.bolt("aggregate", inputs=["parse"], cost=12.0)
    builder.bolt("store", inputs=["enrich", "aggregate"], cost=4.0)
    return builder.build()


def main():
    topology = build_topology()
    cluster = paper_cluster()  # the paper's 80-machine / 320-core testbed
    base = TopologyConfig(batch_size=500, batch_parallelism=8, num_workers=80)

    # --- baseline: parallel linear ascent (same hint everywhere) -------
    uniform = UniformHintCodec(topology, cluster, base)
    pla = ParallelLinearAscent("uniform_hint", uniform.ascent_values(60))
    pla_objective = StormObjective(
        topology, cluster, uniform, noise=GaussianNoise(0.03), seed=1
    )
    pla_result = TuningLoop(
        pla_objective, pla, max_steps=60, repeat_best=10, strategy_name="pla"
    ).run()

    # --- Bayesian Optimization over per-operator hints ------------------
    codec = ParallelismCodec(topology, cluster, base)
    objective = StormObjective(
        topology, cluster, codec, noise=GaussianNoise(0.03), seed=2
    )
    bo = BayesianOptimizer(codec.space, acquisition="ei", seed=0)
    bo_result = TuningLoop(
        objective, bo, max_steps=40, repeat_best=10, strategy_name="bo"
    ).run()

    print(f"topology: {topology.name} with operators {list(topology)}")
    for result in (pla_result, bo_result):
        mean, lo, hi = result.rerun_summary()
        print(
            f"{result.strategy:>4}: best {mean:8.1f} tuples/s "
            f"[{lo:.1f}, {hi:.1f}] found at step {result.best_step}"
        )
    best_config = codec.decode(bo_result.best_config)
    print("bo's chosen hints:", best_config.normalized_hints(topology))
    print(
        "note how the contentious 'enrich' bolt gets few tasks while "
        "'aggregate' (the heavy parallelizable bolt) gets many"
    )


if __name__ == "__main__":
    main()
