#!/usr/bin/env python
"""Compare the two execution engines on the same configurations.

The analytic model answers in microseconds (what the optimization
studies use); the discrete-event simulator plays the deployment out
batch by batch.  This example sweeps parallelism on a generated
topology and prints both engines' throughput side by side.

Run:  python examples/des_vs_analytic.py
"""

import time

from repro.experiments.report import render_table
from repro.storm import (
    AnalyticPerformanceModel,
    DiscreteEventSimulator,
)
from repro.storm.cluster import ClusterSpec, MachineSpec
from repro.storm.config import TopologyConfig
from repro.topology_gen.suite import make_topology


def main():
    cluster = ClusterSpec(
        n_machines=8, machine=MachineSpec(cores=4), max_executors_per_worker=50
    )
    topology = make_topology("small")
    base = TopologyConfig(
        batch_size=100, batch_parallelism=8, ackers=4, num_workers=8
    )

    analytic = AnalyticPerformanceModel(topology, cluster)
    des = DiscreteEventSimulator(topology, cluster, max_batches=50)

    rows = []
    for hint in (1, 2, 4, 8, 12):
        config = base.replace(parallelism_hints={n: hint for n in topology})
        t0 = time.perf_counter()
        a = analytic.evaluate_noise_free(config)
        t_analytic = time.perf_counter() - t0
        t0 = time.perf_counter()
        d = des.evaluate_noise_free(config)
        t_des = time.perf_counter() - t0
        agreement = (
            d.throughput_tps / a.throughput_tps if a.throughput_tps else float("nan")
        )
        rows.append(
            {
                "hint": hint,
                "analytic t/s": round(a.throughput_tps, 1),
                "DES t/s": round(d.throughput_tps, 1),
                "DES/analytic": round(agreement, 2),
                "binding cap": a.details["limiting_cap"],
                "analytic ms": round(t_analytic * 1e3, 2),
                "DES ms": round(t_des * 1e3, 1),
            }
        )
    print(f"topology: {topology.stats()}")
    print(render_table(rows))
    print(
        "\nthe engines agree on levels and, critically, on the *ordering* "
        "of configurations — which is what the optimizer consumes; the "
        "analytic model is ~100x faster, which is why the studies use it"
    )


if __name__ == "__main__":
    main()
