#!/usr/bin/env python
"""Run Sundog end-to-end in local mode on real generated text.

Where the tuning experiments use Sundog as a (cost, selectivity)
performance model, this example executes the *actual operator logic* of
every Figure 2 stage — dictionary filtering, entity-pair extraction,
per-batch counting, feature computation, merging, decision-tree
ranking — on synthetic common-crawl lines, then calibrates a
performance-model topology from the *measured* selectivities and
evaluates a deployment with it.

Run:  python examples/run_sundog_local.py
"""

from repro.experiments.report import render_table
from repro.storm import AnalyticPerformanceModel
from repro.storm.cluster import paper_cluster
from repro.storm.local import LocalTopologyRunner
from repro.sundog import CommonCrawlWorkload, sundog_default_config, sundog_topology
from repro.sundog.logic import hdfs_line_source, sundog_logic
from repro.topology_gen.modifications import apply_selectivity


def main():
    workload = CommonCrawlWorkload(match_fraction=0.35)
    topology = sundog_topology(workload, seed=1)
    logic = sundog_logic(workload)

    # ------------------------------------------------------------------
    # 1. Execute the real pipeline on real lines.
    # ------------------------------------------------------------------
    runner = LocalTopologyRunner(
        topology,
        sources={"HDFS1": hdfs_line_source(workload, seed=2)},
        logic=logic,
    )
    result = runner.run(n_batches=8, batch_size=500)

    rows = []
    for name in topology.topological_order():
        stat = result.stats[name]
        rows.append(
            {
                "operator": name,
                "received": stat.received,
                "emitted": stat.emitted,
                "selectivity": round(stat.selectivity, 3),
            }
        )
    print(f"processed {result.source_tuples} lines in {result.batches} batches")
    print(render_table(rows))

    scored = result.sink_tuples["HDFS2"]
    print(f"\n{len(scored)} ranked entity pairs written to HDFS2; sample:")
    for item in scored[:3]:
        print("  ", item.values)
    print(
        "(rankings are invalid by construction — the paper replaced the "
        "key-value store with dummies returning 1, and so do we)"
    )

    # ------------------------------------------------------------------
    # 2. Feed the measured behaviour back into the performance model.
    # ------------------------------------------------------------------
    measured = result.measured_selectivities()
    interesting = {
        name: measured[name]
        for name in ("Filter", "PPS1", "CNT2", "M1")
        if measured.get(name)
    }
    calibrated = apply_selectivity(topology, interesting)
    model = AnalyticPerformanceModel(calibrated, paper_cluster())
    config = sundog_default_config().replace(
        parallelism_hints={n: 11 for n in calibrated}
    )
    run = model.evaluate_noise_free(config)
    print(
        f"\nperformance model with measured selectivities "
        f"{ {k: round(v, 2) for k, v in interesting.items()} }:"
    )
    print(
        f"  {run.throughput_tps / 1e6:.3f}M tuples/s at the developers' "
        f"manual configuration (limiting cap: {run.details['limiting_cap']})"
    )


if __name__ == "__main__":
    main()
