#!/usr/bin/env python
"""Tune Sundog, the paper's real-world entity-ranking topology (§V-D).

Reproduces the Figure 8 storyline:

1. hint-only tuning plateaus — pla, bo and bo180 land in the same band;
2. adding batch size + batch parallelism to the search space is the
   step change (paper: 2.8x over pla hints-only);
3. fixing hints at pla's best and tuning batch + concurrency parameters
   reaches a statistically indistinguishable throughput.

Run:  python examples/tune_sundog.py
"""

from repro.experiments.presets import Budget
from repro.experiments.report import render_table
from repro.experiments.runner import SundogStudy
from repro.experiments.figures import (
    figure8b_sundog_convergence,
    speedup_over_pla,
    sundog_t_tests,
)
from repro.experiments.report import render_series
from repro.sundog import CommonCrawlWorkload, sundog_topology


def main():
    # The synthetic common-crawl workload that stands in for the paper's
    # common crawl dump: heavy-tailed line sizes, dictionary filtering.
    workload = CommonCrawlWorkload(match_fraction=0.35)
    topology = sundog_topology(workload)
    print(f"Sundog: {len(topology)} operators in {topology.num_layers()} layers")
    print(f"filter selectivity measured from workload: "
          f"{topology.operator('Filter').selectivity:.2f}")

    budget = Budget(
        steps=35, steps_extended=60, baseline_steps=60, passes=1, repeat_best=10
    )
    study = SundogStudy(budget, seed=0).run()

    rows = []
    for (strategy, params), results in sorted(study.results.items()):
        best = max(results, key=lambda r: r.best_value)
        mean, lo, hi = best.rerun_summary()
        rows.append(
            {
                "Strategy": strategy,
                "Params": params,
                "mil tuples/s": round(mean / 1e6, 3),
                "min": round(lo / 1e6, 3),
                "max": round(hi / 1e6, 3),
            }
        )
    print()
    print(render_table(rows))
    print(f"\nspeedup over pla hints-only: {speedup_over_pla(study):.2f}x "
          f"(paper: 2.8x)")
    print("\nsignificance tests (paper reports p=0.05 comparisons):")
    for note in sundog_t_tests(study):
        print(" ", note)
    print("\nconvergence traces (million tuples/s):")
    print(render_series(figure8b_sundog_convergence(study).series))


if __name__ == "__main__":
    main()
