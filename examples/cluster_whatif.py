#!/usr/bin/env python
"""What-if capacity planning: re-tune the same topology as the cluster grows.

The paper tunes one fixed 80-machine cluster; because our substrate is a
simulator, the same machinery answers a question the authors could not:
how do the *optimal configuration* and the achievable throughput change
with cluster size?  This example re-runs Bayesian Optimization on the
medium imbalanced topology for 10/20/40/80-machine clusters and shows
how the winning parallelism budget scales.

Run:  python examples/cluster_whatif.py
"""

from repro.core import BayesianOptimizer, TuningLoop
from repro.experiments.presets import SYNTHETIC_BASE_CONFIG
from repro.experiments.report import render_table
from repro.storm import StormObjective
from repro.storm.cluster import ClusterSpec, MachineSpec
from repro.storm.noise import GaussianNoise
from repro.storm.spaces import ParallelismCodec
from repro.topology_gen.suite import TopologyCondition, make_topology

STEPS = 30


def tune_on(n_machines: int, topology):
    cluster = ClusterSpec(
        n_machines=n_machines,
        machine=MachineSpec(cores=4, memory_mb=8192),
        max_executors_per_worker=50,
    )
    base = SYNTHETIC_BASE_CONFIG.replace(num_workers=cluster.total_workers)
    codec = ParallelismCodec(topology, cluster, base)
    objective = StormObjective(
        topology, cluster, codec, noise=GaussianNoise(0.05), seed=n_machines
    )
    optimizer = BayesianOptimizer(codec.space, seed=7)
    result = TuningLoop(
        objective, optimizer, max_steps=STEPS, repeat_best=8
    ).run()
    best = codec.decode(result.best_config)
    return result, sum(best.normalized_hints(topology).values()), cluster


def main():
    topology = make_topology(
        "medium", TopologyCondition(time_imbalance=1.0, contentious_share=0.0)
    )
    print(f"topology: {topology.stats()}")
    rows = []
    previous = None
    for n_machines in (10, 20, 40, 80):
        result, total_tasks, cluster = tune_on(n_machines, topology)
        mean, lo, hi = result.rerun_summary()
        scaling = f"{mean / previous:.2f}x" if previous is not None else "-"
        previous = mean
        rows.append(
            {
                "machines": n_machines,
                "cores": cluster.total_cores,
                "tuples/s": round(mean, 1),
                "min": round(lo, 1),
                "max": round(hi, 1),
                "tuned total tasks": total_tasks,
                "vs previous": scaling,
            }
        )
    print(render_table(rows))
    print(
        "\nthe tuned task budget grows with the hardware while per-step "
        "scaling stays below 2x — coordination overheads (ackers, batch "
        "commits, timeouts) absorb part of each doubling, which is why "
        "re-tuning per deployment matters"
    )


if __name__ == "__main__":
    main()
