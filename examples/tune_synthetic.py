#!/usr/bin/env python
"""Tune generated synthetic topologies — the paper's §V-A experiment.

Generates a layer-by-layer topology (GGen method), applies the paper's
workload perturbations (time-complexity imbalance, resource contention),
and compares all four strategies: pla, bo, ipla, ibo.

Run:  python examples/tune_synthetic.py [small|medium|large]
"""

import sys

from repro.core import (
    BayesianOptimizer,
    ParallelLinearAscent,
    TuningLoop,
    base_parallelism_weights,
)
from repro.experiments.presets import SYNTHETIC_BASE_CONFIG, default_cluster
from repro.experiments.report import render_table
from repro.storm import StormObjective
from repro.storm.noise import GaussianNoise
from repro.storm.spaces import (
    InformedMultiplierCodec,
    ParallelismCodec,
    UniformHintCodec,
)
from repro.topology_gen.suite import TopologyCondition, make_topology

STEPS_BASELINE = 60
STEPS_BO = 30


def run_strategy(name, topology, cluster, seed=0):
    base = SYNTHETIC_BASE_CONFIG
    if name == "pla":
        codec = UniformHintCodec(topology, cluster, base)
        optimizer = ParallelLinearAscent(
            "uniform_hint", codec.ascent_values(STEPS_BASELINE)
        )
        steps = STEPS_BASELINE
    elif name == "ipla":
        codec = InformedMultiplierCodec(topology, cluster, base)
        optimizer = ParallelLinearAscent(
            "multiplier", codec.ascent_values(STEPS_BASELINE)
        )
        steps = STEPS_BASELINE
    elif name == "bo":
        codec = ParallelismCodec(topology, cluster, base)
        optimizer = BayesianOptimizer(codec.space, seed=seed)
        steps = STEPS_BO
    elif name == "ibo":
        codec = InformedMultiplierCodec(topology, cluster, base)
        optimizer = BayesianOptimizer(codec.space, seed=seed)
        steps = STEPS_BO
    else:
        raise ValueError(name)
    objective = StormObjective(
        topology, cluster, codec, noise=GaussianNoise(0.03), seed=seed + 100
    )
    result = TuningLoop(
        objective, optimizer, max_steps=steps, repeat_best=10, strategy_name=name
    ).run()
    return result


def main():
    size = sys.argv[1] if len(sys.argv) > 1 else "small"
    condition = TopologyCondition(time_imbalance=1.0, contentious_share=0.0)
    topology = make_topology(size, condition)
    cluster = default_cluster()

    print(f"generated topology: {topology.stats()}")
    weights = base_parallelism_weights(topology)
    heaviest = max(weights, key=lambda n: weights[n])
    print(
        f"base parallelism weights: spouts 1.0, heaviest operator "
        f"{heaviest} at {weights[heaviest]:.1f}"
    )

    rows = []
    for strategy in ("pla", "bo", "ipla", "ibo"):
        result = run_strategy(strategy, topology, cluster)
        mean, lo, hi = result.rerun_summary()
        rows.append(
            {
                "Strategy": strategy,
                "tuples/s": round(mean, 1),
                "min": round(lo, 1),
                "max": round(hi, 1),
                "best step": result.best_step,
                "steps run": result.n_steps,
            }
        )
    print()
    print(render_table(rows))
    print(
        "\nexpected shape (paper Figure 4, 100% TiIm row): informed "
        "strategies (ipla/ibo) lead; bo partially compensates for the "
        "missing topology information relative to pla"
    )


if __name__ == "__main__":
    main()
