"""Ablation A6: objective fidelity — analytic model vs discrete-event sim.

The studies evaluate configurations with the closed-form analytic
engine; the discrete-event simulator is the ground-truth mechanism
model.  This bench runs the same short tuning session against both and
checks the optimizer reaches the same regime — evidence that the fast
objective does not distort the optimization landscape.
"""

import numpy as np

from repro.core.loop import TuningLoop
from repro.core.optimizer import BayesianOptimizer
from repro.experiments.report import render_table
from repro.storm.cluster import ClusterSpec, MachineSpec
from repro.storm.config import TopologyConfig
from repro.storm.noise import GaussianNoise
from repro.storm.objective import StormObjective
from repro.storm.spaces import ParallelismCodec
from repro.topology_gen.suite import TopologyCondition, make_topology

STEPS = 15


def run_fidelity(fidelity: str) -> tuple[float, float]:
    # A small cluster keeps DES event counts manageable.
    cluster = ClusterSpec(
        n_machines=8, machine=MachineSpec(cores=4), max_executors_per_worker=50
    )
    topology = make_topology(
        "small", TopologyCondition(time_imbalance=1.0, contentious_share=0.0)
    )
    base = TopologyConfig(
        batch_size=100, batch_parallelism=8, ackers=4, num_workers=8
    )
    codec = ParallelismCodec(topology, cluster, base)
    objective = StormObjective(
        topology,
        cluster,
        codec,
        fidelity=fidelity,  # type: ignore[arg-type]
        noise=GaussianNoise(0.03),
        seed=0,
        des_kwargs={"max_batches": 40},
    )
    optimizer = BayesianOptimizer(codec.space, seed=0)
    result = TuningLoop(objective, optimizer, max_steps=STEPS).run()
    eval_seconds = float(
        np.mean([o.evaluate_seconds for o in result.observations])
    )
    return result.best_value, eval_seconds


def test_ablation_objective_fidelity(benchmark):
    def run_all():
        return {f: run_fidelity(f) for f in ("analytic", "des")}

    scores = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        {
            "Fidelity": f,
            "best tuples/s": round(best, 1),
            "mean eval seconds": round(secs, 4),
        }
        for f, (best, secs) in scores.items()
    ]
    print()
    print("== Ablation A6: analytic vs discrete-event objective ==")
    print(render_table(rows))
    analytic_best, analytic_cost = scores["analytic"]
    des_best, des_cost = scores["des"]
    # Same optimization regime under both engines...
    assert 0.5 < des_best / analytic_best < 2.0
    # ...at a fraction of the evaluation cost.
    assert analytic_cost < des_cost


if __name__ == "__main__":
    import sys

    from _harness import pytest_bench_main

    sys.exit(pytest_bench_main(__file__))
