"""Headline bench for the batch-aware loop: overlap the measurement window.

The paper's evaluations were two-minute cluster measurement windows —
wall-clock the driver spends *waiting*, not computing.  This bench
models that regime: a DES-fidelity :class:`StormObjective` wrapped in a
simulated measurement window (``time.sleep`` releases the GIL, exactly
like waiting on a remote cluster), driven once by the classic serial
loop and once by the pending-set loop over a 4-worker thread executor.

Two claims are checked:

* **Speedup** — a 60-step pla pass at q=4 in-flight evaluations is at
  least 3x faster end-to-end than serial, with the *identical* final
  ``best()`` (the objective is deterministic; pla's schedule is fixed,
  so both runs measure the same configuration set).
* **Distribution** — for a *noisy* objective, batched BO (q=4 with
  constant-liar fantasies) finds best values statistically
  indistinguishable from step-by-step BO: Welch's t-test over 10 seeds
  must not reject at p > 0.05.

Run as a script for the CI smoke check (``--smoke`` scales the window
down and asserts the executor path works), or under pytest for the
full acceptance numbers:

    PYTHONPATH=src python benchmarks/bench_parallel_loop.py --smoke
    PYTHONPATH=src python -m pytest benchmarks/bench_parallel_loop.py -v
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Mapping

import numpy as np

from repro.core.executor import SerialExecutor, ThreadPoolExecutor
from repro.core.loop import TuningLoop
from repro.core.optimizer import BayesianOptimizer
from repro.core.seeding import derive_seed
from repro.experiments.presets import SYNTHETIC_BASE_CONFIG, default_cluster
from repro.experiments.runner import make_synthetic_optimizer
from repro.stats.ttest import welch_t_test
from repro.storm.metrics import MeasuredRun
from repro.storm.noise import GaussianNoise
from repro.storm.objective import StormObjective
from repro.storm.spaces import ParallelismCodec
from repro.topology_gen.suite import make_topology

#: Full-bench knobs (the acceptance configuration).
STEPS = 60
WINDOW_SECONDS = 0.35
WINDOW_JITTER = 0.2
Q = 4
N_SEEDS = 10
#: Small DES windows keep per-evaluation *compute* low so wall-clock is
#: dominated by the measurement window, as on a real cluster.  At q=4
#: the overlap only wins while q x compute fits inside one window —
#: heavier simulations turn the pass CPU-bound and cap the speedup.
DES_KWARGS = {"max_batches": 4, "warmup_batches": 1, "max_sim_time_ms": 30_000}


class MeasurementWindowObjective:
    """A Storm objective that takes ``window_seconds`` of wall-clock.

    Models the paper's two-minute cluster measurement windows: the
    sleep releases the GIL, so a thread executor overlaps windows the
    same way the Spearmint driver overlapped cluster runs.  The window
    is jittered a deterministic ±20% per configuration — real windows
    never take exactly the same time, and lock-stepped sleeps would
    convoy the workers' (GIL-serialized) simulation compute into the
    same instant.  Delegates ``measure`` (with its per-evaluation seed)
    to the wrapped objective, so values stay a pure function of
    (config, seed).
    """

    def __init__(self, inner: StormObjective, window_seconds: float) -> None:
        self.inner = inner
        self.window_seconds = window_seconds

    def _window(self, params: Mapping[str, object]) -> float:
        label = "|".join(f"{k}={params[k]}" for k in sorted(params))
        rng = np.random.default_rng(derive_seed(0, "window", label))
        return self.window_seconds * (
            1.0 + WINDOW_JITTER * float(rng.uniform(-1.0, 1.0))
        )

    def measure(
        self, params: Mapping[str, object], *, seed: int | None = None
    ) -> MeasuredRun:
        time.sleep(self._window(params))
        return self.inner.measure(params, seed=seed)

    def cache_info(self) -> dict[str, object]:
        return self.inner.cache_info()

    def __call__(self, params: Mapping[str, object]) -> float:
        return float(self.measure(params).throughput_tps)


def _window_objective(window_seconds: float) -> MeasurementWindowObjective:
    """Deterministic DES objective behind a measurement window."""
    topology = make_topology("small")
    cluster = default_cluster()
    _, codec = make_synthetic_optimizer(
        "pla", topology, cluster, SYNTHETIC_BASE_CONFIG, STEPS, seed=0
    )
    inner = StormObjective(
        topology,
        cluster,
        codec,
        fidelity="des",
        noise=None,
        des_kwargs=DES_KWARGS,
    )
    return MeasurementWindowObjective(inner, window_seconds)


def _run_pla_pass(
    objective: MeasurementWindowObjective,
    steps: int,
    *,
    workers: int,
) -> tuple[float, float, list[tuple[tuple[tuple[str, object], ...], float]]]:
    """One pla pass; returns (wall seconds, best value, observation set)."""
    topology = objective.inner.topology
    cluster = objective.inner.cluster
    optimizer, _ = make_synthetic_optimizer(
        "pla", topology, cluster, SYNTHETIC_BASE_CONFIG, steps, seed=0
    )
    executor = (
        ThreadPoolExecutor(objective, max_workers=workers) if workers > 1 else None
    )
    try:
        loop = TuningLoop(
            objective,
            optimizer,
            max_steps=steps,
            strategy_name="pla",
            executor=executor,
            batch_size=workers if workers > 1 else None,
        )
        t0 = time.perf_counter()
        result = loop.run()
        wall = time.perf_counter() - t0
    finally:
        if executor is not None:
            executor.close()
    observations = [
        (tuple(sorted(o.config.items())), o.value) for o in result.observations
    ]
    return wall, result.best_value, observations


def run_speedup(
    steps: int = STEPS, window_seconds: float = WINDOW_SECONDS, workers: int = Q
) -> dict[str, float]:
    """Serial vs q-in-flight wall-clock on the same deterministic pass."""
    serial_wall, serial_best, serial_obs = _run_pla_pass(
        _window_objective(window_seconds), steps, workers=1
    )
    parallel_wall, parallel_best, parallel_obs = _run_pla_pass(
        _window_objective(window_seconds), steps, workers=workers
    )
    assert parallel_best == serial_best, (
        f"deterministic best diverged: serial {serial_best} "
        f"vs q={workers} {parallel_best}"
    )
    assert set(parallel_obs) == set(serial_obs), (
        "observation sets diverged between serial and concurrent runs"
    )
    speedup = serial_wall / parallel_wall
    print(
        f"pla {steps}-step DES pass (window {window_seconds * 1e3:.0f} ms): "
        f"serial {serial_wall:.2f}s  q={workers} {parallel_wall:.2f}s  "
        f"speedup {speedup:.2f}x  best {serial_best:.0f} tps"
    )
    return {
        "serial_seconds": serial_wall,
        "parallel_seconds": parallel_wall,
        "speedup": speedup,
        "best": serial_best,
    }


def _bo_best(seed: int, *, batched: bool, steps: int = 30) -> float:
    """Best value of one noisy BO pass, step-by-step or q=4 batched."""
    topology = make_topology("small")
    cluster = default_cluster()
    codec = ParallelismCodec(topology, cluster, SYNTHETIC_BASE_CONFIG)
    objective = StormObjective(
        topology,
        cluster,
        codec,
        fidelity="analytic",
        noise=GaussianNoise(0.03),
        seed=derive_seed(seed, "bench", "noise"),
    )
    optimizer = BayesianOptimizer(codec.space, seed=seed)
    if batched:
        executor = SerialExecutor(objective)
        loop = TuningLoop(
            objective,
            optimizer,
            max_steps=steps,
            executor=executor,
            batch_size=Q,
            seed=seed,
        )
    else:
        loop = TuningLoop(objective, optimizer, max_steps=steps)
    return loop.run().best_value


def run_distribution(n_seeds: int = N_SEEDS) -> dict[str, float]:
    """Welch t-test: batched-BO best values vs step-by-step BO's."""
    serial = [_bo_best(seed, batched=False) for seed in range(n_seeds)]
    batched = [_bo_best(seed, batched=True) for seed in range(n_seeds)]
    outcome = welch_t_test(serial, batched)
    print(
        f"noisy BO best over {n_seeds} seeds: "
        f"serial mean {sum(serial) / n_seeds:.0f}  "
        f"batched(q={Q}) mean {sum(batched) / n_seeds:.0f}  "
        f"Welch p={outcome.p_value:.3f}"
    )
    return {"p_value": outcome.p_value}


# ----------------------------------------------------------------------
# pytest entry points (full acceptance numbers)
# ----------------------------------------------------------------------
def test_parallel_speedup_q4() -> None:
    """60-step DES pass at q=4: >= 3x over serial, identical best."""
    report = run_speedup()
    assert report["speedup"] >= 3.0, (
        f"q={Q} speedup {report['speedup']:.2f}x is below the 3x target"
    )


def test_noisy_best_distribution_unchanged() -> None:
    """Batched BO's best-found distribution matches step-by-step BO."""
    report = run_distribution()
    assert report["p_value"] > 0.05, (
        f"Welch t-test rejected equal means (p={report['p_value']:.4f})"
    )


# ----------------------------------------------------------------------
# Script entry point (CI smoke)
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    from _harness import add_harness_args, emit, make_metric

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="scaled-down executor exercise for CI (seconds, not minutes)",
    )
    add_harness_args(parser)
    args = parser.parse_args(argv)
    if args.smoke:
        report = run_speedup(steps=12, window_seconds=0.04)
        # The smoke check exercises the concurrent path and its
        # determinism guarantees; the 3x perf claim is asserted by the
        # full bench, not on shared CI runners.
        assert report["speedup"] > 1.0, "concurrent run slower than serial"
        print("smoke ok")
    else:
        report = run_speedup()
        run_distribution()
    emit(
        "bench_parallel_loop",
        smoke=args.smoke,
        metrics={
            "speedup": make_metric(
                report["speedup"], higher_is_better=True, unit="x"
            ),
            "serial_seconds": make_metric(
                report["serial_seconds"], higher_is_better=False, unit="s"
            ),
            "parallel_seconds": make_metric(
                report["parallel_seconds"], higher_is_better=False, unit="s"
            ),
        },
        meta={"best_tps": report["best"]},
        json_path=args.json,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
