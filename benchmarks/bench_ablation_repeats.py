"""Ablation A4: averaged objective sampling — the paper's future work.

§VI: "our setup could be improved by running each sampling run multiple
times and by using the average performance for each tested parameter
configuration."  This bench implements that extension and measures
whether averaging repeated samples improves the found configuration at
a fixed total evaluation budget.
"""

import numpy as np

from repro.core.loop import TuningLoop
from repro.core.optimizer import BayesianOptimizer
from repro.experiments.presets import SYNTHETIC_BASE_CONFIG, default_cluster
from repro.experiments.report import render_table
from repro.storm.noise import InterferenceNoise
from repro.storm.objective import StormObjective
from repro.storm.spaces import ParallelismCodec
from repro.topology_gen.suite import TopologyCondition, make_topology

TOTAL_EVALUATIONS = 30
SEEDS = (0, 1, 2)


def run_with_repeats(repeats: int) -> float:
    """Spend the same evaluation budget with k-sample averaging."""
    topology = make_topology(
        "small", TopologyCondition(time_imbalance=1.0, contentious_share=0.0)
    )
    cluster = default_cluster()
    scores = []
    for seed in SEEDS:
        codec = ParallelismCodec(topology, cluster, SYNTHETIC_BASE_CONFIG)
        # Heavy-tailed noise is where averaging should matter.
        objective = StormObjective(
            topology,
            cluster,
            codec,
            noise=InterferenceNoise(sigma=0.05, p_interference=0.2, slowdown=0.5),
            seed=seed,
        )

        def averaged(params):
            return float(np.mean([objective(params) for _ in range(repeats)]))

        optimizer = BayesianOptimizer(codec.space, seed=seed)
        steps = TOTAL_EVALUATIONS // repeats
        result = TuningLoop(averaged, optimizer, max_steps=steps).run()
        # Score the found configuration by its true (noise-averaged)
        # performance, not the lucky sample that found it.
        best = result.best_config
        scores.append(float(np.mean([objective(best) for _ in range(20)])))
    return float(np.mean(scores))


def test_ablation_repeated_sampling(benchmark):
    def run_all():
        return {k: run_with_repeats(k) for k in (1, 2, 3)}

    scores = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        {
            "Samples per config": k,
            "steps": TOTAL_EVALUATIONS // k,
            "true tuples/s of winner": round(v, 1),
        }
        for k, v in scores.items()
    ]
    print()
    print("== Ablation A4: averaged sampling under heavy-tailed noise ==")
    print(render_table(rows))
    assert all(v > 0 for v in scores.values())


if __name__ == "__main__":
    import sys

    from _harness import pytest_bench_main

    sys.exit(pytest_bench_main(__file__))
