"""Regenerate Table I: the tuned configuration parameters."""

from repro.experiments.figures import table1_parameters
from repro.experiments.report import render_figure


def test_table1_parameters(benchmark):
    data = benchmark.pedantic(table1_parameters, rounds=1, iterations=1)
    print()
    print(render_figure(data))
    assert len(data.rows) == 6


if __name__ == "__main__":
    import sys

    from _harness import pytest_bench_main

    sys.exit(pytest_bench_main(__file__))
