"""Regenerate Figure 6: LOESS smoothing of BO optimization traces.

Paper shape: small/medium topologies plateau early; large keeps
improving with additional steps (most visibly under time imbalance).
"""

from repro.experiments.figures import figure6_loess_traces
from repro.experiments.report import render_figure


def test_fig6_loess_traces(benchmark, synthetic_study):
    data = benchmark.pedantic(
        figure6_loess_traces, args=(synthetic_study,), rounds=1, iterations=1
    )
    print()
    print(render_figure(data))
    assert len(data.series) == len(synthetic_study.conditions) * len(
        synthetic_study.sizes
    )
    for key, (xs, ys) in data.series.items():
        assert len(xs) == len(ys) > 5
        # Smoothed traces end no lower than ~20% under their start —
        # optimization runs trend upward.
        assert ys[-1] > 0.8 * ys[0] or ys[-1] > 0


if __name__ == "__main__":
    import sys

    from _harness import pytest_bench_main

    sys.exit(pytest_bench_main(__file__))
