"""Ablation A7: Trident operator fusion on a chain-heavy topology.

Trident fuses consecutive operators into one processing element
(§III-A) to avoid repartitioning.  In the execution model this is a
real trade-off:

* fusion removes per-operator batch-coordination overhead and network
  hops — it wins when batches are small and coordination-bound;
* fusion collapses pipeline stages — with per-operator batch
  serialization, an unfused chain keeps one batch in flight per stage,
  so fusion loses when the pipeline is compute-bound.

This two-sided behaviour is exactly the framework opacity the paper
complains about: "automatic operator fusion of Trident further
obfuscates the impact of any single parameter" (§III-B).
"""

from repro.experiments.report import render_table
from repro.storm.analytic import AnalyticPerformanceModel
from repro.storm.cluster import paper_cluster
from repro.storm.config import TopologyConfig
from repro.storm.topology import TopologyBuilder
from repro.storm.trident import fuse_linear_chains


def chain_heavy_topology():
    """Two long preprocessing chains joining into a short tail."""
    builder = TopologyBuilder("chains")
    builder.spout("src", cost=1.0)
    prev = "src"
    for i in range(6):
        name = f"pre{i}"
        builder.bolt(name, inputs=[prev], cost=3.0)
        prev = name
    builder.bolt("branch", inputs=[prev], cost=2.0)
    builder.bolt("left0", inputs=["branch"], cost=3.0)
    builder.bolt("left1", inputs=["left0"], cost=3.0)
    builder.bolt("right0", inputs=["branch"], cost=3.0)
    builder.bolt("join", inputs=["left1", "right0"], cost=2.0)
    return builder.build()


def throughput(
    topology, total_tasks: int, batch_size: int, batch_parallelism: int
) -> float:
    """Throughput at a fixed executor budget (fair comparison)."""
    cluster = paper_cluster()
    model = AnalyticPerformanceModel(topology, cluster)
    hint = max(1, round(total_tasks / len(topology)))
    config = TopologyConfig(
        parallelism_hints={n: hint for n in topology},
        batch_size=batch_size,
        batch_parallelism=batch_parallelism,
        num_workers=80,
    )
    return model.evaluate_noise_free(config).throughput_tps


def test_ablation_fusion(benchmark):
    def run():
        raw = chain_heavy_topology()
        fused = fuse_linear_chains(raw).topology
        return raw, fused

    raw, fused = benchmark.pedantic(run, rounds=1, iterations=1)
    rows = []
    total_tasks = 96
    cases = (
        # Few batches in flight: end-to-end latency (dominated by
        # per-operator coordination) limits the batch rate.
        (20, 2, "latency-bound (B=20, P=2)"),
        # Deep pipeline full of work: stage throughput limits the rate.
        (2000, 16, "compute-bound (B=2000, P=16)"),
    )
    for batch_size, bp, regime in cases:
        t_raw = throughput(raw, total_tasks, batch_size, bp)
        t_fused = throughput(fused, total_tasks, batch_size, bp)
        rows.append(
            {
                "regime": regime,
                "unfused t/s": round(t_raw, 1),
                "fused t/s": round(t_fused, 1),
                "fusion gain": round(t_fused / t_raw, 2),
            }
        )
    print()
    print(
        f"== Ablation A7: Trident fusion "
        f"({len(raw)} -> {len(fused)} operators, {total_tasks} executors) =="
    )
    print(render_table(rows))
    assert len(fused) < len(raw)
    gains = [float(row["fusion gain"]) for row in rows]
    # Fusion shortens the pipeline, so it wins when latency binds...
    assert gains[0] > 1.2
    # ...and costs pipeline parallelism when stage compute binds.
    assert gains[1] < 1.0


if __name__ == "__main__":
    import sys

    from _harness import pytest_bench_main

    sys.exit(pytest_bench_main(__file__))
