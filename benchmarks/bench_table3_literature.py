"""Regenerate Table III: operator counts of topologies in the literature."""

from repro.experiments.figures import table3_literature
from repro.experiments.report import render_figure


def test_table3_literature(benchmark):
    data = benchmark.pedantic(table3_literature, rounds=1, iterations=1)
    print()
    print(render_figure(data))
    counts = [r["# of Ops"] for r in data.rows[:4]]
    assert counts == [40, 60, 7, 3]  # the paper's quoted values


if __name__ == "__main__":
    import sys

    from _harness import pytest_bench_main

    sys.exit(pytest_bench_main(__file__))
