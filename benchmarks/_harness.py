"""Shared CLI harness for the benchmark suite.

Every ``bench_*.py`` run as a script emits one JSON document in the
schema :mod:`repro.obs.perf` defines, so CI (and humans) can track a
single perf trajectory and gate regressions with
``repro-experiments obs perf-compare``.

Two entry styles:

* Benches with a real ``main()`` (batch-eval, drift, resilience,
  parallel-loop, suggest-fastpath) build their metric dict and call
  :func:`emit` — printed to stdout and optionally written to ``--json``.
* Pytest-style benches (the figure/table/ablation acceptance suites)
  delegate ``__main__`` to :func:`pytest_bench_main`, which runs the
  file under pytest and reports pass/fail counts plus wall-clock as the
  trackable metrics.

Import note: this file is *not* collected by pytest (it matches neither
``test_*`` nor ``bench_*``) and benches import it sibling-style
(``from _harness import ...``), which works because Python puts a
script's own directory on ``sys.path``.
"""

from __future__ import annotations

import argparse
import json
import platform
import sys
import time
from pathlib import Path
from typing import Mapping

from repro.obs.perf import make_metric, make_result

__all__ = ["add_harness_args", "emit", "make_metric", "pytest_bench_main"]


def add_harness_args(parser: argparse.ArgumentParser) -> None:
    """The two flags every bench script shares."""
    if not any(a.dest == "smoke" for a in parser._actions):
        parser.add_argument(
            "--smoke", action="store_true", help="scaled-down CI budgets"
        )
    parser.add_argument(
        "--json", metavar="PATH", help="also write the result JSON here"
    )


def emit(
    bench: str,
    *,
    smoke: bool,
    metrics: Mapping[str, Mapping[str, object]],
    meta: Mapping[str, object] | None = None,
    json_path: str | None = None,
) -> dict[str, object]:
    """Build, print, and optionally persist one schema result."""
    full_meta = {
        "python": platform.python_version(),
        "platform": platform.system().lower(),
        **dict(meta or {}),
    }
    result = make_result(
        bench,
        mode="smoke" if smoke else "full",
        metrics=metrics,
        meta=full_meta,
    )
    text = json.dumps(result, indent=2, sort_keys=True)
    print(text)
    if json_path:
        Path(json_path).parent.mkdir(parents=True, exist_ok=True)
        Path(json_path).write_text(text + "\n", encoding="utf-8")
    return result


def pytest_bench_main(
    bench_file: str, argv: list[str] | None = None
) -> int:
    """Script entry for pytest-style benches: run the file, emit schema.

    Exit code follows pytest (0 = all passed).  ``--smoke`` is accepted
    for CI-interface uniformity; these suites are already sized for CI,
    so it only labels the result's mode.
    """
    parser = argparse.ArgumentParser(prog=Path(bench_file).name)
    add_harness_args(parser)
    parser.add_argument(
        "--pytest-args",
        default="",
        help="extra args forwarded to pytest (space-separated)",
    )
    args = parser.parse_args(argv)

    import pytest

    t0 = time.perf_counter()
    code = pytest.main(
        [bench_file, "-q", *args.pytest_args.split()],
    )
    wall = time.perf_counter() - t0
    emit(
        Path(bench_file).stem,
        smoke=args.smoke,
        metrics={
            "wall_seconds": make_metric(
                wall, higher_is_better=False, unit="s"
            ),
            "passed": make_metric(
                1.0 if code == 0 else 0.0, higher_is_better=True
            ),
        },
        meta={"pytest_exit_code": int(code)},
        json_path=args.json,
    )
    return int(code)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(
        "run a bench_*.py script, not the harness itself; see "
        "docs/OBSERVABILITY.md §perf-compare"
    )
