"""Regenerate Figure 4: throughput of tuned configurations.

Grid: {0%, 25%} resource contention x {0%, 100%} time-complexity
imbalance x {small, medium, large} x {pla, bo, ipla, ibo, bo180}.

Qualitative shape to reproduce (paper §V-A):
  * homogeneous / no contention: ipla dominates medium and large; all
    strategies comparable on small;
  * time imbalance: informed strategies win; bo partially compensates
    for missing topology information (bo > pla on medium/large);
  * contention: absolute throughput collapses to the contentious
    operators' fixed service rate;
  * bo180 improves on bo.
"""

from repro.experiments.figures import figure4_throughput
from repro.experiments.report import render_figure
from repro.topology_gen.suite import CONDITIONS


def test_fig4_throughput(benchmark, synthetic_study):
    data = benchmark.pedantic(
        figure4_throughput, args=(synthetic_study,), rounds=1, iterations=1
    )
    print()
    print(render_figure(data))

    def mean(condition, size, strategy):
        for row in data.rows:
            if (
                row["Condition"] == condition.label
                and row["Size"] == size
                and row["Strategy"] == strategy
            ):
                return float(row["tuples/s"])
        raise KeyError((condition.label, size, strategy))

    homogeneous = CONDITIONS[0]
    imbalance = next(
        c for c in CONDITIONS if c.time_imbalance == 1.0 and c.contentious_share == 0.0
    )
    contention = next(
        c for c in CONDITIONS if c.time_imbalance == 0.0 and c.contentious_share > 0.0
    )

    # F4.1: informed linear ascent dominates medium/large when balanced.
    for size in ("medium", "large"):
        assert mean(homogeneous, size, "ipla") > 1.2 * mean(homogeneous, size, "pla")
    # F4.1: small is roughly strategy-insensitive.
    assert mean(homogeneous, "small", "ipla") < 1.6 * mean(homogeneous, "small", "pla")
    # F4.2: bo partially compensates for missing information under
    # imbalance (beats pla, stays below the informed strategies).
    assert mean(imbalance, "large", "bo") > mean(imbalance, "large", "pla")
    assert mean(imbalance, "large", "bo") < mean(imbalance, "large", "ipla")
    # F4.3: contention collapses throughput for every strategy.
    for size in ("small", "medium", "large"):
        assert mean(contention, size, "pla") < 0.3 * mean(homogeneous, size, "pla")


if __name__ == "__main__":
    import sys

    from _harness import pytest_bench_main

    sys.exit(pytest_bench_main(__file__))
