"""Ablation A3: initial design — Latin hypercube size and random fallback.

The optimizer seeds its GP with a space-filling Latin-hypercube design;
this bench varies the design size (and compares plain random sampling)
on the small tuning problem.
"""

import numpy as np

from repro.core.loop import TuningLoop
from repro.core.optimizer import BayesianOptimizer
from repro.core.baselines import RandomSearchOptimizer
from repro.experiments.presets import SYNTHETIC_BASE_CONFIG, default_cluster
from repro.experiments.report import render_table
from repro.storm.noise import GaussianNoise
from repro.storm.objective import StormObjective
from repro.storm.spaces import ParallelismCodec
from repro.topology_gen.suite import TopologyCondition, make_topology

STEPS = 25
SEEDS = (0, 1, 2)


def make_problem(seed: int):
    topology = make_topology(
        "small", TopologyCondition(time_imbalance=1.0, contentious_share=0.0)
    )
    cluster = default_cluster()
    codec = ParallelismCodec(topology, cluster, SYNTHETIC_BASE_CONFIG)
    objective = StormObjective(
        topology, cluster, codec, noise=GaussianNoise(0.03), seed=seed
    )
    return codec, objective


def run_variant(init_points: int | None) -> float:
    scores = []
    for seed in SEEDS:
        codec, objective = make_problem(seed)
        if init_points is None:  # pure random search control
            optimizer = RandomSearchOptimizer(codec.space, seed=seed)
        else:
            optimizer = BayesianOptimizer(
                codec.space, init_points=init_points, seed=seed
            )
        result = TuningLoop(objective, optimizer, max_steps=STEPS).run()
        scores.append(result.best_value)
    return float(np.mean(scores))


def test_ablation_init_design(benchmark):
    variants = {"lhs-4": 4, "lhs-8": 8, "lhs-16": 16, "random-search": None}

    def run_all():
        return {name: run_variant(v) for name, v in variants.items()}

    scores = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        {"Init design": name, "best tuples/s": round(v, 1)}
        for name, v in scores.items()
    ]
    print()
    print("== Ablation A3: initial design (small, 100% TiIm) ==")
    print(render_table(rows))
    # Any BO variant should beat pure random search on average.
    bo_scores = [v for name, v in scores.items() if name != "random-search"]
    assert max(bo_scores) >= scores["random-search"] * 0.95


if __name__ == "__main__":
    import sys

    from _harness import pytest_bench_main

    sys.exit(pytest_bench_main(__file__))
