"""Acceptance bench for the robustness layer: chaos, retries, resume.

Three claims are checked (docs/ROBUSTNESS.md):

* **Completion under chaos** — with a 10% injected-failure rate
  (:meth:`FaultSpec.chaos`: crashes, hangs, stragglers, tuple loss)
  and the resilient evaluation policy, every BO campaign finishes its
  full step budget: zero aborted runs over 10 seeds.
* **Quality under chaos** — the mean best-found throughput across the
  chaos campaigns stays within 5% of the fault-free campaigns'.
* **Crash-safe resume** — a checkpointing campaign killed with
  ``SIGKILL`` mid-run and resumed from its checkpoint reproduces the
  uninterrupted run's observation history *byte-identically*
  (:func:`repro.core.checkpoint.canonical_history`).

Run as a script for the CI chaos-smoke check (``--smoke`` scales the
seed count and budgets down), or under pytest for the full acceptance
numbers:

    PYTHONPATH=src python benchmarks/bench_resilience.py --smoke
    PYTHONPATH=src python -m pytest benchmarks/bench_resilience.py -v
"""

from __future__ import annotations

import argparse
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.core.checkpoint import canonical_history, load_checkpoint
from repro.core.loop import TuningLoop
from repro.core.optimizer import BayesianOptimizer
from repro.core.resilience import ReplicatedObjective, RetryPolicy
from repro.core.seeding import derive_seed
from repro.experiments.presets import SYNTHETIC_BASE_CONFIG, default_cluster
from repro.storm.faults import FaultPlan, FaultSpec
from repro.storm.objective import StormObjective
from repro.storm.spaces import ParallelismCodec
from repro.topology_gen.suite import make_topology

#: Full-bench knobs (the acceptance configuration).
FAULT_RATE = 0.10
N_SEEDS = 10
STEPS = 20
QUALITY_MARGIN = 0.05
RESUME_STEPS = 16
VALIDATE_TOP_K = 3
VALIDATE_REPEATS = 3

_REPO_ROOT = Path(__file__).resolve().parent.parent


def _objective(plan_seed: int | None) -> StormObjective:
    """Analytic small-topology objective, optionally under chaos faults.

    Deterministic given (config, evaluation seed): no measurement
    noise, and fault decisions derive from the per-evaluation seed —
    which is what makes the kill-and-resume comparison byte-exact.
    """
    topology = make_topology("small")
    cluster = default_cluster()
    codec = ParallelismCodec(topology, cluster, SYNTHETIC_BASE_CONFIG)
    faults = (
        FaultPlan(FaultSpec.chaos(FAULT_RATE, seed=plan_seed))
        if plan_seed is not None
        else None
    )
    return StormObjective(
        topology, cluster, codec, fidelity="analytic", faults=faults
    )


def _policy() -> RetryPolicy:
    """The chaos policy: 2 retries, no real backoff (keeps CI fast)."""
    return RetryPolicy(
        max_retries=2, backoff_base_seconds=0.0, breaker_threshold=3
    )


def _select_winner(objective, result, seed: int) -> dict[str, object]:
    """Repeat-best validation: pick the winner among the top candidates.

    The paper re-runs each candidate winner on the cluster before
    declaring it best (§V-A) — a single straggler-degraded (or lucky)
    measurement window must not decide the campaign.  Each of the top
    ``VALIDATE_TOP_K`` observed configs is re-measured
    ``VALIDATE_REPEATS`` times with fresh seeds *on the campaign's own
    (possibly faulty) substrate*, and the best median wins.
    """
    ranked = sorted(
        (o for o in result.observations if not o.failed),
        key=lambda o: o.value,
        reverse=True,
    )
    candidates: list[dict] = []
    seen: set[tuple] = set()
    for obs in ranked:
        key = tuple(sorted(obs.config.items()))
        if key in seen:
            continue
        seen.add(key)
        candidates.append(obs.config)
        if len(candidates) == VALIDATE_TOP_K:
            break
    if not candidates:
        return result.best_config

    def median_tps(idx: int, config: dict) -> float:
        values = []
        for rep in range(VALIDATE_REPEATS):
            run = objective.measure(
                config, seed=derive_seed(seed, "validate", idx, rep)
            )
            if not run.failed:
                values.append(float(run.throughput_tps))
        if not values:
            return float("-inf")
        values.sort()
        return values[len(values) // 2]

    scored = [
        (median_tps(idx, config), idx, config)
        for idx, config in enumerate(candidates)
    ]
    return max(scored)[2]


def _run_campaign(seed: int, *, chaos: bool, steps: int) -> dict[str, object]:
    """One BO pass; returns best config/value, steps, resilience stats.

    ``best`` is the validated winner (:func:`_select_winner`)
    re-measured on a clean substrate — under chaos the *recorded* best
    value can be a degraded observation of a genuinely good
    configuration, so comparing raw observed maxima would conflate
    tuning quality with measurement luck.

    The chaos arm measures through :class:`ReplicatedObjective`
    (median of 3 windows): silent straggler/tuple-loss degradation
    is invisible to the retry layer, and a single degraded window
    early in a campaign reliably re-rolls the whole BO trajectory.
    """
    objective = _objective(seed if chaos else None)
    target = ReplicatedObjective(objective, replicates=3) if chaos else objective
    optimizer = BayesianOptimizer(objective.codec.space, seed=seed)
    loop = TuningLoop(
        target,
        optimizer,
        max_steps=steps,
        seed=derive_seed(seed, "bench", "loop"),
        resilience=_policy() if chaos else None,
    )
    result = loop.run()
    winner = _select_winner(objective, result, seed)
    clean = _objective(None)
    rerun = clean.measure(winner)
    return {
        "best": float(rerun.throughput_tps),
        "steps": result.n_steps,
        "resilience": result.metadata.get("resilience", {}),
    }


def run_chaos(
    n_seeds: int = N_SEEDS, steps: int = STEPS
) -> dict[str, float]:
    """Fault-free vs 10%-chaos campaigns over ``n_seeds`` seeds."""
    clean_best: list[float] = []
    chaos_best: list[float] = []
    aborted = 0
    retries = 0
    transients = 0
    for seed in range(n_seeds):
        clean_best.append(float(_run_campaign(seed, chaos=False, steps=steps)["best"]))
        try:
            report = _run_campaign(seed, chaos=True, steps=steps)
        except Exception as exc:  # noqa: BLE001 - an abort is the failure mode
            aborted += 1
            print(f"seed {seed}: ABORTED ({type(exc).__name__}: {exc})")
            continue
        assert report["steps"] == steps, (
            f"seed {seed}: chaos campaign stopped at {report['steps']}/{steps}"
        )
        chaos_best.append(float(report["best"]))
        stats = report["resilience"]
        retries += int(stats.get("retries", 0))
        transients += int(stats.get("transient_failures", 0))
    clean_mean = sum(clean_best) / len(clean_best)
    chaos_mean = sum(chaos_best) / max(1, len(chaos_best))
    shortfall = (clean_mean - chaos_mean) / clean_mean
    print(
        f"chaos bench ({n_seeds} seeds x {steps} steps, "
        f"{FAULT_RATE:.0%} fault rate): aborted {aborted}, "
        f"transient failures {transients}, retries {retries}, "
        f"fault-free mean best {clean_mean:.0f} tps, "
        f"chaos mean best {chaos_mean:.0f} tps "
        f"(shortfall {shortfall:+.2%})"
    )
    return {
        "aborted": float(aborted),
        "retries": float(retries),
        "transient_failures": float(transients),
        "clean_mean": clean_mean,
        "chaos_mean": chaos_mean,
        "shortfall": shortfall,
    }


# ----------------------------------------------------------------------
# Kill -9 and resume
# ----------------------------------------------------------------------
def _resume_loop(
    checkpoint_path: str | Path | None, *, window_seconds: float = 0.0
) -> TuningLoop:
    """The resume bench's campaign (chaos faults + checkpointing).

    ``window_seconds`` simulates the paper's measurement window so the
    child process reliably dies mid-run; the sleep never affects the
    observed values, which are a pure function of (config, seed).
    """
    objective = _objective(plan_seed=0)
    if window_seconds > 0:
        inner_measure = objective.measure

        class _Slow:
            codec = objective.codec

            @staticmethod
            def measure(params, *, seed=None):
                time.sleep(window_seconds)
                return inner_measure(params, seed=seed)

        target = _Slow()
    else:
        target = objective
    optimizer = BayesianOptimizer(objective.codec.space, seed=3)
    return TuningLoop(
        target,
        optimizer,
        max_steps=RESUME_STEPS,
        seed=11,
        resilience=_policy(),
        checkpoint_path=checkpoint_path,
    )


def run_kill_resume(workdir: str | Path | None = None) -> dict[str, object]:
    """SIGKILL a checkpointing campaign, resume, compare histories."""
    with tempfile.TemporaryDirectory(dir=workdir) as tmp:
        ckpt = Path(tmp) / "killed.jsonl"
        proc = subprocess.Popen(
            [sys.executable, str(Path(__file__).resolve()), "--child", str(ckpt)],
            cwd=_REPO_ROOT,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        try:
            deadline = time.time() + 120
            while time.time() < deadline:
                loaded = load_checkpoint(ckpt)
                if loaded is not None and loaded.completed >= 3:
                    break
                if proc.poll() is not None:
                    break
                time.sleep(0.05)
            proc.kill()
        finally:
            proc.wait()
        killed = load_checkpoint(ckpt)
        assert killed is not None, "child never wrote a checkpoint"
        assert 0 < killed.completed < RESUME_STEPS, (
            f"child finished {killed.completed} steps; the kill must land "
            f"mid-run for the bench to mean anything"
        )
        reference = _resume_loop(None).run()
        resumed = _resume_loop(ckpt).run()
    identical = canonical_history(resumed.observations) == canonical_history(
        reference.observations
    )
    print(
        f"kill/resume bench: killed at step {killed.completed}/{RESUME_STEPS}, "
        f"resumed {resumed.metadata.get('resumed_steps')} steps from "
        f"checkpoint, histories byte-identical: {identical}"
    )
    assert identical, "resumed history diverged from the uninterrupted run"
    return {"killed_at": killed.completed, "identical": identical}


# ----------------------------------------------------------------------
# pytest entry points (full acceptance numbers)
# ----------------------------------------------------------------------
def test_chaos_campaigns_finish_and_stay_close() -> None:
    """10% fault rate: zero aborts, mean best within 5% of fault-free."""
    report = run_chaos()
    assert report["aborted"] == 0, f"{report['aborted']:.0f} campaigns aborted"
    assert report["transient_failures"] > 0, "chaos never actually fired"
    assert report["retries"] > 0, "the retry path was never exercised"
    assert report["shortfall"] < QUALITY_MARGIN, (
        f"chaos campaigns lost {report['shortfall']:.2%} of best throughput "
        f"(allowed {QUALITY_MARGIN:.0%})"
    )


def test_sigkill_resume_is_byte_identical() -> None:
    report = run_kill_resume()
    assert report["identical"]


# ----------------------------------------------------------------------
# Script entry point (CI chaos smoke)
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="scaled-down chaos exercise for CI (seconds, not minutes)",
    )
    parser.add_argument(
        "--child",
        metavar="CKPT",
        default=None,
        help="internal: run the checkpointing child campaign",
    )
    from _harness import add_harness_args, emit, make_metric

    add_harness_args(parser)
    args = parser.parse_args(argv)
    if args.child:
        _resume_loop(args.child, window_seconds=0.1).run()
        return 0
    if args.smoke:
        report = run_chaos(n_seeds=3, steps=10)
        assert report["aborted"] == 0, "a smoke chaos campaign aborted"
        run_kill_resume()
        print("chaos smoke ok")
    else:
        report = run_chaos()
        assert report["aborted"] == 0
        assert report["shortfall"] < QUALITY_MARGIN
        run_kill_resume()
    emit(
        "bench_resilience",
        smoke=args.smoke,
        metrics={
            "aborted": make_metric(report["aborted"], higher_is_better=False),
            "shortfall": make_metric(
                report["shortfall"], higher_is_better=False
            ),
            "retries": make_metric(report["retries"], higher_is_better=False),
        },
        meta={
            "clean_mean": report["clean_mean"],
            "chaos_mean": report["chaos_mean"],
            "transient_failures": report["transient_failures"],
        },
        json_path=args.json,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
