"""Regenerate Figure 5: convergence speed (steps to best throughput).

Paper shape: the linear ascents converge in far fewer steps than the
Bayesian optimizer; informed variants converge faster than uninformed.
"""

import numpy as np

from repro.experiments.figures import figure5_convergence
from repro.experiments.report import render_figure


def test_fig5_convergence(benchmark, synthetic_study):
    data = benchmark.pedantic(
        figure5_convergence, args=(synthetic_study,), rounds=1, iterations=1
    )
    print()
    print(render_figure(data))

    by_strategy: dict[str, list[float]] = {}
    for row in data.rows:
        by_strategy.setdefault(str(row["Strategy"]), []).append(
            float(row["steps(avg)"])
        )
    # ibo (one float knob) needs fewer steps than bo (one knob per op).
    assert np.mean(by_strategy["ibo"]) < np.mean(by_strategy["bo"])
    for rows in by_strategy.values():
        assert all(1 <= v for v in rows)


if __name__ == "__main__":
    import sys

    from _harness import pytest_bench_main

    sys.exit(pytest_bench_main(__file__))
