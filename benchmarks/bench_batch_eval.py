"""Headline bench for the vectorized analytic engine: batch vs scalar.

Every baseline walk, BO candidate screen, and sensitivity sweep is a
pile of analytic evaluations of *different configurations of the same
deployment*.  :class:`~repro.storm.analytic_batch.AnalyticBatchModel`
evaluates an (N, D) configuration matrix in one NumPy pass and is
required to be **bit-compatible** with the scalar engine — same
throughputs, same failure reasons, same bottleneck labels.

Two claims are checked:

* **Speedup** — at N=256 configurations the batch path evaluates at
  least 10x more configs/sec than the scalar loop on the same model.
* **Equality** — the batched :class:`MeasuredRun` objects compare equal
  (dataclass ``==``, nested breakdowns included) to the scalar runs,
  and the max absolute throughput deviation is exactly 0.

Run as a script for the CI smoke check (``--smoke`` scales N down and
asserts equality plus a nonzero speedup; ``--json`` writes the report
for the artifact upload), or under pytest for the full acceptance
numbers:

    PYTHONPATH=src python benchmarks/bench_batch_eval.py --smoke
    PYTHONPATH=src python -m pytest benchmarks/bench_batch_eval.py -v
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from repro.storm.analytic import AnalyticPerformanceModel
from repro.storm.cluster import paper_cluster
from repro.storm.config import TopologyConfig
from repro.topology_gen.suite import make_topology

#: Full-bench knobs (the acceptance configuration).
N_CONFIGS = 256
REPEATS = 7
TOPOLOGY_SIZE = "medium"

#: Study-bench knobs: the full fig4/fig5 grid shape — sizes x workload
#: conditions, ``STUDY_LOOPS_PER_CELL`` concurrent strategy loops per
#: cell (the paper grid runs five), each asking ``STUDY_Q`` candidates
#: per round (the default campaign keeps one evaluation in flight per
#: loop).
STUDY_SIZES = ("small", "medium", "large")
STUDY_LOOPS_PER_CELL = 5
STUDY_ROUNDS = 40
STUDY_Q = 1
STUDY_REPEATS = 5


def random_configs(topology, n: int, seed: int = 0) -> list[TopologyConfig]:
    """A deterministic mix of feasible and infeasible configurations."""
    rng = np.random.default_rng(seed)
    names = list(topology)
    configs = []
    for _ in range(n):
        configs.append(
            TopologyConfig(
                parallelism_hints={
                    name: int(rng.integers(1, 33)) for name in names
                },
                batch_size=int(rng.integers(10, 50_001)),
                batch_parallelism=int(rng.integers(1, 65)),
                worker_threads=int(rng.integers(1, 17)),
                receiver_threads=int(rng.integers(1, 9)),
                ackers=int(rng.integers(0, 17)),
                num_workers=80,
            )
        )
    return configs


def run_speedup(
    n_configs: int = N_CONFIGS,
    repeats: int = REPEATS,
    size: str = TOPOLOGY_SIZE,
) -> dict[str, float]:
    """Batch vs scalar configs/sec on the same analytic model.

    The timed batch path is :meth:`AnalyticBatchModel.evaluate` — the
    array-valued pass the baselines, BO screener, and sensitivity sweeps
    consume.  Full :class:`MeasuredRun` materialization (``runs()``) is
    timed separately and checked for equality against the scalar runs,
    but per-row Python object construction is not what the fast path is
    for, so it does not gate the speedup claim.
    """
    topology = make_topology(size)
    model = AnalyticPerformanceModel(topology, paper_cluster())
    configs = random_configs(topology, n_configs)

    # Warm both paths (lazy batch-model build, parallelism tables).
    scalar_runs = [model.evaluate_noise_free(c) for c in configs]
    batch = model.batch_model.evaluate(configs)

    inf = float("inf")
    scalar_seconds = inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        scalar_runs = [model.evaluate_noise_free(c) for c in configs]
        scalar_seconds = min(scalar_seconds, time.perf_counter() - t0)

    batch_seconds = inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        batch = model.batch_model.evaluate(configs)
        batch_seconds = min(batch_seconds, time.perf_counter() - t0)

    materialize_seconds = inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        batch_runs = model.evaluate_noise_free_batch(configs)
        materialize_seconds = min(materialize_seconds, time.perf_counter() - t0)

    mismatches = sum(1 for s, b in zip(scalar_runs, batch_runs) if s != b)
    max_abs_dev = max(
        abs(s.throughput_tps - float(batch.throughput_tps[i]))
        for i, s in enumerate(scalar_runs)
    )
    n_failed = sum(1 for run in scalar_runs if run.failed)
    speedup = scalar_seconds / batch_seconds if batch_seconds > 0 else inf
    print(
        f"analytic N={n_configs} ({size} topology, {n_failed} infeasible): "
        f"scalar {n_configs / scalar_seconds:.0f} cfg/s  "
        f"batch {n_configs / batch_seconds:.0f} cfg/s  "
        f"(+runs() {n_configs / materialize_seconds:.0f} cfg/s)  "
        f"speedup {speedup:.1f}x  "
        f"mismatches {mismatches}  max|dev| {max_abs_dev:.3g}"
    )
    return {
        "n_configs": n_configs,
        "n_failed": n_failed,
        "scalar_seconds": scalar_seconds,
        "batch_seconds": batch_seconds,
        "materialize_seconds": materialize_seconds,
        "scalar_configs_per_s": n_configs / scalar_seconds,
        "batch_configs_per_s": n_configs / batch_seconds,
        "speedup": speedup,
        "materialize_speedup": scalar_seconds / materialize_seconds,
        "mismatched_runs": mismatches,
        "max_abs_throughput_deviation": max_abs_dev,
    }


def run_study_speedup(
    n_rounds: int = STUDY_ROUNDS,
    q: int = STUDY_Q,
    repeats: int = STUDY_REPEATS,
    sizes: tuple[str, ...] = STUDY_SIZES,
    loops_per_cell: int = STUDY_LOOPS_PER_CELL,
) -> dict[str, float]:
    """Whole-study wall clock: per-loop batch dispatches vs one packed pass.

    A campaign runs one tuning loop per (size, condition, strategy) —
    the paper grid is ``loops_per_cell`` strategy loops over each of
    the (size, condition) deployments — and every ask round contributes
    ``q`` candidates per loop.  The per-cell batch path (what a pool
    campaign's loops use) pays one :meth:`AnalyticBatchModel.evaluate`
    dispatch per *loop* per round; the packed path
    (:meth:`PackedBatchModel.evaluate_cells`) fuses the whole round —
    every topology, condition, and memory cap — into one masked tensor
    dispatch, the way the cross-cell broker does in a packed campaign.
    Both paths are timed on the array pass (no ``MeasuredRun``
    materialization), and one round is fully materialized and checked
    run-for-run for bit-compatibility.
    """
    from repro.topology_gen.suite import CONDITIONS
    from repro.storm.packed import PackedBatchModel, pack_cells

    cluster = paper_cluster()
    cells = [
        (make_topology(size, condition), cluster)
        for size in sizes
        for condition in CONDITIONS
    ]
    models = [AnalyticPerformanceModel(topo, clu) for topo, clu in cells]
    packed = PackedBatchModel(pack_cells(cells))
    #: loop -> its cell's pack index (strategy loops share the pack).
    loop_cell = [
        i for i in range(len(cells)) for _ in range(loops_per_cell)
    ]
    cell_indices = [i for i in loop_cell for _ in range(q)]

    rounds = [
        [
            random_configs(cells[i][0], q, seed=1009 * r + 31 * k)
            for k, i in enumerate(loop_cell)
        ]
        for r in range(n_rounds)
    ]
    flat_rounds = [[c for sub in per_loop for c in sub] for per_loop in rounds]

    # Warm both paths (lazy batch-model builds, parallelism tables).
    for i, cfgs in zip(loop_cell, rounds[0]):
        models[i].batch_model.evaluate(cfgs)
    packed.evaluate_cells(cell_indices, flat_rounds[0])

    inf = float("inf")
    percell_seconds = inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        for per_loop in rounds:
            for i, cfgs in zip(loop_cell, per_loop):
                models[i].batch_model.evaluate(cfgs)
        percell_seconds = min(percell_seconds, time.perf_counter() - t0)

    packed_seconds = inf
    for _ in range(repeats):
        t0 = time.perf_counter()
        for flat in flat_rounds:
            packed.evaluate_cells(cell_indices, flat)
        packed_seconds = min(packed_seconds, time.perf_counter() - t0)

    packed_runs = packed.evaluate_cells(cell_indices, flat_rounds[0]).runs()
    mismatches = 0
    max_abs_dev = 0.0
    offset = 0
    for i, cfgs in zip(loop_cell, rounds[0]):
        cell_runs = models[i].batch_model.evaluate(cfgs).runs()
        for j, run in enumerate(cell_runs):
            if run != packed_runs[offset + j]:
                mismatches += 1
            max_abs_dev = max(
                max_abs_dev,
                abs(run.throughput_tps - packed_runs[offset + j].throughput_tps),
            )
        offset += len(cfgs)

    n_loops = len(loop_cell)
    n_rows = n_loops * q * n_rounds
    speedup = percell_seconds / packed_seconds if packed_seconds > 0 else inf
    print(
        f"study grid {len(cells)} cells x {loops_per_cell} loops x "
        f"{n_rounds} rounds x {q} cfg ({'/'.join(sizes)}): "
        f"per-cell {n_rows / percell_seconds:.0f} rows/s  "
        f"packed{'-jit' if packed.jit_active else ''} "
        f"{n_rows / packed_seconds:.0f} rows/s  "
        f"speedup {speedup:.1f}x  mismatches {mismatches}  "
        f"max|dev| {max_abs_dev:.3g}"
    )
    return {
        "n_cells": len(cells),
        "n_loops": n_loops,
        "n_rounds": n_rounds,
        "q": q,
        "n_rows": n_rows,
        "percell_seconds": percell_seconds,
        "packed_seconds": packed_seconds,
        "percell_rows_per_s": n_rows / percell_seconds,
        "packed_rows_per_s": n_rows / packed_seconds,
        "study_speedup": speedup,
        "mismatched_runs": mismatches,
        "max_abs_throughput_deviation": max_abs_dev,
        "jit_active": float(packed.jit_active),
    }


# ----------------------------------------------------------------------
# pytest entry points (full acceptance numbers)
# ----------------------------------------------------------------------
def test_batch_speedup_and_equality() -> None:
    """N=256 batch pass: >= 10x configs/sec, bit-identical runs."""
    report = run_speedup()
    assert report["mismatched_runs"] == 0, "batch runs diverged from scalar"
    assert report["max_abs_throughput_deviation"] == 0.0
    assert report["speedup"] >= 10.0, (
        f"batch speedup {report['speedup']:.1f}x is below the 10x target"
    )


def test_study_speedup_and_equality() -> None:
    """Full study grid: >= 5x over per-cell batching, bit-identical runs."""
    report = run_study_speedup()
    assert report["mismatched_runs"] == 0, "packed runs diverged from batch"
    assert report["max_abs_throughput_deviation"] == 0.0
    assert report["study_speedup"] >= 5.0, (
        f"study speedup {report['study_speedup']:.1f}x is below the 5x target"
    )


# ----------------------------------------------------------------------
# Script entry point (CI smoke)
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    from _harness import add_harness_args, emit, make_metric

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke",
        action="store_true",
        help="scaled-down equality + speedup check for CI",
    )
    parser.add_argument(
        "--study",
        action="store_true",
        help="study-level bench: cross-cell packed pass vs per-cell batching",
    )
    add_harness_args(parser)
    args = parser.parse_args(argv)
    if args.study:
        if args.smoke:
            report = run_study_speedup(
                n_rounds=8,
                repeats=2,
                sizes=("small", "medium"),
                loops_per_cell=3,
            )
        else:
            report = run_study_speedup()
        assert report["mismatched_runs"] == 0, "packed runs diverged from batch"
        assert report["max_abs_throughput_deviation"] == 0.0
        if args.smoke:
            # Correctness plus a nonzero win; the 5x acceptance claim is
            # asserted by the full bench, not on shared CI runners.
            assert report["study_speedup"] > 1.0, (
                "packed pass slower than per-cell batching"
            )
            print("study smoke ok")
        emit(
            "bench_packed_study",
            smoke=args.smoke,
            metrics={
                "study_speedup": make_metric(
                    report["study_speedup"], higher_is_better=True, unit="x"
                ),
                "packed_rows_per_s": make_metric(
                    report["packed_rows_per_s"],
                    higher_is_better=True,
                    unit="rows/s",
                ),
                "percell_rows_per_s": make_metric(
                    report["percell_rows_per_s"],
                    higher_is_better=True,
                    unit="rows/s",
                ),
                "mismatched_runs": make_metric(
                    report["mismatched_runs"], higher_is_better=False
                ),
            },
            meta={
                k: report[k]
                for k in ("n_cells", "n_loops", "n_rounds", "q", "jit_active")
            },
            json_path=args.json,
        )
        return 0
    if args.smoke:
        report = run_speedup(n_configs=64, repeats=2, size="small")
        # The smoke check pins correctness (bit-identical runs) and a
        # nonzero win; the 10x perf claim is asserted by the full bench,
        # not on shared CI runners.
        assert report["mismatched_runs"] == 0, "batch runs diverged from scalar"
        assert report["max_abs_throughput_deviation"] == 0.0
        assert report["speedup"] > 1.0, "batch path slower than scalar loop"
        print("smoke ok")
    else:
        report = run_speedup()
    emit(
        "bench_batch_eval",
        smoke=args.smoke,
        metrics={
            "speedup": make_metric(
                report["speedup"], higher_is_better=True, unit="x"
            ),
            "batch_configs_per_s": make_metric(
                report["batch_configs_per_s"],
                higher_is_better=True,
                unit="cfg/s",
            ),
            "scalar_configs_per_s": make_metric(
                report["scalar_configs_per_s"],
                higher_is_better=True,
                unit="cfg/s",
            ),
            "mismatched_runs": make_metric(
                report["mismatched_runs"], higher_is_better=False
            ),
        },
        meta={k: report[k] for k in ("n_configs", "n_failed")},
        json_path=args.json,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
