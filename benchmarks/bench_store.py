"""Acceptance bench for the study-store persistence layer.

Three claims are checked (docs/STORE.md):

* **Backend parity** — the same seeded miniature synthetic study run
  once against the JSONL backend and once against the SQLite backend
  picks *identical winners*: per cell, every pass's best value, best
  config, and full canonical observation history match byte-for-byte.
* **Lossless migration** — ``migrate_store`` carries the finished
  JSONL study into SQLite with nothing dropped: checkpoint histories
  compare equal under :func:`repro.core.checkpoint.canonical_history`.
* **Crash-safe SQLite resume** — a store-backed campaign killed with
  ``SIGKILL`` mid-study and resumed *from the SQLite database*
  reproduces the uninterrupted run's history byte-identically.

Run as a script for the CI ``store-smoke`` job (``--keep-db`` preserves
the SQLite database as an inspectable artifact), or under pytest for
the acceptance numbers:

    PYTHONPATH=src python benchmarks/bench_store.py --smoke
    PYTHONPATH=src python -m pytest benchmarks/bench_store.py -v
"""

from __future__ import annotations

import argparse
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.core.checkpoint import canonical_history
from repro.core.loop import TuningLoop
from repro.core.optimizer import BayesianOptimizer
from repro.core.parameters import IntParameter, ParameterSpace
from repro.experiments.presets import Budget
from repro.experiments.runner import SyntheticStudy
from repro.store import SqliteStudyStore, migrate_store, open_store
from repro.topology_gen.suite import CONDITIONS

#: Full-bench study axes (the acceptance configuration).
STRATEGIES = ("pla", "bo")
RESUME_STEPS = 16

_REPO_ROOT = Path(__file__).resolve().parent.parent


def _budget(smoke: bool) -> Budget:
    if smoke:
        return Budget(
            steps=5, steps_extended=6, baseline_steps=8, passes=1,
            repeat_best=2,
        )
    return Budget(
        steps=12, steps_extended=16, baseline_steps=20, passes=2,
        repeat_best=3,
    )


def _study(budget: Budget, store_spec: str) -> SyntheticStudy:
    return SyntheticStudy(
        budget,
        conditions=CONDITIONS[:1],
        sizes=("small",),
        strategies=STRATEGIES,
        seed=0,
        checkpoint_dir=store_spec,
    )


# ----------------------------------------------------------------------
# Backend parity + migration
# ----------------------------------------------------------------------
def run_backend_parity(
    *, smoke: bool = True, workdir: str | Path | None = None,
    keep_db: str | Path | None = None,
) -> dict[str, object]:
    """Run the same study on both backends; compare every winner."""
    budget = _budget(smoke)
    with tempfile.TemporaryDirectory(dir=workdir) as tmp:
        jsonl_dir = Path(tmp) / "jsonl-store"
        sqlite_db = Path(tmp) / "store.db"
        by_backend = {}
        for spec in (jsonl_dir, sqlite_db):
            by_backend[spec.suffix or "jsonl"] = _study(
                budget, str(spec)
            ).run().results

        jsonl_results, sqlite_results = (
            by_backend["jsonl"], by_backend[".db"]
        )
        assert jsonl_results.keys() == sqlite_results.keys()
        winners_match = True
        for key, from_jsonl in jsonl_results.items():
            from_sqlite = sqlite_results[key]
            assert len(from_jsonl) == len(from_sqlite), key
            for a, b in zip(from_jsonl, from_sqlite):
                if (
                    a.best_value != b.best_value
                    or a.best_config != b.best_config
                    or canonical_history(a.observations)
                    != canonical_history(b.observations)
                ):
                    winners_match = False

        # Migrate the finished JSONL study into a fresh SQLite file and
        # check nothing was dropped on the way.
        migrated_db = Path(tmp) / "migrated.db"
        with open_store(jsonl_dir) as src, open_store(migrated_db) as dst:
            report = migrate_store(src, dst)
        with open_store(migrated_db) as dst:
            migration_ok = all(
                dst.has_results("synthetic", cell)
                for cell in dst.cells("synthetic")
            ) and bool(dst.cells("synthetic"))

        if keep_db is not None:
            shutil.copy(sqlite_db, keep_db)
    print(
        f"store parity bench: {len(jsonl_results)} cell(s) x "
        f"{budget.passes} pass(es), winners identical: {winners_match}, "
        f"migrated {report.observations} observation(s) losslessly: "
        f"{migration_ok}"
    )
    assert winners_match, "JSONL and SQLite backends picked different winners"
    assert migration_ok, "migration dropped finished cells"
    return {
        "cells": len(jsonl_results),
        "winners_match": winners_match,
        "migrated_observations": report.observations,
    }


# ----------------------------------------------------------------------
# SIGKILL mid-study, resume from SQLite
# ----------------------------------------------------------------------
def _kill_objective(params: dict) -> float:
    return float((int(params["x"]) * 7 + int(params["y"]) * 3) % 23)


def _kill_space() -> ParameterSpace:
    return ParameterSpace(
        [IntParameter("x", 1, 32), IntParameter("y", 1, 16)]
    )


def _resume_loop(
    db_path: str | Path | None, *, window_seconds: float = 0.0
) -> TuningLoop:
    """The kill bench's campaign, checkpointing into a SQLite store.

    ``window_seconds`` simulates a measurement window so the child
    reliably dies mid-study; it never affects the observed values,
    which are a pure function of the config.
    """
    if window_seconds > 0:
        def objective(params: dict) -> float:
            time.sleep(window_seconds)
            return _kill_objective(params)
    else:
        objective = _kill_objective
    slot = None
    if db_path is not None:
        store = open_store(Path(db_path))
        slot = store.checkpoint_slot("bench-store", "kill", "pass0")
    return TuningLoop(
        objective,
        BayesianOptimizer(_kill_space(), seed=3),
        max_steps=RESUME_STEPS,
        seed=11,
        checkpoint=slot,
    )


def run_kill_resume(workdir: str | Path | None = None) -> dict[str, object]:
    """SIGKILL a store-backed campaign, resume from the .db, compare."""
    with tempfile.TemporaryDirectory(dir=workdir) as tmp:
        db = Path(tmp) / "killed.db"
        proc = subprocess.Popen(
            [
                sys.executable, str(Path(__file__).resolve()),
                "--child", str(db),
            ],
            cwd=_REPO_ROOT,
            env={"PYTHONPATH": "src", "PATH": "/usr/bin:/bin"},
        )
        try:
            watcher = SqliteStudyStore(db)
            deadline = time.time() + 120
            while time.time() < deadline:
                loaded = watcher.load_checkpoint(
                    "bench-store", "kill", "pass0"
                )
                if loaded is not None and loaded.completed >= 3:
                    break
                if proc.poll() is not None:
                    break
                time.sleep(0.05)
            proc.kill()
        finally:
            proc.wait()
            watcher.close()
        killed = SqliteStudyStore(db).load_checkpoint(
            "bench-store", "kill", "pass0"
        )
        assert killed is not None, "child never wrote a checkpoint"
        assert 0 < killed.completed < RESUME_STEPS, (
            f"child finished {killed.completed} steps; the kill must land "
            f"mid-study for the bench to mean anything"
        )
        reference = _resume_loop(None).run()
        resumed = _resume_loop(db).run()
    identical = canonical_history(resumed.observations) == canonical_history(
        reference.observations
    )
    print(
        f"store kill/resume bench: killed at step "
        f"{killed.completed}/{RESUME_STEPS}, resumed "
        f"{resumed.metadata.get('resumed_steps')} steps from SQLite, "
        f"histories byte-identical: {identical}"
    )
    assert identical, "SQLite-resumed history diverged from uninterrupted run"
    return {"killed_at": killed.completed, "identical": identical}


# ----------------------------------------------------------------------
# pytest entry points (full acceptance numbers)
# ----------------------------------------------------------------------
def test_backends_pick_identical_winners() -> None:
    report = run_backend_parity(smoke=False)
    assert report["winners_match"]


def test_sigkill_resume_from_sqlite_is_byte_identical() -> None:
    report = run_kill_resume()
    assert report["identical"]


# ----------------------------------------------------------------------
# Script entry point (CI store smoke)
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--child",
        metavar="DB",
        default=None,
        help="internal: run the store-backed child campaign",
    )
    parser.add_argument(
        "--keep-db",
        metavar="PATH",
        default=None,
        help="copy the parity run's SQLite database here (CI artifact)",
    )
    from _harness import add_harness_args, emit, make_metric

    add_harness_args(parser)
    args = parser.parse_args(argv)
    if args.child:
        _resume_loop(args.child, window_seconds=0.1).run()
        return 0
    parity = run_backend_parity(smoke=args.smoke, keep_db=args.keep_db)
    resume = run_kill_resume()
    emit(
        "bench_store",
        smoke=args.smoke,
        metrics={
            "winners_match": make_metric(
                float(parity["winners_match"]), higher_is_better=True
            ),
            "resume_identical": make_metric(
                float(resume["identical"]), higher_is_better=True
            ),
            "migrated_observations": make_metric(
                float(parity["migrated_observations"]),
                higher_is_better=True,
            ),
        },
        meta={
            "cells": parity["cells"],
            "killed_at": resume["killed_at"],
        },
        json_path=args.json,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
