"""Ablation A2: GP kernel choice (Matérn-5/2 vs RBF vs Matérn-3/2, ARD).

Spearmint's default is the Matérn-5/2 kernel; this bench checks how
much the reproduction's results depend on that choice.
"""

import numpy as np

from repro.core.loop import TuningLoop
from repro.core.optimizer import BayesianOptimizer
from repro.experiments.presets import SYNTHETIC_BASE_CONFIG, default_cluster
from repro.experiments.report import render_table
from repro.storm.noise import GaussianNoise
from repro.storm.objective import StormObjective
from repro.storm.spaces import ParallelismCodec
from repro.topology_gen.suite import TopologyCondition, make_topology

STEPS = 25
SEEDS = (0, 1)


def run_kernel(kernel: str, ard: bool) -> float:
    topology = make_topology(
        "small", TopologyCondition(time_imbalance=1.0, contentious_share=0.0)
    )
    cluster = default_cluster()
    scores = []
    for seed in SEEDS:
        codec = ParallelismCodec(topology, cluster, SYNTHETIC_BASE_CONFIG)
        objective = StormObjective(
            topology, cluster, codec, noise=GaussianNoise(0.03), seed=seed
        )
        optimizer = BayesianOptimizer(
            codec.space, kernel=kernel, ard=ard, seed=seed
        )
        result = TuningLoop(objective, optimizer, max_steps=STEPS).run()
        scores.append(result.best_value)
    return float(np.mean(scores))


def test_ablation_kernel(benchmark):
    variants = [
        ("matern52", True),
        ("matern52", False),
        ("matern32", True),
        ("rbf", True),
    ]

    def run_all():
        return {
            (kernel, ard): run_kernel(kernel, ard) for kernel, ard in variants
        }

    scores = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        {
            "Kernel": kernel,
            "ARD": ard,
            "best tuples/s": round(v, 1),
        }
        for (kernel, ard), v in scores.items()
    ]
    print()
    print("== Ablation A2: GP kernels (small, 100% TiIm) ==")
    print(render_table(rows))
    values = list(scores.values())
    assert all(v > 0 for v in values)
    # The result should be robust to the kernel choice (within ~35%).
    assert min(values) > 0.65 * max(values)


if __name__ == "__main__":
    import sys

    from _harness import pytest_bench_main

    sys.exit(pytest_bench_main(__file__))
