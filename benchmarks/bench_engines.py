"""Microbenchmarks of the execution engines themselves.

These time single configuration evaluations — the unit of cost every
study multiplies by its step budget — for both the analytic model and
the discrete-event simulator, on the small and large topologies.
"""

import pytest

from repro.storm.analytic import AnalyticPerformanceModel
from repro.storm.cluster import paper_cluster
from repro.storm.config import TopologyConfig
from repro.storm.simulation import DiscreteEventSimulator
from repro.experiments.presets import SYNTHETIC_BASE_CONFIG
from repro.topology_gen.suite import make_topology


@pytest.mark.parametrize("size", ["small", "large"])
def test_analytic_evaluation_speed(benchmark, size):
    topology = make_topology(size)
    model = AnalyticPerformanceModel(topology, paper_cluster())
    config = SYNTHETIC_BASE_CONFIG.replace(
        parallelism_hints={n: 4 for n in topology}
    )
    run = benchmark(model.evaluate_noise_free, config)
    assert run.throughput_tps > 0


def test_des_evaluation_speed(benchmark):
    topology = make_topology("small")
    sim = DiscreteEventSimulator(
        topology, paper_cluster(), max_batches=20, warmup_batches=2
    )
    config = SYNTHETIC_BASE_CONFIG.replace(
        parallelism_hints={n: 4 for n in topology}
    )
    run = benchmark.pedantic(
        sim.evaluate_noise_free, args=(config,), rounds=3, iterations=1
    )
    assert run.throughput_tps > 0


def test_gp_suggest_speed_large_space(benchmark):
    """One ask/tell round at a realistic history size (Figure 7's cost)."""
    from repro.core.optimizer import BayesianOptimizer
    from repro.storm.spaces import ParallelismCodec

    topology = make_topology("large")
    codec = ParallelismCodec(topology, paper_cluster(), SYNTHETIC_BASE_CONFIG)
    optimizer = BayesianOptimizer(codec.space, seed=0, acq_candidates=512)
    rng_values = iter(range(10_000))
    for _ in range(30):
        config = optimizer.ask()
        optimizer.tell(config, float(next(rng_values)))

    def one_round():
        config = optimizer.ask()
        optimizer.tell(config, float(next(rng_values)))
        return config

    config = benchmark.pedantic(one_round, rounds=3, iterations=1)
    assert config
    # Where the time goes: full refits vs rank-1 updates, pool sizes.
    print(f"\ntelemetry: {optimizer.telemetry}")


if __name__ == "__main__":
    import sys

    from _harness import pytest_bench_main

    sys.exit(pytest_bench_main(__file__))
