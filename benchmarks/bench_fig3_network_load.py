"""Regenerate Figure 3: average network load in MB/s per worker.

The paper's point: no topology comes close to the 125 MB/s NIC limit,
so selectivity effects can be folded into time complexity (§IV-B3).
"""

from repro.experiments.figures import figure3_network_load
from repro.experiments.report import render_bars, render_figure


def test_fig3_network_load(benchmark):
    data = benchmark.pedantic(figure3_network_load, rounds=1, iterations=1)
    print()
    print(render_figure(data))
    print(
        render_bars(
            data.rows, value_key="MB/s per worker", label_keys=["Topology"]
        )
    )
    loads = {r["Topology"]: float(r["MB/s per worker"]) for r in data.rows}
    assert all(0 < v < 125.0 for v in loads.values())
    assert loads["sundog"] == max(loads.values())


if __name__ == "__main__":
    import sys

    from _harness import pytest_bench_main

    sys.exit(pytest_bench_main(__file__))
