"""Shared session fixtures for the benchmark suite.

The Figure 4–7 benchmarks all derive from one synthetic study and the
Figure 8 benchmarks from one Sundog study, exactly as the paper's
figures derive from one set of cluster runs.  The studies execute once
per session at the scaled default budget (set ``REPRO_FULL=1`` for the
paper-scale 60/180-step, 2-pass, 30-re-run budgets).
"""

from __future__ import annotations

import os

import pytest

from repro.experiments.presets import default_budget
from repro.experiments.runner import SundogStudy, SyntheticStudy


def _jobs() -> int:
    return int(os.environ.get("REPRO_JOBS", "1"))


@pytest.fixture(scope="session")
def synthetic_study() -> SyntheticStudy:
    study = SyntheticStudy(default_budget(), seed=0, n_jobs=_jobs())
    return study.run()


@pytest.fixture(scope="session")
def sundog_study() -> SundogStudy:
    study = SundogStudy(default_budget(), seed=0, n_jobs=_jobs())
    return study.run()
