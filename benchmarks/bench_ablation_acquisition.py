"""Ablation A1: acquisition function choice (EI vs PI vs UCB).

The paper uses Expected Improvement because it "provides a good
tradeoff between exploration and exploitation and it is the method
implemented in Spearmint" (§III-C).  This bench compares the three
standard acquisitions on the medium / time-imbalance tuning problem.
"""

import numpy as np

from repro.core.loop import TuningLoop
from repro.core.optimizer import BayesianOptimizer
from repro.experiments.presets import SYNTHETIC_BASE_CONFIG, default_cluster
from repro.experiments.report import render_table
from repro.storm.noise import GaussianNoise
from repro.storm.objective import StormObjective
from repro.storm.spaces import ParallelismCodec
from repro.topology_gen.suite import TopologyCondition, make_topology

STEPS = 25
SEEDS = (0, 1)


def run_acquisition(acquisition: str) -> float:
    topology = make_topology(
        "medium", TopologyCondition(time_imbalance=1.0, contentious_share=0.0)
    )
    cluster = default_cluster()
    scores = []
    for seed in SEEDS:
        codec = ParallelismCodec(topology, cluster, SYNTHETIC_BASE_CONFIG)
        objective = StormObjective(
            topology, cluster, codec, noise=GaussianNoise(0.03), seed=seed
        )
        optimizer = BayesianOptimizer(codec.space, acquisition=acquisition, seed=seed)
        result = TuningLoop(objective, optimizer, max_steps=STEPS).run()
        scores.append(result.best_value)
    return float(np.mean(scores))


def test_ablation_acquisition(benchmark):
    def run_all():
        return {acq: run_acquisition(acq) for acq in ("ei", "pi", "ucb")}

    scores = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        {"Acquisition": acq, "best tuples/s": round(v, 1)}
        for acq, v in scores.items()
    ]
    print()
    print("== Ablation A1: acquisition functions (medium, 100% TiIm) ==")
    print(render_table(rows))
    assert all(v > 0 for v in scores.values())
    # EI should be competitive with the alternatives (within 25%).
    assert scores["ei"] > 0.75 * max(scores.values())


if __name__ == "__main__":
    import sys

    from _harness import pytest_bench_main

    sys.exit(pytest_bench_main(__file__))
