"""Figure 7-style microbench of the BO suggest fast path.

The PR that introduced this file replaced the per-step from-scratch GP
refit with a rank-1 Cholesky update (full ML-II refit only every
``refit_every`` steps), vectorized the ARD marginal-likelihood
gradients, and batched candidate snapping and acquisition refinement.

This bench measures mean ``suggest_seconds`` — the quantity Figure 7
plots — at 150 observations on the large-topology space, against an
in-bench replica of the pre-PR path (scalar per-row grid snapping,
gradient-free L-BFGS-B refinement, per-hyperparameter ``dK`` matrices,
full refit on every step).  The fast path must be at least 5x faster,
and its incrementally-maintained posterior must agree with a
from-scratch refactorization to 1e-8.

Run as a script for the CI perf-report job (``--smoke`` scales the loop
down; ``--json`` writes the shared bench-result schema,
docs/OBSERVABILITY.md §perf-compare)::

    PYTHONPATH=src python benchmarks/bench_suggest_fastpath.py --smoke

The script path also measures the model-quality diagnostics tier's
cost: one no-session tuning loop with diagnostics off (the default)
vs the same loop with the tracker forced on — the forced-on delta
bounds what an obs session adds, and the default path must stay within
the <2% no-session overhead budget.
"""

from __future__ import annotations

import time

import numpy as np
import pytest
from scipy import linalg as sla
from scipy import optimize as sopt

from repro.core.gp import GaussianProcess
from repro.core.loop import TuningLoop
from repro.core.optimizer import BayesianOptimizer
from repro.experiments.presets import SYNTHETIC_BASE_CONFIG
from repro.storm.cluster import paper_cluster
from repro.storm.objective import StormObjective
from repro.storm.spaces import ParallelismCodec
from repro.topology_gen.suite import make_topology

N_OBSERVATIONS = 150
MEASURE_ROUNDS = 5


def _objective_value(x: np.ndarray) -> float:
    """Smooth deterministic stand-in objective on the unit cube."""
    return 1e6 * float(np.exp(-np.mean((x - 0.6) ** 2) * 8.0))


@pytest.fixture(scope="module")
def warmed_optimizer():
    """A BO run advanced to ``N_OBSERVATIONS`` on the large space."""
    topology = make_topology("large")
    codec = ParallelismCodec(topology, paper_cluster(), SYNTHETIC_BASE_CONFIG)
    optimizer = BayesianOptimizer(codec.space, seed=0, acq_candidates=512)
    while optimizer.n_observed < N_OBSERVATIONS:
        config = optimizer.ask()
        optimizer.tell(config, _objective_value(optimizer.space.encode(config)))
    return optimizer


# ----------------------------------------------------------------------
# Pre-PR replica: the seed revision's suggest path, reimplemented here
# so the comparison survives in-tree after the fast path replaced it.
# ----------------------------------------------------------------------
def _legacy_snap_rows(space, rows: np.ndarray) -> np.ndarray:
    return np.array([space.round_trip(row) for row in rows])


def _legacy_refine(acq, gp, space, x0, best_y):
    def neg_acq(x: np.ndarray) -> float:
        return -float(acq.score(gp, x[None, :], best_y)[0])

    result = sopt.minimize(
        neg_acq,
        x0,
        method="L-BFGS-B",
        bounds=[(0.0, 1.0)] * space.dim,
        options={"maxiter": 30},
    )
    snapped = space.round_trip(np.clip(result.x, 0.0, 1.0))
    return snapped, float(acq.score(gp, snapped[None, :], best_y)[0])


def _legacy_propose(acq, gp, space, best_x, best_y, rng):
    """The seed revision's ``AcquisitionOptimizer.propose``."""
    n = acq.n_candidates
    # Re-snapping the LHS row-by-row reproduces the seed revision's
    # scalar round-trip cost without duplicating its sampler.
    candidates = [_legacy_snap_rows(space, space.latin_hypercube(n, rng))]
    diag = np.linspace(0.0, 1.0, 33)[:, None] * np.ones((1, space.dim))
    candidates.append(_legacy_snap_rows(space, diag))
    local = np.clip(
        best_x[None, :] + rng.normal(0.0, 0.05, size=(max(8, n // 8), space.dim)),
        0.0,
        1.0,
    )
    candidates.append(_legacy_snap_rows(space, local))
    moves = []
    for d in range(space.dim):
        step = 1.0 / getattr(space.parameters[d], "n_values", 32)
        for sign in (-1.0, 1.0):
            x = best_x.copy()
            x[d] = min(1.0, max(0.0, x[d] + sign * step))
            moves.append(space.round_trip(x))
    for shift in (-0.1, -0.05, 0.05, 0.1):
        moves.append(space.round_trip(np.clip(best_x + shift, 0.0, 1.0)))
    candidates.append(np.array(moves))
    candidates = np.vstack(candidates)
    scores = acq.score(gp, candidates, best_y)
    order = np.argsort(scores)[::-1]
    best_point = candidates[int(order[0])]
    best_score = float(scores[int(order[0])])
    if any(not p.is_discrete for p in space.parameters):
        for idx in order[: acq.n_refine]:
            refined, value = _legacy_refine(
                acq, gp, space, candidates[int(idx)], best_y
            )
            if value > best_score:
                best_score = value
                best_point = refined
    return best_point


def _legacy_grad_dot(kernel, X, W):
    """Per-hyperparameter dK matrices materialized in a Python loop."""
    ls = kernel.lengthscales
    A = X / ls
    sq = (
        np.sum(A**2, axis=1)[:, None]
        + np.sum(A**2, axis=1)[None, :]
        - 2.0 * A @ A.T
    )
    sq = np.maximum(sq, 0.0)
    K = kernel.variance * kernel._shape(sq)
    radial = kernel.variance * kernel._radial_factor(sq)
    grads = [K.copy()]
    if kernel.ard:
        for d in range(kernel.dim):
            diff_sq = (X[:, d : d + 1] - X[:, d : d + 1].T) ** 2 / ls[d] ** 2
            grads.append(radial * diff_sq)
    else:
        grads.append(radial * sq)
    return np.array([float(np.sum(W * g)) for g in grads])


def test_suggest_fastpath_speedup(warmed_optimizer):
    """Mean suggest_seconds at 150 obs: fast path >= 5x the pre-PR path."""
    optimizer = warmed_optimizer
    space = optimizer.space
    rng = np.random.default_rng(7)

    y = np.asarray(optimizer.y)
    best_idx = int(np.argmax(y))
    best_x, best_y = optimizer.X[best_idx], float(y[best_idx])

    legacy_times = []
    for _ in range(MEASURE_ROUNDS):
        t0 = time.perf_counter()
        _legacy_propose(optimizer.acq, optimizer.gp, space, best_x, best_y, rng)
        legacy_times.append(time.perf_counter() - t0)

    fast_times = []
    for _ in range(MEASURE_ROUNDS):
        t0 = time.perf_counter()
        config = optimizer.ask()
        fast_times.append(time.perf_counter() - t0)
        optimizer.tell(config, _objective_value(space.encode(config)))

    legacy_mean = float(np.mean(legacy_times))
    fast_mean = float(np.mean(fast_times))
    print(
        f"\nsuggest_seconds at n={N_OBSERVATIONS} (dim={space.dim}): "
        f"legacy {legacy_mean:.4f}s  fast {fast_mean:.4f}s  "
        f"speedup {legacy_mean / fast_mean:.1f}x"
    )
    print(f"telemetry: {optimizer.telemetry}")
    assert optimizer.gp.n_incremental_updates > 0
    assert legacy_mean >= 5.0 * fast_mean, (
        f"fast path {fast_mean:.4f}s is not 5x faster than "
        f"legacy {legacy_mean:.4f}s"
    )


def test_full_refit_cost_report(warmed_optimizer):
    """Report the per-step GP maintenance cost the schedule amortizes."""
    optimizer = warmed_optimizer
    X = np.vstack(optimizer.X)
    z = (np.asarray(optimizer.y) - optimizer.gp._y_mean) / optimizer.gp._y_std

    legacy_gp = GaussianProcess(
        optimizer.gp.kernel.clone(), normalize_y=False
    )
    legacy_gp._log_noise = optimizer.gp._log_noise
    legacy_gp.kernel.grad_dot = lambda Xg, W: _legacy_grad_dot(
        legacy_gp.kernel, Xg, W
    )
    t0 = time.perf_counter()
    legacy_gp.fit(X, z, optimize_hyperparams=True, n_restarts=2)
    legacy_refit = time.perf_counter() - t0

    gp = optimizer.gp
    post = gp._posterior
    keep, x_new = post.X[:-1], post.X[-1]
    z_keep, z_new = post.y[:-1], float(post.y[-1])
    gp._refresh_posterior(keep, z_keep)
    t0 = time.perf_counter()
    gp.update(x_new, z_new * gp._y_std + gp._y_mean)
    update_seconds = time.perf_counter() - t0
    print(
        f"\nGP maintenance at n={X.shape[0]}: legacy full ML-II refit "
        f"{legacy_refit:.4f}s  rank-1 update {update_seconds:.5f}s"
    )
    assert update_seconds < legacy_refit


def test_incremental_posterior_matches_full_refit(warmed_optimizer):
    """Rank-1-maintained posterior == from-scratch refactorization (1e-8)."""
    optimizer = warmed_optimizer
    gp = optimizer.gp
    assert gp.n_incremental_updates > 0

    reference = GaussianProcess(gp.kernel.clone(), normalize_y=False)
    reference._log_noise = gp._log_noise
    reference._y_mean, reference._y_std = gp._y_mean, gp._y_std
    z = (np.asarray(optimizer.y) - gp._y_mean) / gp._y_std
    reference._refresh_posterior(np.vstack(optimizer.X), z)

    probes = optimizer.space.latin_hypercube(64, np.random.default_rng(3))
    mean_fast, std_fast = gp.predict(probes)
    mean_ref, std_ref = reference.predict(probes)
    np.testing.assert_allclose(mean_fast, mean_ref, atol=1e-8, rtol=0)
    np.testing.assert_allclose(std_fast, std_ref, atol=1e-8, rtol=0)

    # The maintained Cholesky factor itself matches (it is unique).
    K = gp.kernel(np.vstack(optimizer.X))
    Kn = K + (gp.noise + 1e-8) * np.eye(K.shape[0])
    np.testing.assert_allclose(
        gp._posterior.L, sla.cholesky(Kn, lower=True), atol=1e-8, rtol=0
    )


# ----------------------------------------------------------------------
# Script entry: suggest-path timing + diagnostics overhead (CI schema)
# ----------------------------------------------------------------------
def _timed_loop(
    *, steps: int, topology_name: str, diagnostics: bool | None
) -> tuple[float, float]:
    """One no-session tuning run; (wall seconds, mean suggest seconds).

    A fresh objective per run keeps the memo cache from subsidizing the
    second measurement.
    """
    topology = make_topology(topology_name)
    cluster = paper_cluster()
    codec = ParallelismCodec(topology, cluster, SYNTHETIC_BASE_CONFIG)
    objective = StormObjective(topology, cluster, codec)
    optimizer = BayesianOptimizer(codec.space, seed=11, acq_candidates=256)
    loop = TuningLoop(
        objective, optimizer, max_steps=steps, seed=11, diagnostics=diagnostics
    )
    t0 = time.perf_counter()
    result = loop.run()
    wall = time.perf_counter() - t0
    suggest = float(
        np.mean([obs.suggest_seconds for obs in result.observations])
    )
    return wall, suggest


def _min_wall(
    rounds: int, **kwargs: object
) -> tuple[float, float]:
    """Min wall (and its mean suggest) over ``rounds`` identical runs."""
    best = (float("inf"), float("inf"))
    for _ in range(rounds):
        best = min(best, _timed_loop(**kwargs))
    return best


def main(argv: list[str] | None = None) -> int:
    import argparse

    from _harness import add_harness_args, emit, make_metric

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    add_harness_args(parser)
    args = parser.parse_args(argv)
    steps = 20 if args.smoke else 60
    rounds = 3 if args.smoke else 2
    topology_name = "small" if args.smoke else "medium"

    # Warm both code paths (imports, lazy caches, allocator state)
    # before the measured passes.
    _timed_loop(steps=6, topology_name="small", diagnostics=True)

    # The budgeted quantity: the shipped no-session default
    # (diagnostics=None, tracker never constructed) vs the tracker
    # explicitly disabled — i.e. what the diagnostics tier costs a run
    # that never asked for it.  Min-of-N walls of seed-identical runs
    # keep scheduler noise out of a percent-level comparison.
    wall_off, suggest_off = _min_wall(
        rounds, steps=steps, topology_name=topology_name, diagnostics=False
    )
    wall_default, _ = _min_wall(
        rounds, steps=steps, topology_name=topology_name, diagnostics=None
    )
    # Informational: the full tracker forced on (what an obs session
    # pays for residuals, coverage, and the noise-free regret curve).
    wall_on, _ = _min_wall(
        rounds, steps=steps, topology_name=topology_name, diagnostics=True
    )
    no_session_pct = (
        100.0 * (wall_default - wall_off) / wall_off if wall_off else 0.0
    )
    forced_on_pct = (
        100.0 * (wall_on - wall_off) / wall_off if wall_off else 0.0
    )
    print(
        f"loop ({steps} steps, {topology_name}): diagnostics disabled "
        f"{wall_off:.3f}s, no-session default {wall_default:.3f}s "
        f"({no_session_pct:+.2f}%), forced on {wall_on:.3f}s "
        f"({forced_on_pct:+.2f}%); mean suggest {suggest_off * 1e3:.2f} ms"
    )
    emit(
        "bench_suggest_fastpath",
        smoke=args.smoke,
        metrics={
            "suggest_seconds_mean": make_metric(
                suggest_off, higher_is_better=False, unit="s"
            ),
            "loop_wall_seconds": make_metric(
                wall_off, higher_is_better=False, unit="s"
            ),
            "diag_no_session_pct": make_metric(
                no_session_pct, higher_is_better=False, unit="%"
            ),
            "diag_forced_on_pct": make_metric(
                forced_on_pct, higher_is_better=False, unit="%"
            ),
        },
        meta={"steps": steps, "rounds": rounds, "topology": topology_name},
        json_path=args.json,
    )
    # The no-session default must stay within the <2% overhead budget;
    # the forced-on tracker is allowed to cost more (reported above).
    assert no_session_pct < 2.0, (
        f"no-session diagnostics overhead {no_session_pct:.2f}% "
        "breaches the 2% budget"
    )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
