"""Regenerate Figure 8: Sundog throughput and convergence.

Paper anchors (§V-D): hint-only tuning plateaus (pla 611k, bo 660k,
bo180 699k tuples/s — differences statistically insignificant); adding
batch size + batch parallelism reaches 1.68M (2.8x over pla hints-only);
fixing hints and tuning bs+bp+cc reaches a statistically
indistinguishable 1.63M.
"""

from repro.experiments.figures import (
    figure8a_sundog_throughput,
    figure8b_sundog_convergence,
    speedup_over_pla,
)
from repro.experiments.report import render_figure


def test_fig8a_throughput(benchmark, sundog_study):
    data = benchmark.pedantic(
        figure8a_sundog_throughput, args=(sundog_study,), rounds=1, iterations=1
    )
    print()
    print(render_figure(data))

    def mean(strategy, params):
        for row in data.rows:
            if row["Strategy"] == strategy and row["Params"] == params:
                return float(row["mil tuples/s"])
        raise KeyError((strategy, params))

    # Hint-only tuning plateaus in a narrow band for all strategies.
    hints_only = [mean(s, "h") for s in ("pla", "bo", "bo180")]
    assert max(hints_only) < 1.8 * min(hints_only)
    # Batch tuning is the step change.
    assert mean("bo180", "h bs bp") > 1.7 * mean("pla", "h")
    # Tuning bs+bp+cc with fixed hints lands in the same regime as the
    # full space (paper: 1.63M vs 1.68M).
    assert mean("bo180", "bs bp cc") > 1.5 * mean("pla", "h")

    speedup = speedup_over_pla(sundog_study)
    print(f"\nspeedup over pla hints-only: {speedup:.2f}x (paper: 2.8x)")
    assert speedup > 1.7


def test_fig8b_convergence(benchmark, sundog_study):
    data = benchmark.pedantic(
        figure8b_sundog_convergence, args=(sundog_study,), rounds=1, iterations=1
    )
    print()
    print(render_figure(data))
    assert "pla.h" in data.series
    for _, ys in data.series.values():
        assert ys == sorted(ys)  # best-so-far traces are monotone
    # The batch-tuning traces end above the hint-only traces.
    assert data.series["bo180.h bs bp"][1][-1] > data.series["pla.h"][1][-1]


if __name__ == "__main__":
    import sys

    from _harness import pytest_bench_main

    sys.exit(pytest_bench_main(__file__))
