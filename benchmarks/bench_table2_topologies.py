"""Regenerate Table II: generated synthetic topology statistics.

Paper values: small 10/17/4/0.40/3/3/1.70, medium 50/88/5/0.08/17/17/1.76,
large 100/170/10/0.04/29/27/1.65.
"""

from repro.experiments.figures import table2_topologies
from repro.experiments.report import render_figure


def test_table2_topologies(benchmark):
    data = benchmark.pedantic(table2_topologies, rounds=1, iterations=1)
    print()
    print(render_figure(data))
    rows = {r["Name"]: r for r in data.rows}
    assert rows["small"]["E"] == 17
    assert rows["medium"]["E"] == 88
    assert 160 <= rows["large"]["E"] <= 175


if __name__ == "__main__":
    import sys

    from _harness import pytest_bench_main

    sys.exit(pytest_bench_main(__file__))
