"""Acceptance bench for continuous tuning under workload drift.

Two claims are checked (docs/DRIFT.md):

* **Recovery speed** — for every drift profile (diurnal load cycle,
  flash crowd, skew migration), the continuous mode — conservative
  re-tune from the incumbent with down-weighted stale observations —
  gets back within 5% of the post-drift reference optimum in at most
  half the observations a cold restart needs
  (:func:`repro.experiments.drift.compare_modes`).
* **Crash-safe resume across drift** — a continuous campaign killed
  with ``SIGKILL`` mid-epoch *after* a drift detection and resumed
  from its checkpoints reproduces the uninterrupted run's observation
  history byte-identically
  (:func:`repro.core.checkpoint.canonical_history`), detections
  included.

Run as a script for the CI drift-smoke check (``--smoke`` scales the
epoch budgets down and skips the recovery-ratio criterion), or under
pytest for the full acceptance numbers:

    PYTHONPATH=src python benchmarks/bench_drift.py --smoke
    PYTHONPATH=src python -m pytest benchmarks/bench_drift.py -v
"""

from __future__ import annotations

import argparse
import json
import os
import subprocess
import sys
import tempfile
import time
from pathlib import Path

from repro.core.checkpoint import canonical_history, load_checkpoint
from repro.core.continuous import SIDECAR_NAME
from repro.experiments.drift import (
    build_drift_loop,
    compare_modes,
    drift_scenarios,
    run_drift_scenario,
)

#: Full-bench knobs (the acceptance configuration).
BENCH_SEED = 1
RECOVERY_RATIO_MAX = 0.5

#: Kill-resume campaign: flash profile scaled so the drift detection
#: (epoch 3 of 5) leaves a post-detection epoch for the kill to land in.
KILL_PROFILE = "flash"
KILL_EPOCHS = 5
KILL_STEPS = 4
KILL_INITIAL = 6
#: Per-measurement sleep in the child process so the SIGKILL reliably
#: lands mid-epoch rather than after completion.
CHILD_WINDOW_SECONDS = 0.25
KILL_DEADLINE_SECONDS = 180.0

_REPO_ROOT = Path(__file__).resolve().parent.parent


# ----------------------------------------------------------------------
# Claim 1: recovery speed, continuous vs. cold restart
# ----------------------------------------------------------------------
def run_recovery(*, smoke: bool = False, seed: int = BENCH_SEED) -> list[dict]:
    """Compare both modes on every profile; one summary dict each."""
    rows = []
    for name, scenario in drift_scenarios().items():
        if smoke:
            scenario = scenario.scaled(
                epochs=4, steps_per_epoch=4, initial_steps=6
            )
        summary = compare_modes(scenario, seed)
        rows.append(summary)
        cont = summary["continuous"]
        cold = summary["cold"]
        ratio = summary["recovery_ratio"]
        print(
            f"  {name}: continuous {_fmt(cont)} | cold {_fmt(cold)} | "
            f"ratio {'n/a' if ratio is None else f'{ratio:.3f}'}"
        )
    return rows


def _fmt(entry: dict) -> str:
    if not entry["detected"]:
        return "no detection"
    count = entry["recovery_observations"]
    return f"{count} obs" if entry["recovered"] else f">{count} obs (censored)"


def recovery_passes(rows: list[dict]) -> bool:
    """Both modes detect and continuous needs <= half the observations."""
    for row in rows:
        if not (row["continuous"]["detected"] and row["cold"]["detected"]):
            return False
        ratio = row["recovery_ratio"]
        if ratio is None or ratio > RECOVERY_RATIO_MAX:
            return False
    return True


# ----------------------------------------------------------------------
# Claim 2: SIGKILL mid-epoch across a drift boundary
# ----------------------------------------------------------------------
class _SlowObjective:
    """Delegating wrapper that stretches each measurement so the parent
    process has a comfortable window to SIGKILL the campaign mid-epoch.
    The sleep changes wall-clock only — seeds and values are untouched,
    so the killed-and-resumed history must match the uninterrupted one.
    """

    def __init__(self, inner, window_seconds: float) -> None:
        self._inner = inner
        self._window = float(window_seconds)

    def __getattr__(self, name: str):
        return getattr(self._inner, name)

    def measure(self, config, *, seed=None):
        time.sleep(self._window)
        return self._inner.measure(config, seed=seed)


def _kill_scenario():
    return drift_scenarios()[KILL_PROFILE].scaled(
        epochs=KILL_EPOCHS,
        steps_per_epoch=KILL_STEPS,
        initial_steps=KILL_INITIAL,
    )


def _run_child(checkpoint_dir: str) -> int:
    """Child entry: the to-be-killed campaign, slowed per measurement."""
    loop = build_drift_loop(
        _kill_scenario(),
        "continuous",
        BENCH_SEED,
        checkpoint_dir=checkpoint_dir,
        wrap_objective=lambda obj: _SlowObjective(obj, CHILD_WINDOW_SECONDS),
    )
    loop.run()
    return 0


def _ready_to_kill(checkpoint_dir: Path) -> bool:
    """True once a drift epoch completed and the next epoch is underway:
    the SIGKILL then lands mid-epoch on the far side of the detection."""
    sidecar = checkpoint_dir / SIDECAR_NAME
    if not sidecar.is_file():
        return False
    try:
        data = json.loads(sidecar.read_text())
    except (OSError, json.JSONDecodeError):
        return False
    if not data.get("detections"):
        return False
    completed = int(data.get("epochs_completed", 0))
    if completed >= KILL_EPOCHS:
        return False
    partial = load_checkpoint(
        checkpoint_dir / f"epoch-{completed:04d}.jsonl"
    )
    return partial is not None and partial.completed >= 1


def run_kill_resume(workdir: str | None = None) -> dict:
    """SIGKILL a continuous campaign mid-epoch after its drift
    detection, resume it, and compare against an uninterrupted run."""
    with tempfile.TemporaryDirectory(dir=workdir) as tmp:
        checkpoint_dir = Path(tmp) / "kill"
        proc = subprocess.Popen(
            [
                sys.executable,
                str(Path(__file__).resolve()),
                "--child",
                str(checkpoint_dir),
            ],
            cwd=_REPO_ROOT,
            env={"PYTHONPATH": "src", "PATH": os.environ.get("PATH", "/usr/bin:/bin")},
        )
        killed_mid_run = False
        try:
            deadline = time.time() + KILL_DEADLINE_SECONDS
            while time.time() < deadline:
                if _ready_to_kill(checkpoint_dir):
                    killed_mid_run = True
                    break
                if proc.poll() is not None:
                    raise RuntimeError(
                        "child campaign finished before the kill point; "
                        "raise CHILD_WINDOW_SECONDS"
                    )
                time.sleep(0.05)
        finally:
            proc.kill()
            proc.wait()
        if not killed_mid_run:
            raise RuntimeError("timed out waiting for the kill point")

        scenario = _kill_scenario()
        resumed = run_drift_scenario(
            scenario, "continuous", BENCH_SEED, checkpoint_dir=checkpoint_dir
        )
        reference = run_drift_scenario(scenario, "continuous", BENCH_SEED)
        identical = canonical_history(resumed.observations) == canonical_history(
            reference.observations
        )
        return {
            "identical": identical,
            "detections_resumed": list(resumed.detections),
            "detections_reference": list(reference.detections),
            "resumed_epochs": resumed.metadata.get("resumed_epochs"),
            "observations": len(reference.observations),
        }


# ----------------------------------------------------------------------
# Pytest entries (full acceptance numbers)
# ----------------------------------------------------------------------
def test_continuous_recovery_beats_cold_restart():
    rows = run_recovery()
    assert recovery_passes(rows), [
        (r["profile"], r["recovery_ratio"]) for r in rows
    ]


def test_drift_sigkill_resume_is_byte_identical():
    outcome = run_kill_resume()
    assert outcome["detections_resumed"] == outcome["detections_reference"]
    assert outcome["identical"]


# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--smoke", action="store_true", help="scaled-down budgets")
    parser.add_argument("--json", metavar="PATH", help="write a JSON report")
    parser.add_argument("--child", metavar="CKPT_DIR", help=argparse.SUPPRESS)
    args = parser.parse_args(argv)
    if args.child:
        return _run_child(args.child)

    print(f"== drift recovery ({'smoke' if args.smoke else 'full'} scale) ==")
    rows = run_recovery(smoke=args.smoke)
    ok = True
    if args.smoke:
        print("(smoke scale: recovery-ratio criterion not evaluated)")
    else:
        ok = recovery_passes(rows)
        print(
            f"recovery criterion (ratio <= {RECOVERY_RATIO_MAX}): "
            f"{'PASS' if ok else 'FAIL'}"
        )

    print("== SIGKILL mid-epoch across a drift boundary ==")
    outcome = run_kill_resume()
    print(
        f"  resumed epochs: {outcome['resumed_epochs']}, "
        f"detections: {outcome['detections_resumed']}, "
        f"byte-identical: {outcome['identical']}"
    )
    ok = ok and outcome["identical"]

    from _harness import emit, make_metric

    ratios = [
        row["recovery_ratio"] for row in rows if row["recovery_ratio"] is not None
    ]
    metrics = {
        "recovery_ratio_worst": make_metric(
            max(ratios) if ratios else RECOVERY_RATIO_MAX,
            higher_is_better=False,
        ),
        "profiles_recovered": make_metric(
            sum(
                1
                for row in rows
                if row["continuous"]["detected"] and row["continuous"]["recovered"]
            ),
            higher_is_better=True,
        ),
        "kill_resume_identical": make_metric(
            1.0 if outcome["identical"] else 0.0, higher_is_better=True
        ),
        "passed": make_metric(1.0 if ok else 0.0, higher_is_better=True),
    }
    emit(
        "bench_drift",
        smoke=args.smoke,
        metrics=metrics,
        meta={
            "seed": BENCH_SEED,
            "recovery_ratio_max": RECOVERY_RATIO_MAX,
            "profiles": rows,
            "kill_resume": outcome,
        },
        json_path=args.json,
    )
    return 0 if ok else 1


if __name__ == "__main__":
    sys.exit(main())
