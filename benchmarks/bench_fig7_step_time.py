"""Regenerate Figure 7: optimizer wall time per step (scalability).

Paper shape: pla/ipla choose the next configuration in well under a
second; the Bayesian optimizer's per-step cost grows (sublinearly) with
the number of parameters, i.e. with topology size.
"""

import numpy as np

from repro.experiments.figures import figure7_step_time
from repro.experiments.report import render_figure


def test_fig7_step_time(benchmark, synthetic_study):
    data = benchmark.pedantic(
        figure7_step_time, args=(synthetic_study,), rounds=1, iterations=1
    )
    print()
    print(render_figure(data))

    def avg(strategy, size):
        values = [
            float(r["seconds(avg)"])
            for r in data.rows
            if r["Strategy"] == strategy and r["Size"] == size
        ]
        return float(np.mean(values))

    # Baselines are effectively free.
    for size in ("small", "medium", "large"):
        assert avg("pla", size) < 0.05
        assert avg("ipla", size) < 0.05
    # The Bayesian optimizer pays for the GP, increasingly so with the
    # number of parallelism hints to optimize.
    assert avg("bo", "large") > avg("bo", "small")
    assert avg("bo", "small") > avg("pla", "small")


if __name__ == "__main__":
    import sys

    from _harness import pytest_bench_main

    sys.exit(pytest_bench_main(__file__))
