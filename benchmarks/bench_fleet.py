"""Kill-fuzzer acceptance bench for crash-safe fleet campaigns.

The claim under test (docs/ROBUSTNESS.md): a campaign executed by N
independent ``repro-experiments campaign workers`` processes — with
workers SIGKILLed at seed-deterministic store operations — finishes
with per-cell observation histories *byte-identical* to a serial,
unkilled run of the same spec.  Zero observations lost, zero
duplicated, every dead worker's lease reclaimed within one heartbeat
timeout.

Kill points are injected through the store's ``REPRO_STORE_KILL``
environment hook (``<op>:<n>`` — SIGKILL self on the n-th operation of
that kind) and cover the three distinct failure windows:

* ``checkpoint_write`` — mid-cell, between observations; the next
  claimant resumes from the per-observation checkpoint;
* ``lease_renew`` — mid-heartbeat, leaving an expired lease for the
  fleet to reclaim with a bumped fencing token;
* ``result_write`` — *between commit phases*: results persisted, lease
  never committed (a torn commit the next claimant repairs without
  re-running the cell).

Run as a script for the CI ``fleet-smoke`` job, or under pytest for
the full acceptance numbers:

    PYTHONPATH=src python benchmarks/bench_fleet.py --smoke
    PYTHONPATH=src python -m pytest benchmarks/bench_fleet.py -v
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import os
import shutil
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

from repro.core.checkpoint import canonical_history
from repro.experiments.presets import Budget
from repro.service.campaign import (
    CAMPAIGN_STATE_NAME,
    CampaignRunner,
    CampaignSpec,
    store_cell_label,
)
from repro.store import open_store
from repro.store.base import KILL_ENV, TERMINAL_LEASE_STATUSES
from repro.topology_gen.suite import CONDITIONS

_REPO_ROOT = Path(__file__).resolve().parent.parent

#: Lease heartbeat timeout: the reclaim-latency budget the bench holds
#: the fleet to.  Generous enough that a busy surviving worker can
#: finish its current cell and still reclaim a dead worker's lease
#: inside one timeout.
TTL_SECONDS = 3.0

#: Overall wall-clock ceiling — a stuck fleet fails loudly, not by hang.
SUPERVISE_TIMEOUT = 420.0


def _spec(smoke: bool, store_spec: str, workers: int) -> CampaignSpec:
    if smoke:
        budget = Budget(
            steps=4, steps_extended=5, baseline_steps=6, passes=1,
            repeat_best=2,
        )
        conditions, strategies = CONDITIONS[:1], ("pla", "bo")
    else:
        budget = Budget(
            steps=6, steps_extended=8, baseline_steps=8, passes=2,
            repeat_best=2,
        )
        conditions, strategies = CONDITIONS[:2], ("pla", "bo", "ibo")
    return CampaignSpec(
        study="synthetic",
        budget=budget,
        seed=7,
        workers=workers,
        store=store_spec,
        mode="fleet",
        lease_ttl_seconds=TTL_SECONDS,
        max_claim_attempts=10,
        conditions=conditions,
        sizes=("small",),
        strategies=strategies,
    )


def _kill_plan(rng: np.random.Generator, smoke: bool) -> list[str | None]:
    """Per-initial-worker kill specs (``None`` = clean worker).

    Smoke: 2 workers, one killed.  Full: 4 workers, three killed at
    the three distinct failure windows (shuffled across worker slots);
    the last worker stays clean so reclaim never waits on a process
    respawn.
    """
    if smoke:
        op = ("checkpoint_write", "result_write")[int(rng.integers(2))]
        return [f"{op}:1", None]
    kills = [
        f"checkpoint_write:{int(rng.integers(1, 4))}",
        "lease_renew:1",
        "result_write:1",
    ]
    rng.shuffle(kills)
    return [*kills, None]


def _spawn_worker(
    store_spec: str | Path,
    owner: str,
    kill: str | None,
    log_dir: Path | None,
) -> subprocess.Popen:
    env = {
        "PYTHONPATH": "src",
        "PATH": os.environ.get("PATH", "/usr/bin:/bin"),
    }
    if kill:
        env[KILL_ENV] = kill
    if log_dir is not None:
        out = (log_dir / f"{owner}.log").open("w")
    else:
        out = subprocess.DEVNULL
    return subprocess.Popen(
        [
            sys.executable, "-m", "repro.cli", "campaign", "workers",
            str(store_spec), "-n", "1", "--owner", owner,
        ],
        cwd=_REPO_ROOT,
        env=env,
        stdout=out,
        stderr=subprocess.STDOUT if log_dir is not None else subprocess.DEVNULL,
    )


def run_fleet_fuzz(
    backend: str,
    *,
    smoke: bool = True,
    seed: int = 0,
    workdir: str | Path | None = None,
    artifacts: str | Path | None = None,
) -> dict[str, object]:
    """Fuzz one backend; returns the bench report (asserts on the way)."""
    assert backend in ("jsonl", "sqlite"), backend
    workers = 2 if smoke else 4
    rng = np.random.default_rng(seed)
    plan = _kill_plan(rng, smoke)
    suffix = ".db" if backend == "sqlite" else ""
    log_dir = None
    if artifacts is not None:
        log_dir = Path(artifacts)
        log_dir.mkdir(parents=True, exist_ok=True)

    with tempfile.TemporaryDirectory(dir=workdir) as tmp:
        fleet_store = Path(tmp) / f"fleet{suffix}"
        serial_store = Path(tmp) / f"serial{suffix}"
        spec = _spec(smoke, str(fleet_store), workers)
        serial_spec = dataclasses.replace(
            spec, store=str(serial_store), mode="pool", workers=None, n_jobs=1
        )

        # Serial, unkilled reference — store-backed like the fleet so
        # both draw identical per-evaluation seeds.
        reference = CampaignRunner(serial_spec).run()

        runner = CampaignRunner(spec)
        _specs, labels, _fn = runner.cell_specs()
        cells = [store_cell_label(spec.study, label) for label in labels]
        with open_store(str(fleet_store)) as store:
            store.save_state(
                spec.study, "", CAMPAIGN_STATE_NAME,
                {"version": 1, "spec": spec.as_dict()},
            )

        procs: list[tuple[str, subprocess.Popen]] = []
        for i, kill in enumerate(plan):
            owner = f"fuzz-w{i}"
            procs.append((owner, _spawn_worker(fleet_store, owner, kill, log_dir)))
        spawned = len(procs)
        kills_observed = 0
        expired_seen: dict[tuple[str, int], float] = {}  # -> lease deadline
        reclaim_latency: dict[tuple[str, int], float] = {}

        watcher = open_store(str(fleet_store))
        try:
            deadline_wall = time.time() + SUPERVISE_TIMEOUT
            while True:
                assert time.time() < deadline_wall, (
                    f"fleet did not finish within {SUPERVISE_TIMEOUT}s "
                    f"({backend})"
                )
                alive = []
                for owner, proc in procs:
                    if proc.poll() is None:
                        alive.append((owner, proc))
                    elif proc.returncode < 0:
                        kills_observed += 1
                procs = alive

                now = time.time()
                pending = False
                for cell in cells:
                    lease = watcher.read_lease(spec.study, cell)
                    if lease is None:
                        pending = True
                        continue
                    for (seen_cell, seen_token), dl in expired_seen.items():
                        if seen_cell != cell:
                            continue
                        if (seen_cell, seen_token) in reclaim_latency:
                            continue
                        if (
                            lease.token > seen_token
                            or lease.status in TERMINAL_LEASE_STATUSES
                        ):
                            reclaim_latency[(seen_cell, seen_token)] = now - dl
                    if lease.status in TERMINAL_LEASE_STATUSES:
                        continue
                    pending = True
                    if lease.status == "leased" and lease.expired(now):
                        expired_seen.setdefault(
                            (cell, lease.token), lease.deadline
                        )
                if not pending:
                    break
                # Keep the fleet at strength: respawn clean workers for
                # the ones the fuzzer killed.
                while len(procs) < workers:
                    owner = f"fuzz-w{spawned}"
                    spawned += 1
                    assert spawned <= 4 * workers + 8, "respawn runaway"
                    procs.append(
                        (owner, _spawn_worker(fleet_store, owner, None, log_dir))
                    )
                time.sleep(0.05)

            for _owner, proc in procs:
                proc.wait(timeout=60)

            statuses = {
                cell: watcher.read_lease(spec.study, cell).status
                for cell in cells
            }
            assert all(s == "committed" for s in statuses.values()), statuses
            unreclaimed = set(expired_seen) - set(reclaim_latency)
            assert not unreclaimed, (
                f"expired leases never reclaimed: {unreclaimed}"
            )
            identical = True
            for label, cell in zip(labels, cells):
                fleet_passes = watcher.load_results(spec.study, cell)
                ref_passes = reference[label]
                assert fleet_passes is not None and len(fleet_passes) == len(
                    ref_passes
                ), label
                for a, b in zip(fleet_passes, ref_passes):
                    if canonical_history(a.observations) != canonical_history(
                        b.observations
                    ):
                        identical = False
        finally:
            for _owner, proc in procs:
                if proc.poll() is None:
                    proc.kill()
            watcher.close()

        if log_dir is not None:
            target = log_dir / f"fleet-{backend}{suffix or '-store'}"
            if fleet_store.is_dir():
                shutil.copytree(fleet_store, target, dirs_exist_ok=True)
            else:
                shutil.copy(fleet_store, target)

    expected_kills = 1 if smoke else 2
    assert kills_observed >= expected_kills, (
        f"only {kills_observed} worker(s) died; the fuzz needs at least "
        f"{expected_kills} ({backend}, plan {plan})"
    )
    max_reclaim = max(reclaim_latency.values(), default=0.0)
    assert max_reclaim <= TTL_SECONDS, (
        f"reclaim took {max_reclaim:.2f}s, over the {TTL_SECONDS:g}s "
        f"heartbeat timeout ({backend})"
    )
    report = {
        "backend": backend,
        "cells": len(cells),
        "kill_plan": [k for k in plan if k],
        "kills_observed": kills_observed,
        "workers_spawned": spawned,
        "expired_reclaims": len(reclaim_latency),
        "reclaim_seconds_max": max_reclaim,
        "histories_identical": identical,
    }
    print(
        f"fleet fuzz [{backend}]: {len(cells)} cell(s), "
        f"{kills_observed} SIGKILL(s) of {spawned} worker(s), "
        f"{len(reclaim_latency)} expired lease(s) reclaimed "
        f"(max {max_reclaim:.2f}s), histories identical: {identical}"
    )
    assert identical, (
        f"fleet history diverged from the serial unkilled run ({backend})"
    )
    if log_dir is not None:
        (log_dir / f"fuzz-{backend}.json").write_text(
            json.dumps(report, indent=2) + "\n", encoding="utf-8"
        )
    return report


# ----------------------------------------------------------------------
# pytest entry points (full acceptance numbers)
# ----------------------------------------------------------------------
def test_fleet_kill_fuzz_jsonl_is_byte_identical() -> None:
    report = run_fleet_fuzz("jsonl", smoke=False)
    assert report["histories_identical"]


def test_fleet_kill_fuzz_sqlite_is_byte_identical() -> None:
    report = run_fleet_fuzz("sqlite", smoke=False)
    assert report["histories_identical"]


# ----------------------------------------------------------------------
# Script entry point (CI fleet smoke)
# ----------------------------------------------------------------------
def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--backend", choices=["both", "jsonl", "sqlite"], default="both"
    )
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--artifacts", metavar="DIR", default=None,
        help="keep worker logs, the fleet store, and fuzz reports here",
    )
    from _harness import add_harness_args, emit, make_metric

    add_harness_args(parser)
    args = parser.parse_args(argv)
    backends = (
        ["jsonl", "sqlite"] if args.backend == "both" else [args.backend]
    )
    reports = [
        run_fleet_fuzz(
            backend, smoke=args.smoke, seed=args.seed,
            artifacts=args.artifacts,
        )
        for backend in backends
    ]
    emit(
        "bench_fleet",
        smoke=args.smoke,
        metrics={
            "histories_identical": make_metric(
                float(all(r["histories_identical"] for r in reports)),
                higher_is_better=True,
            ),
            "kills_injected": make_metric(
                float(sum(r["kills_observed"] for r in reports)),
                higher_is_better=True,
            ),
            "reclaim_seconds_max": make_metric(
                max(float(r["reclaim_seconds_max"]) for r in reports),
                higher_is_better=False,
                unit="s",
            ),
        },
        meta={r["backend"]: r for r in reports},
        json_path=args.json,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
