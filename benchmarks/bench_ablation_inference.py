"""Ablation A5: hyperparameter inference — ML-II vs MCMC (Spearmint).

Spearmint slice-samples GP hyperparameters and averages the acquisition
over the posterior (integrated acquisition); the reproduction's default
is the cheaper ML-II point estimate.  This bench compares the two on
the small tuning problem, including their per-step cost (the Figure 7
quantity — MCMC is a large part of why Spearmint needed 35–253 s per
step).
"""

import numpy as np

from repro.core.loop import TuningLoop
from repro.core.optimizer import BayesianOptimizer
from repro.experiments.presets import SYNTHETIC_BASE_CONFIG, default_cluster
from repro.experiments.report import render_table
from repro.storm.noise import GaussianNoise
from repro.storm.objective import StormObjective
from repro.storm.spaces import ParallelismCodec
from repro.topology_gen.suite import TopologyCondition, make_topology

STEPS = 20
SEEDS = (0, 1)


def run_inference(mode: str) -> tuple[float, float]:
    topology = make_topology(
        "small", TopologyCondition(time_imbalance=1.0, contentious_share=0.0)
    )
    cluster = default_cluster()
    bests, step_times = [], []
    for seed in SEEDS:
        codec = ParallelismCodec(topology, cluster, SYNTHETIC_BASE_CONFIG)
        objective = StormObjective(
            topology, cluster, codec, noise=GaussianNoise(0.03), seed=seed
        )
        optimizer = BayesianOptimizer(
            codec.space,
            seed=seed,
            hyper_inference=mode,
            mcmc_samples=4,
            mcmc_burn_in=5,
            refit_every=2,
        )
        result = TuningLoop(objective, optimizer, max_steps=STEPS).run()
        bests.append(result.best_value)
        step_times.append(result.mean_suggest_seconds())
    return float(np.mean(bests)), float(np.mean(step_times))


def test_ablation_hyperparameter_inference(benchmark):
    def run_all():
        return {mode: run_inference(mode) for mode in ("ml2", "mcmc")}

    scores = benchmark.pedantic(run_all, rounds=1, iterations=1)
    rows = [
        {
            "Inference": mode,
            "best tuples/s": round(best, 1),
            "mean step seconds": round(step, 4),
        }
        for mode, (best, step) in scores.items()
    ]
    print()
    print("== Ablation A5: ML-II vs MCMC hyperparameter inference ==")
    print(render_table(rows))
    # MCMC's integrated acquisition costs clearly more per step.
    assert scores["mcmc"][1] > scores["ml2"][1]
    # Both find working configurations.
    assert min(v for v, _ in scores.values()) > 0


if __name__ == "__main__":
    import sys

    from _harness import pytest_bench_main

    sys.exit(pytest_bench_main(__file__))
