"""The capstone bench: every encoded paper claim against the studies.

Prints the full claims checklist (DESIGN.md §3) and asserts the robust
core holds at the scaled budget.  Claims marked fragile at scaled
budgets (noise-dependent orderings) are reported but not asserted.
"""

from repro.experiments.claims import evaluate_claims, render_claims


#: Claims asserted at the scaled benchmark budget.  The remaining
#: claims are budget- or noise-sensitive and only reported.
ROBUST_CLAIMS = {"F4.1a", "F4.3", "F4.4", "F7", "F8.1", "F8.2", "F8.4"}


def test_paper_claims(benchmark, synthetic_study, sundog_study):
    results = benchmark.pedantic(
        evaluate_claims,
        args=(synthetic_study, sundog_study),
        rounds=1,
        iterations=1,
    )
    print()
    print(render_claims(results))
    failures = [
        r for r in results if r.claim_id in ROBUST_CLAIMS and not r.holds
    ]
    assert not failures, [f"{r.claim_id}: {r.evidence}" for r in failures]
    # The overall reproduction rate should be high even for the fragile set.
    passed = sum(1 for r in results if r.holds)
    assert passed >= len(results) - 2


if __name__ == "__main__":
    import sys

    from _harness import pytest_bench_main

    sys.exit(pytest_bench_main(__file__))
